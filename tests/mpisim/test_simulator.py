"""Unit tests for the discrete-event MPI simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.machine.perfmodel import WorkloadPoint
from repro.mpisim import (
    DeadlockError,
    MPISimulator,
    NetworkModel,
    imbalanced_master_worker,
    ring_exchange,
    stencil_1d,
)

POINT = WorkloadPoint(
    work_units=1e4,
    instructions_per_unit=50.0,
    memory_accesses_per_unit=0.5,
    working_set_bytes=32 * 1024,
)


def compute_only(iterations=3):
    def program(rank, mpi):
        for _ in range(iterations):
            yield mpi.compute("work", POINT)

    return program


class TestComputeAndTrace:
    def test_burst_count(self):
        trace = MPISimulator(nranks=4).run(compute_only(3))
        assert trace.n_bursts == 12

    def test_metadata(self):
        sim = MPISimulator(nranks=2, app="myapp", scenario={"x": 1})
        trace = sim.run(compute_only())
        assert trace.app == "myapp"
        assert trace.scenario == {"x": 1}
        assert trace.nranks == 2

    def test_deterministic(self):
        sim = MPISimulator(nranks=3)
        assert sim.run(compute_only(), seed=7) == sim.run(compute_only(), seed=7)

    def test_seed_changes_noise(self):
        sim = MPISimulator(nranks=3)
        assert sim.run(compute_only(), seed=1) != sim.run(compute_only(), seed=2)

    def test_counters_consistent(self):
        trace = MPISimulator(nranks=2).run(compute_only())
        np.testing.assert_allclose(
            trace.duration,
            trace.counter("PAPI_TOT_CYC") / trace.clock_hz,
        )

    def test_sequential_bursts_per_rank(self):
        trace = MPISimulator(nranks=2).run(compute_only(4))
        sub = trace.bursts_of_rank(0)
        assert (sub.begin[1:] >= sub.end[:-1] - 1e-12).all()

    def test_callpath_from_region(self):
        trace = MPISimulator(nranks=1).run(compute_only(1))
        assert str(trace.callstacks.path(0)) == "work@work.c:1"


class TestCollectives:
    def test_barrier_synchronises_clocks(self):
        slow = WorkloadPoint(
            work_units=5e4, instructions_per_unit=50.0,
            memory_accesses_per_unit=0.5, working_set_bytes=32 * 1024,
        )

        def program(rank, mpi):
            yield mpi.compute("work", slow if rank == 0 else POINT, jitter=0.0)
            yield mpi.barrier()
            yield mpi.compute("after", POINT, jitter=0.0)

        trace = MPISimulator(nranks=3).run(program)
        after = trace.select(trace.callpath_id == 1)
        # Every rank starts the post-barrier burst at the same instant.
        assert np.allclose(after.begin, after.begin[0])

    def test_allreduce_costs_more_than_barrier(self):
        def with_op(op_name):
            def program(rank, mpi):
                yield mpi.compute("work", POINT, jitter=0.0)
                yield getattr(mpi, op_name)() if op_name == "barrier" else mpi.allreduce(1 << 20)
                yield mpi.compute("after", POINT, jitter=0.0)

            return program

        barrier_trace = MPISimulator(nranks=4).run(with_op("barrier"))
        reduce_trace = MPISimulator(nranks=4).run(with_op("allreduce"))
        after_barrier = barrier_trace.select(barrier_trace.callpath_id == 1).begin[0]
        after_reduce = reduce_trace.select(reduce_trace.callpath_id == 1).begin[0]
        assert after_reduce > after_barrier

    def test_collective_mismatch_detected(self):
        def program(rank, mpi):
            yield mpi.barrier() if rank == 0 else mpi.allreduce(8)

        with pytest.raises(DeadlockError, match="mismatch"):
            MPISimulator(nranks=2).run(program)

    def test_missing_rank_at_barrier_deadlocks(self):
        def program(rank, mpi):
            if rank == 0:
                yield mpi.barrier()
            else:
                yield mpi.compute("work", POINT)

        with pytest.raises(DeadlockError):
            MPISimulator(nranks=2).run(program)


class TestPointToPoint:
    def test_message_delays_receiver(self):
        big = 10 * 1024 * 1024  # 10 MB at 1.2 GB/s ~ 8.3 ms

        def program(rank, mpi):
            if rank == 0:
                yield mpi.compute("work", POINT, jitter=0.0)
                yield mpi.send(1, big)
            else:
                yield mpi.recv(0)
                yield mpi.compute("after", POINT, jitter=0.0)

        trace = MPISimulator(nranks=2).run(program)
        after = trace.select(trace.callpath_id == 1)
        sender_burst = trace.select(trace.callpath_id == 0)
        transfer = NetworkModel().p2p_cost(big)
        assert after.begin[0] == pytest.approx(
            sender_burst.end[0] + transfer, rel=1e-6
        )

    def test_fifo_matching(self):
        def program(rank, mpi):
            if rank == 0:
                yield mpi.send(1, 100)
                yield mpi.send(1, 200)
            else:
                yield mpi.recv(0)
                yield mpi.recv(0)

        # Completes without deadlock: FIFO pairs both messages.
        MPISimulator(nranks=2).run(program)

    def test_recv_without_send_deadlocks(self):
        def program(rank, mpi):
            if rank == 0:
                yield mpi.recv(1)
            else:
                yield mpi.compute("work", POINT)

        with pytest.raises(DeadlockError):
            MPISimulator(nranks=2).run(program)

    def test_sendrecv_ring_completes(self):
        def program(rank, mpi):
            yield mpi.sendrecv(
                dest=(rank + 1) % mpi.nranks,
                src=(rank - 1) % mpi.nranks,
                nbytes=1024,
            )
            yield mpi.compute("after", POINT)

        trace = MPISimulator(nranks=5).run(program)
        assert trace.n_bursts == 5

    def test_invalid_peer(self):
        def program(rank, mpi):
            yield mpi.send(99, 8)

        with pytest.raises(ReproError, match="peer"):
            MPISimulator(nranks=2).run(program)


class TestBuiltinPrograms:
    def test_stencil_runs(self):
        trace = MPISimulator(nranks=4).run(stencil_1d(iterations=3))
        assert trace.n_bursts == 4 * 3 * 2  # update + residual per iter

    def test_ring_runs(self):
        trace = MPISimulator(nranks=4).run(ring_exchange(iterations=2))
        assert trace.n_bursts == 8

    def test_master_worker_imbalance(self):
        trace = MPISimulator(nranks=5).run(imbalanced_master_worker(rounds=3))
        worker_instr = [
            trace.bursts_of_rank(r).counter("PAPI_TOT_INS").mean()
            for r in range(1, 5)
        ]
        assert worker_instr[-1] > 1.2 * worker_instr[0]

    def test_single_rank_programs(self):
        for factory in (stencil_1d, ring_exchange):
            trace = MPISimulator(nranks=1).run(factory(iterations=2))
            assert trace.n_bursts > 0


class TestPipelineIntegration:
    def test_tracking_across_simulated_scenarios(self):
        """The simulator's traces feed the ordinary pipeline: a stencil
        whose working set doubles between scenarios is tracked with its
        IPC drop."""
        from repro import quick_track
        from repro.tracking.trends import compute_trends

        traces = []
        for index, ws in enumerate((128 * 1024, 4 * 1024 * 1024)):
            sim = MPISimulator(
                nranks=8, app="stencil", scenario={"ws_kib": ws // 1024}
            )
            traces.append(
                sim.run(stencil_1d(iterations=6, working_set_bytes=ws),
                        seed=index)
            )
        result = quick_track(traces)
        assert result.coverage == 100
        assert len(result.tracked_regions) == 2
        update = max(
            compute_trends(result, "ipc"), key=lambda s: -abs(s.pct_change_total())
        )
        assert update.pct_change_total() < -0.1
