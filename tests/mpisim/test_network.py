"""Unit tests for the alpha-beta network model."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.mpisim.network import NetworkModel

NET = NetworkModel(latency_s=1e-6, bandwidth_bps=1e9, barrier_cost_s=2e-6)


class TestP2P:
    def test_zero_bytes_costs_latency(self):
        assert NET.p2p_cost(0) == pytest.approx(1e-6)

    def test_bandwidth_term(self):
        assert NET.p2p_cost(10**9) == pytest.approx(1.000001)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ModelError):
            NET.p2p_cost(-1)


class TestAllReduce:
    def test_single_rank_free(self):
        assert NET.allreduce_cost(64, 1) == 0.0

    def test_logarithmic_rounds(self):
        two = NET.allreduce_cost(64, 2)
        four = NET.allreduce_cost(64, 4)
        eight = NET.allreduce_cost(64, 8)
        assert four == pytest.approx(2 * two)
        assert eight == pytest.approx(3 * two)

    def test_non_power_of_two_ceils(self):
        assert NET.allreduce_cost(64, 5) == NET.allreduce_cost(64, 8)

    def test_invalid_nranks(self):
        with pytest.raises(ModelError):
            NET.allreduce_cost(64, 0)


class TestValidation:
    def test_bad_latency(self):
        with pytest.raises(ModelError):
            NetworkModel(latency_s=-1e-6)

    def test_bad_bandwidth(self):
        with pytest.raises(ModelError):
            NetworkModel(bandwidth_bps=0)

    def test_bad_barrier(self):
        with pytest.raises(ModelError):
            NetworkModel(barrier_cost_s=-1.0)
