"""Pipeline instrumentation: real runs produce the expected spans/metrics."""

from __future__ import annotations

import numpy as np

from repro import obs, quick_track
from repro.clustering.frames import FrameSettings
from tests.conftest import build_two_region_trace


def _tracked_pair():
    first = build_two_region_trace(scenario={"run": 0}, seed=1)
    second = build_two_region_trace(scenario={"run": 1}, ipc_b=0.4, seed=2)
    return quick_track([first, second])


class TestPipelineSpans:
    def test_quick_track_stage_tree(self):
        obs.enable()
        result = _tracked_pair()
        assert result.coverage > 0
        names = {span.name for span in obs.finished_spans()}
        assert {
            "api.quick_track",
            "clustering.make_frames",
            "clustering.make_frame",
            "clustering.dbscan",
            "tracking.run",
            "tracking.normalize",
            "tracking.pair",
            "tracking.evaluator.displacement",
            "tracking.evaluator.callstack",
            "tracking.evaluator.simultaneity",
            "tracking.chain",
        } <= names

    def test_span_attributes(self):
        obs.enable()
        _tracked_pair()
        by_name = {}
        for span in obs.finished_spans():
            by_name.setdefault(span.name, []).append(span)
        frame_spans = by_name["clustering.make_frame"]
        assert all(span.attrs["n_bursts"] == 40 for span in frame_spans)
        assert all(span.attrs["eps"] == 0.03 for span in frame_spans)
        assert all("n_clusters" in span.attrs for span in frame_spans)
        frame_indices = sorted(
            span.attrs["frame"] for span in by_name["clustering.frame"]
        )
        assert frame_indices == [0, 1]
        (run_span,) = by_name["tracking.run"]
        assert run_span.attrs["n_frames"] == 2
        assert "coverage" in run_span.attrs

    def test_decision_counters(self):
        obs.enable()
        _tracked_pair()
        snapshot = obs.metrics_snapshot()
        names = {
            (counter["name"], tuple(sorted(counter["labels"].items())))
            for counter in snapshot["counters"]
        }
        assert ("clustering.points_total", ()) in names
        assert (
            "tracking.links_proposed", (("evaluator", "displacement"),)
        ) in names
        assert (
            "tracking.links_pruned", (("evaluator", "callstack"),)
        ) in names
        points = [
            counter for counter in snapshot["counters"]
            if counter["name"] == "clustering.points_total"
        ]
        assert points[0]["value"] == 80  # two 40-burst frames

    def test_disabled_run_records_nothing(self):
        assert not obs.enabled()
        _tracked_pair()
        assert obs.finished_spans() == ()
        assert obs.metrics_snapshot()["counters"] == []

    def test_results_identical_enabled_vs_disabled(self):
        """Instrumentation must not perturb the pipeline's output."""
        disabled = _tracked_pair()
        obs.enable()
        enabled = _tracked_pair()
        assert disabled.coverage == enabled.coverage
        assert len(disabled.regions) == len(enabled.regions)
        np.testing.assert_array_equal(
            disabled.frames[0].labels, enabled.frames[0].labels
        )


class TestSimulationSpans:
    def test_app_runner_span(self):
        from repro.apps import hydroc

        obs.enable()
        trace = hydroc.build(block_size=32, ranks=4, iterations=2).run(seed=0)
        spans = [
            span for span in obs.finished_spans() if span.name == "apps.run_app"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["nranks"] == 4
        counters = {
            counter["name"]: counter["value"]
            for counter in obs.metrics_snapshot()["counters"]
        }
        assert counters["apps.bursts_total"] == trace.n_bursts

    def test_mpisim_span(self):
        from repro.mpisim.programs import stencil_1d
        from repro.mpisim.simulator import MPISimulator

        obs.enable()
        simulator = MPISimulator(4, app="test-stencil")
        trace = simulator.run(stencil_1d(iterations=2), seed=0)
        (span,) = [
            span for span in obs.finished_spans() if span.name == "mpisim.run"
        ]
        assert span.attrs["nranks"] == 4
        assert span.attrs["n_bursts"] == trace.n_bursts
        assert span.attrs["n_ops"] > 0


class TestTrendSpans:
    def test_trend_extraction_span(self):
        from repro.tracking.trends import compute_trends

        result = _tracked_pair()
        obs.enable()
        series = compute_trends(result, "ipc")
        (span,) = [
            span for span in obs.finished_spans()
            if span.name == "tracking.trends"
        ]
        assert span.attrs["metric"] == "ipc"
        assert span.attrs["n_series"] == len(series)


class TestConfigOverrideLog:
    def test_quick_track_logs_override(self, caplog):
        import logging

        first = build_two_region_trace(scenario={"run": 0}, seed=1)
        second = build_two_region_trace(scenario={"run": 1}, seed=2)
        with caplog.at_level(logging.INFO, logger="repro"):
            quick_track([first, second], settings=FrameSettings(log_y=True))
        messages = [record.message for record in caplog.records]
        assert any("log_extensive" in message for message in messages)
