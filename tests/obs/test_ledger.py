"""Run-ledger tests: appends, rotation, corrupt tolerance, recording."""

from __future__ import annotations

import json

import pytest

from repro.obs import ledger as obsledger
from repro.obs.core import set_run_id
from repro.obs.ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    RunLedger,
    begin_run,
    config_digest,
    end_run,
    resolve_ledger,
    run_record,
)


@pytest.fixture(autouse=True)
def clean_ledger_state(monkeypatch):
    """No ambient ledger, no leaked recorder stack, fresh run id."""
    monkeypatch.delenv(LEDGER_ENV, raising=False)
    obsledger._ACTIVE.clear()
    set_run_id(None)
    yield
    obsledger._ACTIVE.clear()
    set_run_id(None)


class TestAppendAndRead:
    def test_roundtrip_stamps_schema(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append({"event": "start", "run_id": "r1", "entry": "x"})
        events = ledger.read_events()
        assert len(events) == 1
        assert events[0]["schema"] == LEDGER_SCHEMA
        assert events[0]["entry"] == "x"

    def test_one_line_per_event(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for index in range(5):
            ledger.append({"event": "start", "n": index})
        segment = next(tmp_path.glob("events-*.jsonl"))
        lines = segment.read_text().splitlines()
        assert len(lines) == 5
        assert [json.loads(line)["n"] for line in lines] == list(range(5))

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append({"event": "start", "n": 0})
        ledger.append({"event": "end", "n": 1})
        segment = next(tmp_path.glob("events-*.jsonl"))
        with segment.open("a") as fh:
            fh.write('{"truncated": \n')
            fh.write("not json at all\n")
            fh.write('{"valid_json": "but schemaless"}\n')
        events = ledger.read_events()
        assert [event["n"] for event in events] == [0, 1]
        assert ledger.corrupt_lines == 3

    def test_rotation_bounds_segment_size(self, tmp_path):
        ledger = RunLedger(tmp_path, max_bytes=512)
        for index in range(20):
            ledger.append({"event": "start", "pad": "x" * 64, "n": index})
        segments = sorted(tmp_path.glob("events-*.jsonl"))
        assert len(segments) > 1
        # Reads stitch all segments back together, oldest first.
        assert [e["n"] for e in ledger.read_events()] == list(range(20))

    def test_append_survives_unwritable_dir(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.root = tmp_path / "revoked" / "nope"
        ledger.append({"event": "start"})  # must not raise


class TestResolveLedger:
    def test_disabled_by_default(self):
        assert resolve_ledger() is None

    def test_explicit_dir(self, tmp_path):
        ledger = resolve_ledger(tmp_path / "ledger")
        assert ledger is not None
        assert ledger.root.is_dir()

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env-ledger"))
        ledger = resolve_ledger()
        assert ledger is not None
        assert ledger.root == tmp_path / "env-ledger"

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env"))
        ledger = resolve_ledger(tmp_path / "explicit")
        assert ledger.root == tmp_path / "explicit"


class TestConfigDigest:
    def test_stable_and_order_insensitive(self):
        a = config_digest({"x": 1, "y": [1, 2]}, "tag")
        b = config_digest({"y": [1, 2], "x": 1}, "tag")
        assert a == b
        assert len(a) == 16

    def test_distinguishes_configs(self):
        assert config_digest({"eps": 0.03}) != config_digest({"eps": 0.04})

    def test_handles_dataclasses(self):
        from repro.clustering.frames import FrameSettings
        from repro.tracking.tracker import TrackerConfig

        digest = config_digest(FrameSettings(), TrackerConfig())
        assert digest == config_digest(FrameSettings(), TrackerConfig())
        assert digest != config_digest(FrameSettings(eps=0.9), TrackerConfig())


class TestRunRecord:
    def test_start_end_pairing(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with run_record("test.entry", ledger=ledger, n_items=3) as rec:
            assert rec is not None
            rec.annotate(coverage=88)
        runs = ledger.runs()
        assert len(runs) == 1
        run = runs[0]
        assert run.entry == "test.entry"
        assert run.exit_code == 0
        assert not run.open
        assert run.meta["n_items"] == 3
        assert run.end_meta["coverage"] == 88
        assert run.wall_s >= 0
        assert run.rss_peak_kib > 0

    def test_exception_records_exit_2_and_error_type(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with pytest.raises(ValueError):
            with run_record("test.boom", ledger=ledger):
                raise ValueError("no")
        run = ledger.runs()[0]
        assert run.exit_code == 2
        assert run.error == "ValueError"

    def test_nested_entry_points_record_once(self, tmp_path):
        ledger = RunLedger(tmp_path)
        with run_record("outer", ledger=ledger) as outer:
            with run_record("inner", ledger=ledger) as inner:
                assert inner is None
                obsledger.annotate(from_inner=True)
            assert outer is not None
        runs = ledger.runs()
        assert [run.entry for run in runs] == ["outer"]
        assert runs[0].end_meta["from_inner"] is True

    def test_disabled_path_yields_none(self):
        with run_record("test.entry") as rec:  # no ledger anywhere
            assert rec is None

    def test_begin_end_run_none_safe(self):
        rec = begin_run("x")  # disabled
        assert rec is None
        end_run(rec)  # must not raise

    def test_open_run_without_end_event(self, tmp_path):
        ledger = RunLedger(tmp_path)
        rec = begin_run("test.crashed", ledger=ledger)
        assert rec is not None
        obsledger._ACTIVE.clear()  # simulate a hard crash: no close()
        run = ledger.runs()[0]
        assert run.open
        assert run.exit_code is None

    def test_concurrent_runs_share_a_dir(self, tmp_path):
        # Two "processes" (distinct run ids) interleave whole lines.
        ledger = RunLedger(tmp_path)
        set_run_id("r-proc-a")
        rec_a = begin_run("watch", ledger=ledger)
        obsledger._ACTIVE.clear()
        set_run_id("r-proc-b")
        rec_b = begin_run("watch", ledger=ledger)
        obsledger._ACTIVE.clear()
        rec_a.close(exit_code=0)
        rec_b.close(exit_code=3)
        runs = {run.run_id: run for run in ledger.runs()}
        assert runs["r-proc-a"].exit_code == 0
        assert runs["r-proc-b"].exit_code == 3


class TestPipelineIntegration:
    def test_quick_track_records_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "ledger"))
        from repro.api import quick_track
        from repro.apps import wrf

        traces = [
            wrf.build(ranks=16, iterations=4).run(seed=s) for s in (0, 1)
        ]
        result = quick_track(traces)
        ledger = resolve_ledger()
        runs = ledger.runs()
        assert [run.entry for run in runs] == ["api.quick_track"]
        run = runs[0]
        assert run.exit_code == 0
        assert run.end_meta["coverage"] == round(result.coverage, 4)
        assert run.meta["n_traces"] == 2
        assert run.config_digest

    def test_tracker_run_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "ledger"))
        from repro.api import make_frames
        from repro.apps import wrf
        from repro.tracking.tracker import Tracker

        traces = [
            wrf.build(ranks=16, iterations=4).run(seed=s) for s in (0, 1)
        ]
        frames = make_frames(traces)
        Tracker(frames).run()
        entries = [run.entry for run in resolve_ledger().runs()]
        assert "tracking.run" in entries
