"""Exposition tests: Prometheus rendering, /metrics + /healthz serving."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import ResourceSampler
from repro.obs.serve import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    render_prometheus,
    start_metrics_server,
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


def parse_prometheus(text: str) -> dict[str, float]:
    """Strict parse of the text exposition format (the golden check).

    Validates every non-comment line is ``name[{labels}] value`` with a
    sane metric name and float value; returns the series map.
    """
    import re

    series: dict[str, float] = {}
    typed: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            assert len(parts) == 4, line
            assert parts[3] in {"counter", "gauge", "histogram"}, line
            typed.add(parts[2])
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        match = re.fullmatch(
            r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)", line
        )
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert base in typed or name in typed, f"untyped series: {line!r}"
        series[name + (labels or "")] = float(value)
    assert text.endswith("\n")
    return series


class TestRenderPrometheus:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("pipeline.runs_total").inc(3)
        registry.gauge("stream.live_windows").set(5)
        hist = registry.histogram("span.seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(10.0)
        text = render_prometheus(registry)
        series = parse_prometheus(text)
        assert series["repro_pipeline_runs_total"] == 3
        assert series["repro_stream_live_windows"] == 5
        assert series['repro_span_seconds_bucket{le="0.1"}'] == 1
        assert series['repro_span_seconds_bucket{le="1"}'] == 2
        assert series['repro_span_seconds_bucket{le="+Inf"}'] == 3
        assert series["repro_span_seconds_count"] == 3
        assert series["repro_span_seconds_sum"] == pytest.approx(10.55)

    def test_buckets_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 99.0):
            hist.observe(value)
        series = parse_prometheus(render_prometheus(registry))
        buckets = [
            series['repro_h_bucket{le="1"}'],
            series['repro_h_bucket{le="2"}'],
            series['repro_h_bucket{le="3"}'],
            series['repro_h_bucket{le="+Inf"}'],
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == series["repro_h_count"] == 4

    def test_label_escaping_and_name_sanitising(self):
        registry = MetricsRegistry()
        registry.counter(
            "weird.name-total", evaluator='say "hi"\nback\\slash'
        ).inc()
        text = render_prometheus(registry)
        assert "repro_weird_name_total" in text
        assert '\\"hi\\"' in text
        assert "\\n" in text
        parse_prometheus(text)

    def test_empty_registry_renders(self):
        assert render_prometheus(MetricsRegistry()) == "\n"


class TestMetricsServer:
    def test_scrape_metrics_and_healthz(self, live_server):
        registry = MetricsRegistry()
        registry.gauge("stream.last_window").set(9)
        server = live_server(MetricsServer, registry=registry)
        status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        series = parse_prometheus(body)
        assert series["repro_stream_last_window"] == 9
        status, _, body = _get(f"{server.url}/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["run_id"].startswith("r")
        assert payload["uptime_s"] >= 0

    def test_unknown_path_404(self, live_server):
        server = live_server(MetricsServer, registry=MetricsRegistry())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_port_in_use_raises(self, live_server):
        server = live_server(MetricsServer, registry=MetricsRegistry())
        with pytest.raises(OSError):
            start_metrics_server(server.port)

    def test_health_source_merged(self, live_server):
        def health():
            return {"status": "alerting", "last_window": 7}

        server = live_server(
            MetricsServer, registry=MetricsRegistry(), health_source=health
        )
        payload = server.health_payload()
        assert payload["status"] == "alerting"
        assert payload["last_window"] == 7

    def test_health_source_failure_degrades(self, live_server):
        def health():
            raise RuntimeError("racy read")

        server = live_server(
            MetricsServer, registry=MetricsRegistry(), health_source=health
        )
        payload = server.health_payload()
        assert payload["status"] == "degraded"
        assert payload["health_error"] == "RuntimeError"

    def test_sampler_summary_attached(self, live_server):
        sampler = ResourceSampler(registry=MetricsRegistry())
        sampler.sample_once()
        server = live_server(
            MetricsServer, registry=MetricsRegistry(), sampler=sampler
        )
        payload = server.health_payload()
        assert payload["sampler"]["n_samples"] == 1

    def test_router_mounts_extra_endpoints(self, live_server):
        """The router hook answers first; None falls through."""

        def router(method, path, body):
            if path == "/echo":
                return 200, "application/json", b'{"method": "%s"}' % method.encode()
            return None

        server = live_server(
            MetricsServer, registry=MetricsRegistry(), router=router
        )
        status, _, body = _get(f"{server.url}/echo")
        assert status == 200
        assert json.loads(body) == {"method": "GET"}
        # Built-ins still answer when the router declines.
        status, _, _ = _get(f"{server.url}/metrics")
        assert status == 200

    def test_router_error_is_a_500_not_a_hang(self, live_server):
        def router(method, path, body):
            raise RuntimeError("router bug")

        server = live_server(
            MetricsServer, registry=MetricsRegistry(), router=router
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/metrics")
        assert excinfo.value.code == 500


class TestLiveWatchScrape:
    def test_scrape_during_live_watch(self, live_server):
        """Scrape /metrics and /healthz while windows stream through."""
        from repro.apps import wrf
        from repro.clustering.frames import FrameSettings
        from repro.stream import WatchTelemetry, track_windows

        obs.enable()
        telemetry = WatchTelemetry()
        scrapes: list[dict[str, float]] = []
        health_docs: list[dict] = []
        server = live_server(MetricsServer, health_source=telemetry.health)

        def on_update(update) -> None:
            _, _, body = _get(f"{server.url}/metrics")
            scrapes.append(parse_prometheus(body))
            _, _, doc = _get(f"{server.url}/healthz")
            health_docs.append(json.loads(doc))

        trace = wrf.build(ranks=16, iterations=6).run(seed=3)
        result = track_windows(
            trace,
            n_windows=4,
            settings=FrameSettings(relevance=0.995),
            on_update=on_update,
            telemetry=telemetry,
        )
        assert result.coverage > 0
        assert len(scrapes) == 4
        # The live-window gauge tracks the stream as it advances.
        last = scrapes[-1]
        assert last["repro_stream_last_window"] == 3
        assert last["repro_stream_live_windows"] >= 1
        final_health = health_docs[-1]
        assert final_health["status"] == "ok"
        assert final_health["windows"]["total"] == 4
        assert final_health["last_window"] == 3
        assert final_health["last_update_age_s"] is not None
