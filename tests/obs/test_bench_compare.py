"""Unit tests for repro.obs.bench: bench results and regression gating."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_results_payload,
    compare_bench_results,
    format_bench_comparison,
    load_bench_results,
    rss_peak_kib,
)


def _write(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestPayloadAndLoad:
    def test_roundtrip(self, tmp_path):
        payload = bench_results_payload(
            {"bench_x": {"wall_time_s": 1.5, "rss_peak_kib": 2048}}
        )
        assert payload["schema"] == BENCH_SCHEMA
        path = _write(tmp_path / "r.json", payload)
        benches = load_bench_results(path)
        assert benches["bench_x"]["wall_time_s"] == 1.5

    def test_rejects_foreign_schema(self, tmp_path):
        path = _write(tmp_path / "r.json", {"schema": "other/9", "benches": {}})
        with pytest.raises(ValueError, match="expected schema"):
            load_bench_results(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_bench_results(path)

    def test_rejects_missing_wall_time(self, tmp_path):
        path = _write(
            tmp_path / "r.json",
            {"schema": BENCH_SCHEMA, "benches": {"b": {"rss_peak_kib": 1}}},
        )
        with pytest.raises(ValueError, match="wall_time_s"):
            load_bench_results(path)

    def test_rss_peak_positive(self):
        assert rss_peak_kib() > 0


class TestCompare:
    def test_detects_injected_2x_slowdown(self):
        old = {"b": {"wall_time_s": 0.4}}
        new = {"b": {"wall_time_s": 0.8}}
        (delta,) = compare_bench_results(old, new)
        assert delta.regressed
        assert delta.ratio == pytest.approx(2.0)

    def test_self_comparison_clean(self):
        benches = {
            "a": {"wall_time_s": 0.1},
            "b": {"wall_time_s": 2.0, "rss_peak_kib": 4096},
        }
        deltas = compare_bench_results(benches, benches)
        assert len(deltas) == 2
        assert not any(delta.regressed for delta in deltas)

    def test_growth_below_threshold_tolerated(self):
        old = {"b": {"wall_time_s": 1.0}}
        new = {"b": {"wall_time_s": 1.2}}  # +20% < 25% default
        (delta,) = compare_bench_results(old, new)
        assert not delta.regressed

    def test_absolute_floor_shields_micro_benches(self):
        old = {"b": {"wall_time_s": 0.001}}
        new = {"b": {"wall_time_s": 0.004}}  # 4x but only +3ms
        (delta,) = compare_bench_results(old, new)
        assert not delta.regressed

    def test_disjoint_benches_skipped(self):
        deltas = compare_bench_results(
            {"only_old": {"wall_time_s": 1.0}},
            {"only_new": {"wall_time_s": 1.0}},
        )
        assert deltas == []

    def test_format_mentions_regressions(self):
        old = {"b": {"wall_time_s": 0.4}}
        new = {"b": {"wall_time_s": 0.9}}
        text = format_bench_comparison(compare_bench_results(old, new))
        assert "REGRESSED" in text
        assert "1 regression(s)" in text

    def test_format_clean_run(self):
        benches = {"b": {"wall_time_s": 0.4}}
        text = format_bench_comparison(compare_bench_results(benches, benches))
        assert "no regressions" in text


class TestRssGate:
    def test_off_by_default(self):
        old = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 100_000}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 400_000}}
        (delta,) = compare_bench_results(old, new)
        assert not delta.rss_regressed
        assert not delta.failed

    def test_trips_on_large_growth(self):
        old = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 100_000}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 140_000}}
        (delta,) = compare_bench_results(old, new, rss_threshold=0.25)
        assert delta.rss_regressed
        assert delta.failed
        assert not delta.regressed  # wall gate untouched

    def test_relative_growth_below_threshold_tolerated(self):
        old = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 100_000}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 120_000}}
        (delta,) = compare_bench_results(old, new, rss_threshold=0.25)
        assert not delta.rss_regressed

    def test_absolute_floor_shields_small_heaps(self):
        # 3x growth, but only +8 MiB: under the 10 MiB default floor.
        old = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 4_096}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 12_288}}
        (delta,) = compare_bench_results(old, new, rss_threshold=0.25)
        assert not delta.rss_regressed

    def test_missing_rss_never_gates(self):
        old = {"b": {"wall_time_s": 1.0}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 999_999}}
        (delta,) = compare_bench_results(old, new, rss_threshold=0.25)
        assert not delta.rss_regressed

    def test_format_flags_rss_regression(self):
        old = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 100_000}}
        new = {"b": {"wall_time_s": 1.0, "rss_peak_kib": 200_000}}
        deltas = compare_bench_results(old, new, rss_threshold=0.25)
        text = format_bench_comparison(deltas)
        assert "RSS-REGRESSED" in text
        assert "1 regression(s)" in text
