"""Unit tests for repro.obs.report: single-file run reports."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.api import quick_track
from repro.obs.report import REPORT_SCHEMA, report_html, report_payload, write_report
from repro.robust.partial import ItemFailure
from tests.conftest import build_two_region_trace


@pytest.fixture(scope="module")
def toy_result():
    traces = [
        build_two_region_trace(seed=1, scenario={"run": 0}),
        build_two_region_trace(
            seed=2, scenario={"run": 1}, ipc_a=1.1, ipc_b=0.4
        ),
    ]
    return quick_track(traces)


class TestPayload:
    def test_versioned_schema(self, toy_result):
        payload = report_payload([("run", toy_result, ())])
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["runs"][0]["quality"]["schema"] == "repro.quality/1"
        json.dumps(payload)  # must be serialisable

    def test_observability_disabled_marker(self, toy_result):
        payload = report_payload([("run", toy_result, ())])
        assert payload["observability"] == {
            "enabled": False, "spans": [], "metrics": None,
        }

    def test_observability_spans_included(self, toy_result):
        obs.enable()
        with obs.span("stage.one"):
            pass
        payload = report_payload([("run", toy_result, ())])
        assert payload["observability"]["enabled"]
        names = [sp["name"] for sp in payload["observability"]["spans"]]
        assert "stage.one" in names
        assert payload["observability"]["metrics"] is not None


class TestHtml:
    def test_self_contained_document(self, toy_result):
        html = report_html([("my run", toy_result, ())])
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html  # embedded frame/trend plots
        assert "Heuristic attribution" in html
        assert "my run" in html
        # Self-contained: no external scripts, styles or images (the
        # only URLs are SVG xmlns declarations, which fetch nothing).
        assert "src=" not in html
        assert "href=" not in html
        assert "<link" not in html
        assert "@import" not in html

    def test_attribution_rows_name_evaluator_and_confidence(self, toy_result):
        html = report_html([("run", toy_result, ())])
        assert "<b>displacement</b>" in html
        assert "100%" in html

    def test_quarantine_summary(self, toy_result):
        failures = (
            ItemFailure("bad.json", "load", "TraceFormatError", "broken"),
        )
        html = report_html([("run", toy_result, failures)])
        assert "1 item(s) failed" in html
        assert "bad.json" in html
        assert "TraceFormatError" in html

    def test_span_tree_when_obs_enabled(self, toy_result):
        obs.enable()
        with obs.span("tracking.run"):
            pass
        html = report_html([("run", toy_result, ())])
        assert "stage-time tree" in html

    def test_include_viz_false_drops_svgs(self, toy_result):
        html = report_html([("run", toy_result, ())], include_viz=False)
        assert "<svg" not in html
        assert "Heuristic attribution" in html

    def test_html_escapes_labels(self, toy_result):
        html = report_html([("<script>alert(1)</script>", toy_result, ())])
        assert "<script>alert(1)</script>" not in html


class TestWriteReport:
    def test_suffix_dispatch(self, toy_result, tmp_path):
        html_path = write_report(tmp_path / "out.html", toy_result)
        json_path = write_report(tmp_path / "out.json", toy_result)
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == REPORT_SCHEMA

    def test_json_has_no_svg_markup(self, toy_result, tmp_path):
        path = write_report(tmp_path / "out.json", toy_result)
        assert "<svg" not in path.read_text()

    def test_bare_result_wraps_with_failures(self, toy_result, tmp_path):
        failures = [ItemFailure("f.json", "load", "OSError", "gone")]
        path = write_report(
            tmp_path / "out.json", toy_result, failures=failures
        )
        payload = json.loads(path.read_text())
        robust = payload["runs"][0]["quality"]["robust"]
        assert robust["quarantined"] == {"load": 1}

    def test_multi_run_entries(self, toy_result, tmp_path):
        path = write_report(
            tmp_path / "out.json",
            [("case A", toy_result, ()), ("case B", toy_result, ())],
        )
        payload = json.loads(path.read_text())
        assert [run["name"] for run in payload["runs"]] == ["case A", "case B"]

    def test_creates_parent_directories(self, toy_result, tmp_path):
        path = write_report(tmp_path / "deep" / "dir" / "out.html", toy_result)
        assert path.exists()
