"""CLI run reports: ``--report``, ``report --html``, ``bench-compare``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.bench import bench_results_payload
from repro.obs.report import REPORT_SCHEMA
from repro.robust.partial import EXIT_PARTIAL


@pytest.fixture
def trace_pair(tmp_path):
    """Two small simulated HydroC traces saved to disk."""
    paths = []
    for index, block in enumerate((32, 64)):
        path = tmp_path / f"trace{index}.json"
        assert main([
            "simulate", "hydroc", f"block_size={block}", "ranks=4",
            "iterations=3", "--seed", str(index), "-o", str(path),
        ]) == 0
        paths.append(str(path))
    return paths


class TestTrackReport:
    def test_html_report_written(self, trace_pair, tmp_path, capsys):
        out = tmp_path / "run.html"
        assert main(["track", *trace_pair, "--report", str(out)]) == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        assert "Heuristic attribution" in html
        assert "wrote run report" in capsys.readouterr().err

    def test_json_report_versioned(self, trace_pair, tmp_path):
        out = tmp_path / "run.json"
        assert main(["track", *trace_pair, "--report", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == REPORT_SCHEMA
        quality = payload["runs"][0]["quality"]
        assert quality["schema"] == "repro.quality/1"
        for pair in quality["pairs"]:
            for relation in pair["relations"]:
                assert relation["proposed_by"]
                assert "confidence" in relation

    def test_report_with_profile_embeds_span_tree(
        self, trace_pair, tmp_path, capsys
    ):
        out = tmp_path / "run.html"
        assert main(
            ["track", *trace_pair, "--report", str(out), "--profile"]
        ) == 0
        assert "stage-time tree" in out.read_text()

    def test_no_strict_report_lists_quarantine(self, trace_pair, tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json", encoding="utf-8")
        out = tmp_path / "run.html"
        code = main([
            "track", *trace_pair, str(corrupt),
            "--no-strict", "--report", str(out),
        ])
        assert code == EXIT_PARTIAL
        html = out.read_text()
        assert "item(s) failed" in html
        assert "corrupt.json" in html


class TestWhoIsWhoReport:
    def test_strict_default_unchanged(self, trace_pair, capsys):
        assert main(["report", *trace_pair]) == 0
        assert "Pairwise relations" in capsys.readouterr().out

    def test_no_strict_renders_survivors_and_exits_3(
        self, trace_pair, tmp_path, capsys
    ):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("]", encoding="utf-8")
        html_out = tmp_path / "whois.html"
        code = main([
            "report", trace_pair[0], str(corrupt), trace_pair[1],
            "--no-strict", "--html", str(html_out),
        ])
        assert code == EXIT_PARTIAL
        captured = capsys.readouterr()
        # Survivors still tracked and reported...
        assert "Tracked" in captured.out
        # ...and the quarantined file is called out, on stderr and in
        # the HTML report.
        assert "corrupt.json" in captured.err
        assert "corrupt.json" in html_out.read_text()

    def test_html_without_no_strict(self, trace_pair, tmp_path):
        html_out = tmp_path / "whois.html"
        assert main(["report", *trace_pair, "--html", str(html_out)]) == 0
        assert "Heuristic attribution" in html_out.read_text()


class TestBenchCompare:
    def _write(self, path, benches):
        path.write_text(
            json.dumps(bench_results_payload(benches)), encoding="utf-8"
        )
        return str(path)

    def test_regression_exits_1(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"b": {"wall_time_s": 0.5}})
        new = self._write(tmp_path / "new.json", {"b": {"wall_time_s": 1.0}})
        assert main(["bench-compare", old, new]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_self_comparison_exits_0(self, tmp_path, capsys):
        path = self._write(
            tmp_path / "r.json",
            {"a": {"wall_time_s": 0.5}, "b": {"wall_time_s": 1.0}},
        )
        assert main(["bench-compare", path, path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        good = self._write(tmp_path / "ok.json", {"b": {"wall_time_s": 0.5}})
        assert main(["bench-compare", str(bad), good]) == 2
        assert "error:" in capsys.readouterr().err

    def test_threshold_flag_respected(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"b": {"wall_time_s": 1.0}})
        new = self._write(tmp_path / "new.json", {"b": {"wall_time_s": 1.4}})
        assert main(["bench-compare", old, new]) == 1
        assert main(["bench-compare", old, new, "--threshold", "0.5"]) == 0
