"""Metrics registry: counters, gauges, histograms, labels, snapshots."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("clustering.points_total")
        counter.inc()
        counter.inc(41)
        assert registry.counter("clustering.points_total").value == 42

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("links_pruned", evaluator="callstack").inc(3)
        registry.counter("links_pruned", evaluator="sequence").inc(5)
        assert registry.counter("links_pruned", evaluator="callstack").value == 3
        assert registry.counter("links_pruned", evaluator="sequence").value == 5

    def test_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("coverage_pct")
        gauge.set(66)
        gauge.set(100)
        assert registry.gauge("coverage_pct").value == 100


class TestHistograms:
    def test_bucket_assignment(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        # <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(556.5)
        assert hist.mean == pytest.approx(556.5 / 5)

    def test_rejects_bad_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())

    def test_percentiles_interpolate_within_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 2.0, 4.0))
        # 100 observations, uniformly in the (1, 2] bucket.
        for _ in range(100):
            hist.observe(1.5)
        # All mass sits in one bucket; interpolation walks its width.
        assert hist.p50 == pytest.approx(1.5)
        assert hist.p90 == pytest.approx(1.9)
        assert hist.p99 == pytest.approx(1.99)

    def test_percentiles_across_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        # rank 2 of 4 lands at the top of the first bucket.
        assert hist.p50 == pytest.approx(1.0)
        assert 10.0 < hist.p99 <= 100.0

    def test_percentile_overflow_clamps_to_top_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0,))
        # Two overflow observations: the estimate clamps to the highest
        # finite bound (a documented lower bound for tail percentiles).
        hist.observe(50.0)
        hist.observe(60.0)
        assert hist.p99 == 1.0

    def test_percentile_single_sample_is_exact(self):
        # Regression: a single observation used to be interpolated to
        # an arbitrary point of its bucket (or clamped to the top bound
        # in the overflow bucket); it is now returned exactly.
        registry = MetricsRegistry()
        inside = registry.histogram("inside", buckets=(1.0, 2.0))
        inside.observe(1.3)
        assert inside.p50 == 1.3
        assert inside.p90 == 1.3
        assert inside.p99 == 1.3
        overflow = registry.histogram("overflow", buckets=(1.0,))
        overflow.observe(50.0)
        assert overflow.p50 == 50.0
        assert overflow.p99 == 50.0
        assert overflow.percentile(0.0) == 50.0
        assert overflow.percentile(1.0) == 50.0

    def test_percentile_empty_and_bad_fraction(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0,))
        assert hist.p50 == 0.0
        assert hist.percentile(1.0) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_snapshot_carries_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("t", buckets=(1.0, 2.0)).observe(0.5)
        (entry,) = registry.snapshot()["histograms"]
        assert {"p50", "p90", "p99"} <= set(entry)


class TestGatedHelpers:
    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        obs.count("a", 5)
        obs.set_gauge("b", 1.0)
        obs.observe("c", 0.1)
        snapshot = obs.metrics_snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}

    def test_enabled_records(self):
        obs.enable()
        obs.count("tracking.links_pruned", 2, evaluator="callstack")
        obs.count("tracking.links_pruned", 3, evaluator="callstack")
        obs.set_gauge("tracking.coverage_pct", 88)
        obs.observe("stage.seconds", 0.25)
        snapshot = obs.metrics_snapshot()
        (counter,) = snapshot["counters"]
        assert counter["name"] == "tracking.links_pruned"
        assert counter["labels"] == {"evaluator": "callstack"}
        assert counter["value"] == 5
        (gauge,) = snapshot["gauges"]
        assert gauge["value"] == 88
        (hist,) = snapshot["histograms"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.25)

    def test_reset_clears(self):
        obs.enable()
        obs.count("a")
        obs.reset()
        assert obs.metrics_snapshot()["counters"] == []


class TestSnapshotShape:
    def test_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", k="v").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        text = json.dumps(registry.snapshot())
        assert "counters" in json.loads(text)


class TestSnapshotUnderMutation:
    """Regression: snapshotting while workers mutate must never tear.

    Before the copy-on-read fix, ``all_metrics`` iterated the live
    registry dict (``RuntimeError: dictionary changed size during
    iteration`` when a thread registered a new metric mid-walk) and
    histogram entries read ``counts``/``count`` separately, so a
    concurrent ``observe`` could yield ``sum(counts) != count`` and
    out-of-range percentiles.
    """

    def test_concurrent_snapshot_consistency(self):
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                n = 0
                while not stop.is_set():
                    n += 1
                    # Fresh label values force new-metric registration
                    # while the snapshotter walks the dict.
                    registry.counter("mut.c", w=worker, n=n % 50).inc()
                    registry.histogram("mut.h", buckets=(0.1, 1.0)).observe(
                        (n % 20) / 10
                    )
                    registry.gauge("mut.g", w=worker).set(n)
            except BaseException as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                for entry in snap["histograms"]:
                    assert sum(entry["counts"]) == entry["count"]
                    assert 0 <= entry["p50"] <= entry["buckets"][-1]
                list(registry.all_metrics())
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5)
        assert not errors, errors
