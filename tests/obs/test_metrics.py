"""Metrics registry: counters, gauges, histograms, labels, snapshots."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestCounters:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("clustering.points_total")
        counter.inc()
        counter.inc(41)
        assert registry.counter("clustering.points_total").value == 42

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("links_pruned", evaluator="callstack").inc(3)
        registry.counter("links_pruned", evaluator="sequence").inc(5)
        assert registry.counter("links_pruned", evaluator="callstack").value == 3
        assert registry.counter("links_pruned", evaluator="sequence").value == 5

    def test_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("coverage_pct")
        gauge.set(66)
        gauge.set(100)
        assert registry.gauge("coverage_pct").value == 100


class TestHistograms:
    def test_bucket_assignment(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        # <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(556.5)
        assert hist.mean == pytest.approx(556.5 / 5)

    def test_rejects_bad_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(3.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


class TestGatedHelpers:
    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        obs.count("a", 5)
        obs.set_gauge("b", 1.0)
        obs.observe("c", 0.1)
        snapshot = obs.metrics_snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}

    def test_enabled_records(self):
        obs.enable()
        obs.count("tracking.links_pruned", 2, evaluator="callstack")
        obs.count("tracking.links_pruned", 3, evaluator="callstack")
        obs.set_gauge("tracking.coverage_pct", 88)
        obs.observe("stage.seconds", 0.25)
        snapshot = obs.metrics_snapshot()
        (counter,) = snapshot["counters"]
        assert counter["name"] == "tracking.links_pruned"
        assert counter["labels"] == {"evaluator": "callstack"}
        assert counter["value"] == 5
        (gauge,) = snapshot["gauges"]
        assert gauge["value"] == 88
        (hist,) = snapshot["histograms"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.25)

    def test_reset_clears(self):
        obs.enable()
        obs.count("a")
        obs.reset()
        assert obs.metrics_snapshot()["counters"] == []


class TestSnapshotShape:
    def test_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", k="v").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        text = json.dumps(registry.snapshot())
        assert "counters" in json.loads(text)
