"""Span tracing: nesting, timing, attributes, and the disabled path."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN


class TestNesting:
    def test_parent_child_ids(self):
        obs.enable()
        with obs.span("parent") as parent:
            with obs.span("child") as child:
                with obs.span("grandchild") as grandchild:
                    pass
        assert parent.parent_id == 0
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id

    def test_siblings_share_parent(self):
        obs.enable()
        with obs.span("parent") as parent:
            with obs.span("a") as a:
                pass
            with obs.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_completion_order_children_first(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        names = [sp.name for sp in obs.finished_spans()]
        assert names == ["inner", "outer"]

    def test_child_time_within_parent(self):
        obs.enable()
        with obs.span("outer") as outer:
            time.sleep(0.001)
            with obs.span("inner") as inner:
                time.sleep(0.002)
            time.sleep(0.001)
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert inner.duration <= outer.duration
        assert inner.duration >= 0.002

    def test_current_span(self):
        obs.enable()
        assert obs.current_span() is None
        with obs.span("a") as a:
            assert obs.current_span() is a
        assert obs.current_span() is None


class TestAttributes:
    def test_initial_and_set(self):
        obs.enable()
        with obs.span("stage", n_bursts=100, eps=0.03) as sp:
            sp.set(n_clusters=7)
        assert sp.attrs == {"n_bursts": 100, "eps": 0.03, "n_clusters": 7}

    def test_exception_marks_error_and_records(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (sp,) = obs.finished_spans()
        assert sp.attrs["error"] == "ValueError"
        assert obs.current_span() is None  # stack unwound

    def test_traced_decorator(self):
        obs.enable()

        @obs.traced("my.stage", kind="unit-test")
        def work(x):
            return x * 2

        assert work(21) == 42
        (sp,) = obs.finished_spans()
        assert sp.name == "my.stage"
        assert sp.attrs == {"kind": "unit-test"}

    def test_traced_default_name(self):
        obs.enable()

        @obs.traced()
        def some_function():
            return 1

        some_function()
        (sp,) = obs.finished_spans()
        assert "some_function" in sp.name


class TestDisabledPath:
    def test_no_spans_recorded(self):
        assert not obs.enabled()
        with obs.span("stage", n=1) as sp:
            sp.set(more=2)
        assert obs.finished_spans() == ()

    def test_null_span_singleton(self):
        assert obs.span("a") is obs.span("b") is NULL_SPAN

    def test_traced_passthrough(self):
        @obs.traced("x")
        def fn():
            return "value"

        assert fn() == "value"
        assert obs.finished_spans() == ()

    def test_disabled_span_cost_sanity_bound(self):
        """The disabled path must stay well under a microsecond per call.

        Sanity bound (5µs), not a tight benchmark — a regression that
        starts allocating spans or touching thread-locals while disabled
        blows far past this.
        """
        n = 50_000
        span = obs.span
        start = time.perf_counter()
        for _ in range(n):
            span("hot.stage", a=1)
        per_call = (time.perf_counter() - start) / n
        assert per_call < 5e-6

    def test_enable_disable_toggle(self):
        obs.enable()
        with obs.span("on"):
            pass
        obs.disable()
        with obs.span("off"):
            pass
        names = [sp.name for sp in obs.finished_spans()]
        assert names == ["on"]
