"""Exporters: stage tree, Chrome Trace Event format, JSON-lines."""

from __future__ import annotations

import io
import json
import time

from repro import obs


def _record_sample_run():
    obs.enable()
    with obs.span("pipeline", n_traces=2):
        for index in range(2):
            with obs.span("clustering.frame", frame=index):
                time.sleep(0.001)
        with obs.span("tracking.run"):
            time.sleep(0.001)
    obs.count("tracking.links_pruned", 4, evaluator="callstack")


class TestTree:
    def test_aggregates_repeated_stages(self):
        _record_sample_run()
        tree = obs.render_tree()
        assert "pipeline" in tree
        assert "clustering.frame  x2" in tree
        assert "tracking.run" in tree

    def test_empty_tree_message(self):
        assert "no spans" in obs.render_tree()

    def test_metrics_rendering(self):
        _record_sample_run()
        text = obs.render_metrics()
        assert "tracking.links_pruned{evaluator=callstack} = 4" in text

    def test_summary_writes_stream_and_marks_flushed(self):
        _record_sample_run()
        stream = io.StringIO()
        obs.summary(stream)
        output = stream.getvalue()
        assert "stage-time tree" in output
        assert "tracking.links_pruned" in output
        from repro.obs.core import STATE

        assert STATE.flushed


class TestChromeTrace:
    def test_valid_document(self, tmp_path):
        _record_sample_run()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(complete) == 4
        assert metadata[0]["args"]["name"] == "repro main"
        assert all(event["dur"] >= 0 for event in complete)
        assert all(isinstance(event["ts"], float) for event in complete)
        names = {event["name"] for event in complete}
        assert names == {"pipeline", "clustering.frame", "tracking.run"}

    def test_args_carry_attributes(self, tmp_path):
        _record_sample_run()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path)
        document = json.loads(path.read_text())
        frames = [
            event for event in document["traceEvents"]
            if event["name"] == "clustering.frame"
        ]
        assert sorted(event["args"]["frame"] for event in frames) == [0, 1]

    def test_numpy_attrs_serialised(self, tmp_path):
        import numpy as np

        obs.enable()
        with obs.span("s", count=np.int64(3), ratio=np.float64(0.5)):
            pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path)
        (event,) = [
            e for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert event["args"] == {"count": 3, "ratio": 0.5}

    def test_events_sorted_by_start(self, tmp_path):
        _record_sample_run()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path)
        timestamps = [
            e["ts"] for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] == "X"
        ]
        assert timestamps == sorted(timestamps)


class TestJsonl:
    def test_one_record_per_span_plus_metrics(self, tmp_path):
        _record_sample_run()
        path = tmp_path / "spans.jsonl"
        obs.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        span_lines, metric_lines = lines[:-1], lines[-1]
        assert len(span_lines) == 4
        assert {"span_id", "parent_id", "name", "start", "end", "duration"} <= set(
            span_lines[0]
        )
        assert "metrics" in metric_lines
        pruned = [
            counter for counter in metric_lines["metrics"]["counters"]
            if counter["name"] == "tracking.links_pruned"
        ]
        assert pruned and pruned[0]["value"] == 4

    def test_parent_ids_resolve(self, tmp_path):
        _record_sample_run()
        path = tmp_path / "spans.jsonl"
        obs.write_jsonl(path)
        records = [json.loads(line) for line in path.read_text().splitlines()][:-1]
        ids = {record["span_id"] for record in records}
        for record in records:
            assert record["parent_id"] == 0 or record["parent_id"] in ids
