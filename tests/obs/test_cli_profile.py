"""CLI observability: ``--profile``, ``-v/-q``, and the REPRO_OBS env var.

Includes the smoke check required by CI: ``python -m repro track
--profile`` over two small simulated traces must exit 0 and emit a
parseable profile.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.cli import build_parser, main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def trace_pair(tmp_path):
    """Two small simulated HydroC traces saved to disk."""
    paths = []
    for index, block in enumerate((32, 64)):
        path = tmp_path / f"trace{index}.json"
        assert main([
            "simulate", "hydroc", f"block_size={block}", "ranks=4",
            "iterations=3", "--seed", str(index), "-o", str(path),
        ]) == 0
        paths.append(str(path))
    return paths


class TestParser:
    def test_profile_flag_forms(self):
        parser = build_parser()
        args = parser.parse_args(["track", "a", "b"])
        assert args.profile is None
        args = parser.parse_args(["track", "a", "b", "--profile"])
        assert args.profile == ""
        args = parser.parse_args(["track", "a", "b", "--profile", "out.json"])
        assert args.profile == "out.json"
        for command in ("study", "table2"):
            names = ["x"] if command == "study" else []
            assert parser.parse_args([command, *names, "--profile"]).profile == ""

    def test_verbosity_before_or_after_subcommand(self):
        parser = build_parser()
        assert parser.parse_args(["-v", "info"]).verbose == 1
        assert parser.parse_args(["info", "-v"]).verbose == 1
        assert parser.parse_args(["info", "-vv"]).verbose == 2
        assert parser.parse_args(["-q", "info"]).quiet == 1


class TestTrackProfile:
    def test_profile_prints_tree_and_counters(self, trace_pair, capsys):
        assert main(["track", *trace_pair, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "stage-time tree" in err
        assert "clustering.make_frame" in err
        assert "tracking.evaluator.displacement" in err
        assert "tracking.links_proposed{evaluator=displacement}" in err
        # --profile must not leave observability enabled behind.
        assert not obs.enabled()

    def test_profile_writes_chrome_trace(self, trace_pair, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main(["track", *trace_pair, "--profile", str(out)]) == 0
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        assert events, "chrome trace must contain events"
        assert all(event["ph"] in ("X", "M", "s", "f") for event in events)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "tracking.run" in names

    def test_no_profile_no_tree(self, trace_pair, capsys):
        assert main(["track", *trace_pair]) == 0
        assert "stage-time tree" not in capsys.readouterr().err


class TestStudyProfile:
    def test_study_profile_covers_pipeline(self, capsys):
        assert main(["study", "WRF", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "study.run" in err
        assert "clustering.dbscan" in err
        assert "tracking.evaluator.simultaneity" in err
        assert "tracking.trends" in err
        assert "tracking.links_confirmed{evaluator=displacement}" in err


class TestVerboseLogging:
    def test_verbose_shows_override_log(self, trace_pair, capsys):
        code = main(["track", *trace_pair, "--log-y", "-v"])
        assert code == 0
        err = capsys.readouterr().err
        assert "log_extensive" in err

    def test_quiet_by_default(self, trace_pair, capsys):
        assert main(["track", *trace_pair, "--log-y"]) == 0
        assert "log_extensive" not in capsys.readouterr().err


class TestSmokeSubprocess:
    """The CI smoke check: a real interpreter, REPRO_OBS from env."""

    def test_track_profile_subprocess(self, trace_pair, tmp_path):
        out = tmp_path / "chrome.json"
        env = dict(os.environ, REPRO_OBS="1", PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "track", *trace_pair,
             "--profile", str(out)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "stage-time tree" in proc.stderr
        assert "tracking.links_proposed" in proc.stderr
        document = json.loads(out.read_text())
        assert document["traceEvents"]

    def test_env_var_alone_emits_summary_at_exit(self, trace_pair):
        env = dict(os.environ, REPRO_OBS="1", PYTHONPATH=REPO_SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "track", *trace_pair],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        # No --profile given: the CLI flushes because REPRO_OBS enabled
        # tracing, so the atexit fallback stays silent (no double print).
        assert proc.stderr.count("stage-time tree") == 1
