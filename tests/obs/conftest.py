"""Fixtures for the observability tests: every test gets clean state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset spans/metrics and restore the disabled default afterwards."""
    obs.reset()
    yield
    obs.disable()
    obs.reset()
