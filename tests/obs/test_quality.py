"""Unit tests for repro.obs.quality: tracking-quality metrics."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.clustering.frames import make_frames
from repro.obs.quality import (
    CONFIDENCE_BUCKETS,
    QUALITY_SCHEMA,
    ConfidenceStats,
    quality_report,
)
from repro.robust.partial import ItemFailure
from repro.tracking.evaluators import EVALUATORS
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace


@pytest.fixture(scope="module")
def toy_result():
    traces = [
        build_two_region_trace(seed=1, scenario={"run": 0}),
        build_two_region_trace(
            seed=2, scenario={"run": 1}, ipc_a=1.1, ipc_b=0.4
        ),
        build_two_region_trace(
            seed=3, scenario={"run": 2}, ipc_a=1.2, ipc_b=0.45
        ),
    ]
    return Tracker(make_frames(traces)).run()


class TestQualityReport:
    def test_headline_numbers(self, toy_result):
        report = quality_report(toy_result)
        assert report.n_frames == 3
        assert report.n_regions == 2
        assert report.coverage == 100
        assert len(report.pairs) == 2
        assert len(report.frame_labels) == 3

    def test_every_relation_attributed(self, toy_result):
        report = quality_report(toy_result)
        for pair in report.pairs:
            assert pair.n_relations == len(pair.relations)
            for relation in pair.relations:
                assert relation.proposed_by in (*EVALUATORS, "unmatched")
                assert 0.0 <= relation.confidence <= 1.0

    def test_confidence_distribution(self, toy_result):
        report = quality_report(toy_result)
        stats = report.confidence
        assert stats.count == 4  # two univocal relations per pair
        assert stats.minimum <= stats.median <= stats.maximum
        assert sum(stats.histogram) == stats.count

    def test_region_persistence(self, toy_result):
        report = quality_report(toy_result)
        assert len(report.regions) == 2
        for region in report.regions:
            assert region.persistence == 1.0
            assert region.contiguous
            assert 0.0 < region.time_share <= 1.0

    def test_heuristic_totals_cover_relations(self, toy_result):
        report = quality_report(toy_result)
        proposed = sum(
            dict(counts).get("relations_proposed", 0)
            for _, counts in report.heuristics
        )
        assert proposed == sum(pair.n_relations for pair in report.pairs)

    def test_to_dict_is_versioned_and_serialisable(self, toy_result):
        payload = quality_report(toy_result).to_dict()
        assert payload["schema"] == QUALITY_SCHEMA
        encoded = json.loads(json.dumps(payload))
        assert encoded["n_frames"] == 3
        assert encoded["robust"]["quarantined"] == {}

    def test_failures_counted_by_stage(self, toy_result):
        failures = (
            ItemFailure("bad.json", "load", "TraceFormatError", "nope"),
            ItemFailure("x -> y (pair 1)", "pair", "ValueError", "boom"),
        )
        report = quality_report(toy_result, failures=failures)
        assert dict(report.quarantined) == {"load": 1, "pair": 1}
        quarantined_pairs = [p for p in report.pairs if p.quarantined]
        assert [p.pair_index for p in quarantined_pairs] == [1]

    def test_repaired_bursts_none_when_obs_disabled(self, toy_result):
        assert quality_report(toy_result).repaired_bursts is None

    def test_repaired_bursts_read_from_registry(self, toy_result):
        obs.enable()
        obs.count("robust.recovered_total", 3, stage="ingest")
        report = quality_report(toy_result)
        assert report.repaired_bursts == 3


class TestConfidenceStats:
    def test_empty(self):
        stats = ConfidenceStats.from_values([])
        assert stats.count == 0
        assert stats.histogram == (0,) * len(CONFIDENCE_BUCKETS)

    def test_bucketing(self):
        stats = ConfidenceStats.from_values([0.1, 0.3, 0.6, 0.9, 1.0])
        assert stats.count == 5
        assert stats.histogram == (1, 1, 1, 2)
        assert stats.minimum == 0.1
        assert stats.maximum == 1.0


class TestAlertTotals:
    def test_to_dict_omits_alerts_when_not_given(self, toy_result):
        # Golden-fixture safety: payloads without alert totals keep the
        # pre-alerting shape bit-for-bit.
        payload = quality_report(toy_result).to_dict()
        assert "alerts" not in payload

    def test_to_dict_carries_alert_totals_when_given(self, toy_result):
        from repro.obs.alerts import AlertRecord, summarize_alerts

        totals = summarize_alerts([
            AlertRecord(window=1, step=1, region_id=1, track="f0:c1",
                        kind="divergence", metric="ipc"),
            AlertRecord(window=2, step=2, region_id=2, track="f0:c2",
                        kind="death"),
        ])
        report = quality_report(toy_result, alerts=totals)
        assert report.alerts is totals
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["alerts"]["total"] == 2
        assert payload["alerts"]["by_kind"] == {
            "death": 1, "divergence": 1,
        }
