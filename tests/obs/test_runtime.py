"""Resource-sampler tests: sampling, stage attribution, pure-observer."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    SAMPLE_ENV,
    ResourceSampler,
    active_sampler,
    current_rss_kib,
    open_fd_count,
    resolve_sampler,
    set_active_sampler,
)


@pytest.fixture(autouse=True)
def clean_sampler(monkeypatch):
    monkeypatch.delenv(SAMPLE_ENV, raising=False)
    set_active_sampler(None)
    yield
    set_active_sampler(None)


class TestProbes:
    def test_rss_positive(self):
        assert current_rss_kib() > 0

    def test_fd_count_positive(self):
        assert open_fd_count() > 0


class TestSampleOnce:
    def test_fields_populated(self):
        sampler = ResourceSampler(registry=MetricsRegistry())
        sample = sampler.sample_once()
        assert sample.rss_kib > 0
        assert sample.cpu_s > 0
        assert sample.open_fds > 0
        assert sample.gc_gen0 >= 0
        assert sample.stage == ""  # no span active
        assert sample.to_dict()["rss_kib"] == sample.rss_kib

    def test_stage_attribution_follows_spans(self):
        obs.enable()
        sampler = ResourceSampler(registry=MetricsRegistry())
        with obs.span("outer"):
            assert sampler.sample_once().stage == "outer"
            with obs.span("inner"):
                assert sampler.sample_once().stage == "inner"
            assert sampler.sample_once().stage == "outer"
        assert sampler.sample_once().stage == ""

    def test_occupancy_gauges_folded_in(self):
        registry = MetricsRegistry()
        registry.gauge("stream.live_windows").set(7)
        registry.gauge("stream.evalcache_entries").set(42)
        sample = ResourceSampler(registry=registry).sample_once()
        assert sample.live_windows == 7
        assert sample.evalcache_entries == 42

    def test_publishes_runtime_gauges(self):
        registry = MetricsRegistry()
        ResourceSampler(registry=registry).sample_once()
        snap = registry.snapshot()
        names = {entry["name"] for entry in snap["gauges"]}
        assert "runtime.rss_kib" in names
        assert "runtime.cpu_seconds_total" in names
        assert "runtime.sample_count" in names


class TestLifecycle:
    def test_thread_collects_samples(self):
        sampler = ResourceSampler(0.005, registry=MetricsRegistry())
        with sampler:
            time.sleep(0.05)
        assert not sampler.running
        assert len(sampler.snapshot_samples()) >= 2

    def test_stop_takes_final_sample(self):
        sampler = ResourceSampler(60.0, registry=MetricsRegistry())
        sampler.start()
        sampler.stop()
        # The period never elapsed, but start() samples immediately and
        # stop() snapshots the tail — never an empty buffer.
        assert len(sampler.snapshot_samples()) == 2

    def test_start_samples_immediately(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(60.0, registry=registry)
        sampler.start()
        try:
            deadline = time.monotonic() + 2.0
            while not sampler.snapshot_samples():
                assert time.monotonic() < deadline, "no immediate sample"
                time.sleep(0.001)
            # A scraper attaching right after start sees runtime gauges.
            names = {entry["name"] for entry in registry.snapshot()["gauges"]}
            assert "runtime.rss_kib" in names
        finally:
            sampler.stop()

    def test_start_idempotent(self):
        sampler = ResourceSampler(60.0, registry=MetricsRegistry())
        try:
            assert sampler.start() is sampler.start()
        finally:
            sampler.stop()

    def test_bounded_buffer_drops_oldest(self):
        sampler = ResourceSampler(registry=MetricsRegistry(), max_samples=3)
        for _ in range(5):
            sampler.sample_once()
        assert len(sampler.snapshot_samples()) == 3
        assert sampler.dropped == 2
        assert sampler.summary()["n_samples"] == 5

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            ResourceSampler(0)


class TestSummaries:
    def test_stage_summary_envelopes(self):
        obs.enable()
        sampler = ResourceSampler(registry=MetricsRegistry())
        sampler.sample_once()  # idle
        with obs.span("hot"):
            sampler.sample_once()
            sampler.sample_once()
        stages = sampler.stage_summary()
        assert stages["(idle)"]["n_samples"] == 1
        assert stages["hot"]["n_samples"] == 2
        assert stages["hot"]["rss_max_kib"] >= stages["hot"]["rss_min_kib"]
        assert stages["hot"]["cpu_s"] >= 0

    def test_summary_totals(self):
        sampler = ResourceSampler(registry=MetricsRegistry())
        sampler.sample_once()
        sampler.sample_once()
        summary = sampler.summary()
        assert summary["period_s"] == sampler.period
        assert summary["n_samples"] == 2
        assert summary["rss_max_kib"] > 0
        assert summary["cpu_s"] >= 0
        assert "(idle)" in summary["stages"]

    def test_empty_summary(self):
        summary = ResourceSampler(registry=MetricsRegistry()).summary()
        assert summary["n_samples"] == 0
        assert "rss_max_kib" not in summary


class TestResolveSampler:
    def test_disabled_without_env(self):
        assert resolve_sampler() is None

    def test_truthy_env_uses_default_period(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "1")
        sampler = resolve_sampler()
        assert sampler is not None
        assert sampler.period == pytest.approx(0.05)

    def test_float_env_sets_period(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0.25")
        assert resolve_sampler().period == pytest.approx(0.25)

    def test_malformed_env_disables(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "often")
        assert resolve_sampler() is None
        monkeypatch.setenv(SAMPLE_ENV, "-1")
        assert resolve_sampler() is None

    def test_explicit_period_wins(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_ENV, "0.25")
        assert resolve_sampler(period=0.01).period == pytest.approx(0.01)

    def test_active_sampler_handle(self):
        sampler = ResourceSampler(registry=MetricsRegistry())
        set_active_sampler(sampler)
        assert active_sampler() is sampler
        set_active_sampler(None)
        assert active_sampler() is None


class TestPureObserver:
    def test_sampler_on_off_bit_identical(self):
        """Tracking output is byte-identical with the sampler hammering."""
        from repro.apps import wrf
        from repro.clustering.frames import FrameSettings
        from repro.stream import track_windows

        def run():
            trace = wrf.build(ranks=16, iterations=6).run(seed=3)
            return track_windows(
                trace, n_windows=4, settings=FrameSettings(relevance=0.995)
            )

        baseline = run()
        obs.enable()
        sampler = ResourceSampler(0.001)
        with sampler:
            sampled = run()
        assert len(sampler.snapshot_samples()) >= 1
        assert sampled.coverage == baseline.coverage
        assert len(sampled.regions) == len(baseline.regions)
        assert [
            sorted(map(tuple, region.members)) for region in sampled.regions
        ] == [
            sorted(map(tuple, region.members)) for region in baseline.regions
        ]
        assert [
            [repr(rel) for rel in pair.relations]
            for pair in sampled.pair_relations
        ] == [
            [repr(rel) for rel in pair.relations]
            for pair in baseline.pair_relations
        ]
