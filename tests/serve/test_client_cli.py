"""The repro-track serve client subcommands, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve import JobClient, JobServer

FAST_SPEC = {
    "kind": "track",
    "app": "hydroc",
    "scenarios": [
        {"block_size": 64, "ranks": 8, "iterations": 3},
        {"block_size": 64, "ranks": 8, "iterations": 4},
    ],
    "seeds": [1, 2],
}


@pytest.fixture
def server(live_server, tmp_path):
    return live_server(JobServer, tmp_path / "srv", workers=1)


def test_submit_wait_status_result_round_trip(server, tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(FAST_SPEC), encoding="utf-8")

    code = main(
        ["submit", str(spec_file), "--url", server.url, "--tenant", "cli",
         "--wait", "--timeout", "240"]
    )
    out = capsys.readouterr().out
    assert code == 0
    final = json.loads(out)
    assert final["state"] == "done"
    job_id = final["job_id"]

    assert main(["status", job_id, "--url", server.url]) == 0
    status_doc = json.loads(capsys.readouterr().out)
    assert status_doc["state"] == "done"

    assert main(["status", "--tenant", "cli", "--url", server.url]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert [j["job_id"] for j in listing] == [job_id]

    result_file = tmp_path / "result.json"
    code = main(
        ["result", job_id, "--url", server.url, "-o", str(result_file)]
    )
    assert code == 0
    capsys.readouterr()
    payload = json.loads(result_file.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro.serve.result/1"
    # The CLI-fetched bytes are the server's canonical artefact.
    assert result_file.read_bytes() == JobClient(server.url).result(job_id)

    report_file = tmp_path / "report.html"
    code = main(
        ["result", job_id, "--url", server.url, "--report", "-o",
         str(report_file)]
    )
    assert code == 0
    capsys.readouterr()
    assert report_file.read_bytes().startswith(b"<!DOCTYPE html>")


def test_submit_without_wait_prints_submitted_record(server, tmp_path, capsys):
    server.runner.pause()
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(FAST_SPEC), encoding="utf-8")
    code = main(
        ["submit", str(spec_file), "--url", server.url, "--tenant", "cli"]
    )
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["state"] == "submitted"


def test_client_error_paths(server, tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_URL", raising=False)
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(FAST_SPEC), encoding="utf-8")

    # No URL anywhere -> exit 2 with guidance.
    assert main(["submit", str(spec_file)]) == 2
    assert "REPRO_SERVE_URL" in capsys.readouterr().err

    # REPRO_SERVE_URL works as the default (scheme optional).
    monkeypatch.setenv(
        "REPRO_SERVE_URL", server.url.replace("http://", "")
    )
    server.runner.pause()
    assert main(["submit", str(spec_file), "--tenant", "cli"]) == 0
    capsys.readouterr()

    # Unknown job id -> ReproError path, exit 2.
    assert main(["status", "deadbeef0000", "--url", server.url]) == 2
    assert "404" in capsys.readouterr().err

    # Malformed spec file -> exit 2 before any network call.
    bad = tmp_path / "bad.json"
    bad.write_text("{broken", encoding="utf-8")
    assert main(["submit", str(bad), "--url", server.url]) == 2
    assert "JSON" in capsys.readouterr().err

    # Server-side spec rejection -> exit 2 with the validation message.
    invalid = tmp_path / "invalid.json"
    invalid.write_text(
        json.dumps(dict(FAST_SPEC, app="no-such-app")), encoding="utf-8"
    )
    assert main(["submit", str(invalid), "--url", server.url]) == 2
    assert "unknown application" in capsys.readouterr().err

    # Status with neither job id nor tenant -> usage error.
    assert main(["status", "--url", server.url]) == 2


def test_serve_port_in_use_exits_1(server, tmp_path, capsys):
    code = main(
        ["serve", "--root", str(tmp_path / "other"), "--port",
         str(server.port)]
    )
    assert code == 1
    assert "cannot serve jobs" in capsys.readouterr().err
