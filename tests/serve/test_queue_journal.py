"""Queue + journal semantics: admission, ordering, durability, recovery."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import AdmissionError, ServeError
from repro.serve import JobJournal, JobQueue, JobSpec
from repro.serve.journal import JOB_SCHEMA

SPEC = JobSpec.from_dict(
    {
        "kind": "track",
        "app": "hydroc",
        "scenarios": [{"block_size": 64}, {"block_size": 128}],
        "seeds": [1, 2],
    }
)


def make_queue(tmp_path, **kwargs):
    journal = JobJournal(tmp_path / "journal")
    return JobQueue(journal, **kwargs), journal


class TestAdmission:
    def test_fifo_claim_order(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        first = queue.submit("a", SPEC)
        second = queue.submit("a", SPEC)
        assert queue.claim_next(timeout=0).job_id == first.job_id
        assert queue.claim_next(timeout=0).job_id == second.job_id
        assert queue.claim_next(timeout=0) is None

    def test_queue_depth_cap(self, tmp_path):
        queue, _ = make_queue(tmp_path, max_queue=2, tenant_cap=10)
        queue.submit("a", SPEC)
        queue.submit("b", SPEC)
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("c", SPEC)
        assert excinfo.value.reason == "queue_full"
        # Claiming one frees a waiting slot.
        queue.claim_next(timeout=0)
        queue.submit("c", SPEC)

    def test_tenant_cap_counts_running_jobs(self, tmp_path):
        queue, _ = make_queue(tmp_path, max_queue=10, tenant_cap=2)
        queue.submit("a", SPEC)
        queue.submit("a", SPEC)
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit("a", SPEC)
        assert excinfo.value.reason == "tenant_cap"
        # Other tenants are unaffected.
        queue.submit("b", SPEC)
        # Claiming does NOT free the cap (the job is running, still active)...
        claimed = queue.claim_next(timeout=0)
        assert claimed.tenant == "a"
        with pytest.raises(AdmissionError):
            queue.submit("a", SPEC)
        # ...finishing does.
        queue.mark_done(claimed.job_id, {})
        queue.submit("a", SPEC)

    def test_rejected_jobs_never_journaled(self, tmp_path):
        queue, journal = make_queue(tmp_path, max_queue=1)
        queue.submit("a", SPEC)
        with pytest.raises(AdmissionError):
            queue.submit("a", SPEC)
        events = journal.read_events()
        assert len(events) == 1 and events[0]["event"] == "submitted"


class TestLifecycle:
    def test_done_and_failed_are_terminal(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        record = queue.submit("a", SPEC)
        claimed = queue.claim_next(timeout=0)
        assert claimed.state == "running" and claimed.attempts == 1
        queue.mark_done(record.job_id, {"coverage": 99.0})
        assert queue.get(record.job_id).state == "done"
        with pytest.raises(ServeError, match="terminal"):
            queue.mark_failed(record.job_id, "X", "late failure")

    def test_cancel_only_waiting_jobs(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        record = queue.submit("a", SPEC)
        queue.cancel(record.job_id)
        assert queue.get(record.job_id).state == "cancelled"
        # A cancelled job is never claimed.
        assert queue.claim_next(timeout=0) is None
        running = queue.submit("a", SPEC)
        queue.claim_next(timeout=0)
        with pytest.raises(ServeError, match="running"):
            queue.cancel(running.job_id)
        with pytest.raises(ServeError, match="unknown job"):
            queue.cancel("000000000000")

    def test_claim_blocks_until_submit(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        claimed = []
        thread = threading.Thread(
            target=lambda: claimed.append(queue.claim_next(timeout=5.0))
        )
        thread.start()
        record = queue.submit("a", SPEC)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert claimed[0].job_id == record.job_id

    def test_close_wakes_blocked_claimers(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        claimed = []
        thread = threading.Thread(
            target=lambda: claimed.append(queue.claim_next(timeout=30.0))
        )
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert claimed == [None]
        with pytest.raises(ServeError, match="closed"):
            queue.submit("a", SPEC)


class TestDurability:
    def test_events_carry_schema_and_parse(self, tmp_path):
        queue, journal = make_queue(tmp_path)
        record = queue.submit("acme", SPEC)
        queue.claim_next(timeout=0)
        queue.mark_done(record.job_id, {"coverage": 1.0})
        events = journal.read_events()
        assert [e["event"] for e in events] == ["submitted", "started", "done"]
        assert all(e["schema"] == JOB_SCHEMA for e in events)
        assert events[0]["spec"] == SPEC.to_dict()

    def test_recover_requeues_interrupted_jobs_exactly_once(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        waiting = queue.submit("a", SPEC)
        running = queue.submit("a", SPEC)
        done = queue.submit("b", SPEC)
        # Drive: claim 'waiting' first (FIFO), finish nothing; claim and
        # finish 'done' via a second claim after reordering by marking.
        first = queue.claim_next(timeout=0)
        assert first.job_id == waiting.job_id
        queue.mark_done(waiting.job_id, {})
        second = queue.claim_next(timeout=0)  # 'running' now mid-flight
        assert second.job_id == running.job_id
        third = queue.claim_next(timeout=0)
        queue.mark_failed(third.job_id, "Boom", "kaput")
        assert third.job_id == done.job_id

        # "Server restart": fresh queue over the same journal.
        rebuilt = JobQueue(JobJournal(tmp_path / "journal"))
        requeued = rebuilt.recover()
        assert [r.job_id for r in requeued] == [running.job_id]
        assert rebuilt.get(waiting.job_id).state == "done"
        assert rebuilt.get(done.job_id).state == "failed"
        assert rebuilt.get(done.job_id).error_type == "Boom"
        revived = rebuilt.get(running.job_id)
        assert revived.state == "submitted"
        assert revived.attempts == 1  # one real claim happened
        assert revived.spec == SPEC

        # A second restart finds the job still waiting: it re-enters the
        # queue exactly once more — never duplicated, and attempts only
        # count real claims (exactly-once salvage, not at-least-once).
        again = JobQueue(JobJournal(tmp_path / "journal"))
        requeued_again = again.recover()
        assert [r.job_id for r in requeued_again] == [running.job_id]
        claimed = again.claim_next(timeout=0)
        assert claimed.job_id == running.job_id
        assert claimed.attempts == 2
        assert again.claim_next(timeout=0) is None  # no duplicate entry

    def test_recovery_tolerates_corrupt_journal_lines(self, tmp_path):
        queue, journal = make_queue(tmp_path)
        record = queue.submit("a", SPEC)
        segment = next(iter(journal.root.glob("events-*.jsonl")))
        with segment.open("a", encoding="utf-8") as handle:
            handle.write('{"truncated": \n')
            handle.write("garbage line\n")
        rebuilt = JobQueue(JobJournal(tmp_path / "journal"))
        rebuilt.recover()
        assert rebuilt.get(record.job_id).state == "submitted"

    def test_counts_and_depth(self, tmp_path):
        queue, _ = make_queue(tmp_path)
        queue.submit("a", SPEC)
        record = queue.submit("a", SPEC)
        queue.claim_next(timeout=0)
        assert queue.depth() == 1
        counts = queue.counts()
        assert counts["running"] == 1 and counts["submitted"] == 1
        assert json.dumps(counts)  # JSON-safe for /healthz
        assert record.to_dict()["spec"] == SPEC.to_dict()
