"""Concurrency/isolation stress: N tenants x M concurrent jobs.

The multi-tenant contract under load:

* admission control holds — per-tenant caps and the queue depth bound
  are enforced under concurrent submission, and rejections are
  observable (HTTP 429 with a machine-readable reason);
* isolation holds — each tenant's cache, ledger, and results live
  only under its own tree, per-tenant ledgers record exactly that
  tenant's runs, and every tenant's result is bit-identical to its own
  direct pipeline run (no cross-tenant mixing);
* liveness holds — every accepted job reaches a terminal state; no
  job is orphaned.
"""

from __future__ import annotations

import json
import threading

from repro.errors import AdmissionError
from repro.obs.ledger import RunLedger
from repro.serve import (
    JobClient,
    JobServer,
    JobSpec,
    TenantPaths,
    canonical_json,
    result_payload,
)
from repro.serve.runner import execute_spec

TENANTS = ["t0", "t1", "t2"]
TENANT_CAP = 3
SUBMITS_PER_TENANT = 4  # one more than the cap

#: Small per-tenant work; distinct seeds make every tenant's result
#: distinct, so any cross-tenant mixing would change bytes.
def tenant_spec(index: int) -> dict:
    return {
        "kind": "track",
        "app": "hydroc",
        "scenarios": [
            {"block_size": 64, "ranks": 8, "iterations": 3},
            {"block_size": 64, "ranks": 8, "iterations": 4},
        ],
        "seeds": [100 + index, 200 + index],
        "settings": {"relevance": 0.995},
    }


def direct_bytes(spec: dict) -> bytes:
    job_spec = JobSpec.from_dict(spec)
    result, failures = execute_spec(job_spec)
    return canonical_json(result_payload(job_spec, result, failures)).encode()


def test_multi_tenant_stress(live_server, tmp_path):
    # max_queue exceeds the per-tenant admissible load (cap x tenants = 9)
    # so during the concurrent phase only tenant_cap can fire; queue_full
    # is provoked deterministically afterwards by filling the gap.
    max_queue = TENANT_CAP * len(TENANTS) + TENANT_CAP
    server = live_server(
        JobServer,
        tmp_path / "srv",
        workers=4,
        max_queue=max_queue,
        tenant_cap=TENANT_CAP,
        job_timeout=600.0,
    )
    server.runner.pause()  # hold everything waiting: caps are deterministic
    client = JobClient(server.url)

    # -- concurrent submission phase ----------------------------------
    accepted: dict[str, list[str]] = {t: [] for t in TENANTS}
    rejections: list[AdmissionError] = []
    lock = threading.Lock()

    def submit_one(tenant: str, index: int) -> None:
        try:
            record = JobClient(server.url).submit(tenant, tenant_spec(index))
        except AdmissionError as exc:
            with lock:
                rejections.append(exc)
        else:
            with lock:
                accepted[tenant].append(record["job_id"])

    threads = [
        threading.Thread(
            target=submit_one,
            args=(tenant, 10 * TENANTS.index(tenant) + i),
        )
        for tenant in TENANTS
        for i in range(SUBMITS_PER_TENANT)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads)

    # Caps enforced under concurrency: exactly the cap per tenant, the
    # overflow submission rejected with the tenant_cap reason.
    for tenant in TENANTS:
        assert len(accepted[tenant]) == TENANT_CAP, accepted
    assert len(rejections) == len(TENANTS) * (SUBMITS_PER_TENANT - TENANT_CAP)
    assert {exc.reason for exc in rejections} == {"tenant_cap"}

    # Fill the remaining depth with a filler tenant, then the depth
    # bound rejects the next submission from anyone.
    filler = [
        client.submit("filler", tenant_spec(90 + i))["job_id"]
        for i in range(max_queue - TENANT_CAP * len(TENANTS))
    ]
    try:
        client.submit("t3", tenant_spec(99))
    except AdmissionError as exc:
        assert exc.reason == "queue_full"
    else:
        raise AssertionError("queue_full rejection did not fire")
    health = client.health()
    assert health["serve"]["queue_depth"] == max_queue
    for job_id in filler:
        assert client.cancel(job_id)["state"] == "cancelled"

    # Cancel one waiting job per tenant: cancelled is a terminal state
    # the drain below must not resurrect.
    cancelled = {t: accepted[t][-1] for t in TENANTS}
    for tenant, job_id in cancelled.items():
        assert client.cancel(job_id)["state"] == "cancelled"

    # -- drain phase ---------------------------------------------------
    server.runner.resume()
    finals: dict[str, dict] = {}
    for tenant in TENANTS:
        for job_id in accepted[tenant]:
            finals[job_id] = client.wait(job_id, timeout=600.0)

    # Liveness: every accepted job is terminal, none orphaned.
    for tenant in TENANTS:
        for job_id in accepted[tenant]:
            state = finals[job_id]["state"]
            if job_id == cancelled[tenant]:
                assert state == "cancelled"
            else:
                assert state == "done", finals[job_id]
    counts = server.queue.counts()
    assert counts["submitted"] == 0 and counts["running"] == 0
    assert counts["done"] == len(TENANTS) * (TENANT_CAP - 1)
    assert counts["cancelled"] == len(TENANTS) + len(filler)

    # -- isolation phase ----------------------------------------------
    roots = {t: TenantPaths(tmp_path / "srv", t) for t in TENANTS}
    direct: dict[str, bytes] = {}  # memoised ground truth per spec
    for tenant in TENANTS:
        paths = roots[tenant]
        # Results live only under the owning tenant's tree...
        for job_id, final in finals.items():
            if final["state"] != "done":
                continue
            owner = final["tenant"]
            artefact = paths.result_path(job_id)
            assert artefact.exists() == (owner == tenant), (
                f"{job_id} (owner {owner}) leaked into {tenant}"
            )
        # ...and every done result matches its own direct run bit for
        # bit — every job got unique seeds, so any cross-tenant mixing
        # (shared cache entry, swapped artefact) changes bytes.
        done_ids = [
            j for j in accepted[tenant] if finals[j]["state"] == "done"
        ]
        for job_id in done_ids:
            spec = finals[job_id]["spec"]
            key = json.dumps(spec, sort_keys=True)
            if key not in direct:
                direct[key] = direct_bytes(spec)
            assert client.result(job_id) == direct[key], (
                f"{tenant}/{job_id}: server bytes diverged from direct run"
            )
        # Tenant caches are populated and disjoint path sets.
        cache_files = set(paths.cache_dir.rglob("*"))
        assert cache_files, f"{tenant}: cache never populated"
        for other in TENANTS:
            if other != tenant:
                assert cache_files.isdisjoint(
                    set(roots[other].cache_dir.rglob("*"))
                )
        # The per-tenant ledger recorded exactly this tenant's runs.
        ledger = RunLedger(paths.ledger_dir)
        runs = [r for r in ledger.runs() if r.entry == "api.quick_track"]
        assert len(runs) == len(done_ids), (
            f"{tenant}: ledger has {len(runs)} quick_track runs for "
            f"{len(done_ids)} done jobs"
        )

    # Admission rejections surfaced in the metrics registry too.
    import urllib.request

    with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as resp:
        metrics = resp.read().decode()
    assert 'repro_serve_rejected_total{reason="tenant_cap"}' in metrics
    assert 'repro_serve_rejected_total{reason="queue_full"}' in metrics
