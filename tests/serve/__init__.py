"""Job-server suite: differential, admission, isolation, HTTP contract.

The load-bearing guarantee is the differential one: a job submitted
through the multi-tenant server produces a canonical result payload
*byte-identical* to running :func:`repro.quick_track` /
:func:`repro.stream.track_windows` directly — per bundled application,
serial and parallel, cold and warm tenant cache.  Around it: spec
validation, queue admission control and journal recovery semantics,
the HTTP API's status/error contract, and the concurrency stress test
(multi-tenant isolation, caps enforced, every accepted job terminal).
"""
