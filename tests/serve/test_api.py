"""HTTP contract of the job API: status codes, payloads, error mapping."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.errors import AdmissionError, JobSpecError, ServeError
from repro.serve import JobClient, JobServer

SPEC = {
    "kind": "track",
    "app": "hydroc",
    "scenarios": [{"block_size": 64}, {"block_size": 128}],
    "seeds": [1, 2],
}


@pytest.fixture
def paused_server(live_server, tmp_path):
    """A server whose dispatcher never claims: jobs stay waiting."""
    server = live_server(
        JobServer, tmp_path / "srv", workers=1, max_queue=3, tenant_cap=2
    )
    server.runner.pause()
    return server


def raw_request(url: str, method: str = "GET", body: bytes | None = None):
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestSubmission:
    def test_submit_returns_201_and_record(self, paused_server):
        client = JobClient(paused_server.url)
        record = client.submit("acme", SPEC)
        assert record["state"] == "submitted"
        assert record["tenant"] == "acme"
        assert record["spec"]["app"] == "hydroc"
        assert len(record["job_id"]) == 12

    def test_malformed_json_is_400(self, paused_server):
        status, body = raw_request(
            f"{paused_server.url}/jobs", "POST", b"{not json"
        )
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_bad_spec_is_400_with_message(self, paused_server):
        client = JobClient(paused_server.url)
        with pytest.raises(JobSpecError, match="unknown application"):
            client.submit("acme", dict(SPEC, app="nope"))

    def test_bad_tenant_is_400(self, paused_server):
        client = JobClient(paused_server.url)
        with pytest.raises(JobSpecError, match="tenant"):
            client.submit("bad/../name", SPEC)

    def test_queue_full_is_429_with_reason(self, paused_server):
        client = JobClient(paused_server.url)
        for tenant in ("a", "b", "c"):
            client.submit(tenant, SPEC)  # max_queue=3
        with pytest.raises(AdmissionError) as excinfo:
            client.submit("d", SPEC)
        assert excinfo.value.reason == "queue_full"

    def test_tenant_cap_is_429_with_reason(self, paused_server):
        client = JobClient(paused_server.url)
        client.submit("acme", SPEC)
        client.submit("acme", SPEC)  # tenant_cap=2
        with pytest.raises(AdmissionError) as excinfo:
            client.submit("acme", SPEC)
        assert excinfo.value.reason == "tenant_cap"


class TestStatusAndArtifacts:
    def test_unknown_job_is_404(self, paused_server):
        client = JobClient(paused_server.url)
        with pytest.raises(ServeError, match="404"):
            client.status("deadbeef0000")

    def test_artifact_before_done_is_409(self, paused_server):
        client = JobClient(paused_server.url)
        record = client.submit("acme", SPEC)
        status, body = raw_request(
            f"{paused_server.url}/jobs/{record['job_id']}/result"
        )
        assert status == 409
        assert json.loads(body)["state"] == "submitted"

    def test_tenant_listing_is_scoped(self, paused_server):
        client = JobClient(paused_server.url)
        mine = client.submit("acme", SPEC)
        client.submit("rival", SPEC)
        jobs = client.tenant_jobs("acme")
        assert [j["job_id"] for j in jobs] == [mine["job_id"]]
        assert client.tenant_jobs("nobody") == []

    def test_cancel_waiting_job(self, paused_server):
        client = JobClient(paused_server.url)
        record = client.submit("acme", SPEC)
        cancelled = client.cancel(record["job_id"])
        assert cancelled["state"] == "cancelled"
        assert client.status(record["job_id"])["state"] == "cancelled"

    def test_cancel_unknown_is_404(self, paused_server):
        client = JobClient(paused_server.url)
        with pytest.raises(ServeError, match="404"):
            client.cancel("deadbeef0000")

    def test_wrong_method_is_405(self, paused_server):
        status, _ = raw_request(f"{paused_server.url}/jobs", "GET")
        assert status == 405


class TestCoexistence:
    def test_metrics_and_healthz_still_served(self, paused_server):
        client = JobClient(paused_server.url)
        client.submit("acme", SPEC)
        health = client.health()
        serve = health["serve"]
        assert serve["queue_depth"] == 1
        assert serve["jobs"]["submitted"] == 1
        assert serve["max_queue"] == 3 and serve["tenant_cap"] == 2
        status, body = raw_request(f"{paused_server.url}/metrics")
        assert status == 200
        from tests.obs.test_serve import parse_prometheus

        series = parse_prometheus(body.decode())
        assert any("repro_serve_" in key for key in series)

    def test_unroutable_path_is_404(self, paused_server):
        status, _ = raw_request(f"{paused_server.url}/tenants/acme/nope")
        assert status == 404

    def test_resume_drains_the_queue(self, live_server, tmp_path):
        """pause() holds jobs; resume() lets the dispatcher drain them."""
        server = live_server(JobServer, tmp_path / "srv", workers=1)
        server.runner.pause()
        client = JobClient(server.url)
        spec = dict(
            SPEC,
            scenarios=[
                {"block_size": 64, "ranks": 8, "iterations": 3},
                {"block_size": 64, "ranks": 8, "iterations": 4},
            ],
            seeds=[1, 2],
        )
        record = client.submit("acme", spec)
        assert client.status(record["job_id"])["state"] == "submitted"
        server.runner.resume()
        final = client.wait(record["job_id"], timeout=240.0)
        assert final["state"] == "done"
        assert final["summary"]["coverage"] > 0
