"""Server-vs-direct differential: byte-identical results, all apps.

Each test submits work through a real :class:`~repro.serve.JobServer`
(HTTP, journal, dispatcher, isolated worker process, tenant cache) and
compares the canonical ``result.json`` bytes against running the same
spec directly in this process with no server involved.  Byte equality
of the canonical payload covers everything the pipeline produces:
per-frame region labels, region memberships, the full pairwise
relation matrices (exact floats) and the quality report.

Covered per bundled app: cold tenant cache, warm tenant cache (same
spec resubmitted), and ``jobs=2`` inside the worker — all three must
match the serial, cache-less direct run bit for bit.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import JobClient, JobServer, JobSpec, canonical_json, result_payload
from repro.serve.runner import execute_spec

#: One small-but-clusterable spec per bundled app generator, mirroring
#: the stream differential suite's scenarios.
SPECS: dict[str, dict] = {
    "wrf": {
        "kind": "watch",
        "app": "wrf",
        "scenarios": [{"ranks": 16, "iterations": 6, "base_ranks": 16}],
        "seeds": [5],
        "windows": 4,
        "settings": {"relevance": 0.995},
    },
    "nas-bt": {
        "kind": "watch",
        "app": "nas-bt",
        "scenarios": [{"problem_class": "A", "ranks": 16, "iterations": 6}],
        "seeds": [5],
        "windows": 4,
        "settings": {"relevance": 0.995},
    },
    "cgpop": {
        "kind": "watch",
        "app": "cgpop",
        "scenarios": [{"machine": "MareNostrum", "ranks": 16, "iterations": 6}],
        "seeds": [5],
        "windows": 4,
        "settings": {"relevance": 0.995},
    },
    "hydroc": {
        "kind": "track",
        "app": "hydroc",
        "scenarios": [
            {"block_size": 64, "ranks": 8, "iterations": 4},
            {"block_size": 64, "ranks": 8, "iterations": 5},
        ],
        "seeds": [5, 6],
        "settings": {"relevance": 0.995},
    },
    "mr-genesis": {
        "kind": "watch",
        "app": "mr-genesis",
        "scenarios": [{"tasks_per_node": 1, "ranks": 12, "iterations": 8}],
        "seeds": [5],
        "windows": 4,
        "settings": {"relevance": 0.995},
    },
}

APPS = sorted(SPECS)

_direct_cache: dict[str, bytes] = {}


def direct_bytes(app: str) -> bytes:
    """The no-server ground truth: run the spec here, serialise (memoised)."""
    if app not in _direct_cache:
        spec = JobSpec.from_dict(SPECS[app])
        result, failures = execute_spec(spec)
        _direct_cache[app] = canonical_json(
            result_payload(spec, result, failures)
        ).encode("utf-8")
    return _direct_cache[app]


def submit_and_fetch(client: JobClient, tenant: str, spec: dict) -> bytes:
    record = client.submit(tenant, spec)
    final = client.wait(record["job_id"], timeout=240.0)
    assert final["state"] == "done", (
        f"job failed: {final.get('error_type')}: {final.get('error')}"
    )
    return client.result(record["job_id"])


@pytest.mark.parametrize("app", APPS)
def test_server_result_bit_identical_to_direct(app, live_server, tmp_path):
    """Cold cache, warm cache and jobs=2 all match the direct bytes."""
    server = live_server(
        JobServer, tmp_path / "srv", workers=2, job_timeout=600.0
    )
    client = JobClient(server.url)
    want = direct_bytes(app)

    cold = submit_and_fetch(client, "diff", SPECS[app])
    assert cold == want, f"{app}: cold-cache server run diverged from direct"

    warm = submit_and_fetch(client, "diff", SPECS[app])
    assert warm == want, f"{app}: warm-cache server run diverged from direct"

    parallel_spec = dict(SPECS[app], jobs=2)
    par = submit_and_fetch(client, "diff", parallel_spec)
    assert par == want, f"{app}: jobs=2 server run diverged from direct"

    # The parallel submission shares the work-product digest (jobs is
    # bit-identity-neutral), and every payload round-trips as JSON.
    payload = json.loads(cold)
    assert payload["schema"] == "repro.serve.result/1"
    assert payload["spec_digest"] == json.loads(par)["spec_digest"]
    assert payload["n_frames"] >= 2
    assert payload["regions"], f"{app}: no regions tracked"
    assert payload["pair_relations"], f"{app}: no pair relations"


def test_quality_report_is_the_status_summary(live_server, tmp_path):
    """The done-job summary carries the quality headline numbers."""
    server = live_server(JobServer, tmp_path / "srv", workers=1)
    client = JobClient(server.url)
    record = client.submit("diff", SPECS["hydroc"])
    final = client.wait(record["job_id"], timeout=240.0)
    assert final["state"] == "done"
    payload = json.loads(client.result(record["job_id"]))
    summary = final["summary"]
    assert summary["coverage"] == payload["coverage"]
    assert summary["n_regions"] == len(payload["regions"])
    assert summary["n_frames"] == payload["n_frames"]
    assert summary["n_tracked"] == payload["quality"]["n_tracked"]
    assert summary["spec_digest"] == payload["spec_digest"]
    # And the HTML report artefact is served for the same job.
    report = client.report(record["job_id"])
    assert report.startswith(b"<!DOCTYPE html>")
