"""JobSpec validation: strict, front-loaded, round-trippable."""

from __future__ import annotations

import pytest

from repro.errors import JobSpecError
from repro.serve import JobSpec

GOOD_TRACK = {
    "kind": "track",
    "app": "hydroc",
    "scenarios": [{"block_size": 64}, {"block_size": 128}],
    "seeds": [1, 2],
}

GOOD_WATCH = {
    "kind": "watch",
    "app": "wrf",
    "scenarios": [{"ranks": 16}],
    "seeds": [3],
    "windows": 4,
}


class TestValidation:
    def test_minimal_track_spec(self):
        spec = JobSpec.from_dict(GOOD_TRACK)
        assert spec.kind == "track"
        assert spec.seeds == (1, 2)
        assert spec.jobs == 1 and spec.strict is True

    def test_minimal_watch_spec(self):
        spec = JobSpec.from_dict(GOOD_WATCH)
        assert spec.windows == 4 and spec.window_ns is None

    def test_round_trip_is_exact(self):
        for payload in (GOOD_TRACK, GOOD_WATCH):
            spec = JobSpec.from_dict(payload)
            assert JobSpec.from_dict(spec.to_dict()) == spec
            assert JobSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_seeds_default_to_scenario_index(self):
        spec = JobSpec.from_dict({k: v for k, v in GOOD_TRACK.items() if k != "seeds"})
        assert spec.seeds == (0, 1)

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"kind": "stream"}, "kind"),
            ({"app": "no-such-app"}, "unknown application"),
            ({"app": ""}, "app"),
            ({"scenarios": []}, "scenarios"),
            ({"scenarios": "x"}, "scenarios"),
            ({"seeds": [1]}, "seed"),
            ({"seeds": "abc"}, "seeds"),
            ({"settings": {"nope": 1}}, "settings"),
            ({"config": {"nope": 1}}, "config"),
            ({"bogus_field": 1}, "unknown job spec field"),
            ({"jobs": -1}, "jobs"),
            ({"hold_s": 1e9}, "hold_s"),
            ({"schema": "repro.job.spec/999"}, "schema"),
            ({"windows": 4}, "watch jobs"),
        ],
    )
    def test_bad_track_specs_rejected(self, mutation, match):
        payload = dict(GOOD_TRACK)
        payload.update(mutation)
        with pytest.raises(JobSpecError, match=match):
            JobSpec.from_dict(payload)

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"windows": None}, "exactly one"),
            ({"window_ns": 1e9}, "exactly one"),
            ({"windows": 0}, "windows"),
            (
                {"scenarios": [{"ranks": 8}, {"ranks": 16}], "seeds": [1, 2]},
                "exactly one scenario",
            ),
        ],
    )
    def test_bad_watch_specs_rejected(self, mutation, match):
        payload = dict(GOOD_WATCH)
        payload.update(mutation)
        with pytest.raises(JobSpecError, match=match):
            JobSpec.from_dict(payload)

    def test_track_needs_two_scenarios(self):
        payload = dict(GOOD_TRACK, scenarios=[{"block_size": 64}], seeds=[1])
        with pytest.raises(JobSpecError, match="at least two"):
            JobSpec.from_dict(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(JobSpecError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "dict"])


class TestDigest:
    def test_digest_stable_and_knob_neutral(self):
        base = JobSpec.from_dict(GOOD_TRACK)
        assert base.digest() == JobSpec.from_dict(GOOD_TRACK).digest()
        # jobs and hold_s do not change the work product.
        parallel = JobSpec.from_dict(dict(GOOD_TRACK, jobs=2, hold_s=0.5))
        assert parallel.digest() == base.digest()
        # the simulated work itself does.
        other = JobSpec.from_dict(dict(GOOD_TRACK, seeds=[7, 8]))
        assert other.digest() != base.digest()

    def test_materialised_settings_and_config(self):
        spec = JobSpec.from_dict(
            dict(
                GOOD_TRACK,
                settings={"relevance": 0.9, "eps": 0.05},
                config={"use_callstack": False},
            )
        )
        assert spec.frame_settings().relevance == 0.9
        assert spec.frame_settings().eps == 0.05
        assert spec.tracker_config().use_callstack is False
