"""Deterministic shard-merge edge cases.

Each test constructs a geometry where a naive shard-label stitch would
go wrong, and asserts :func:`sharded_dbscan` still matches the
whole-frame engine bit-for-bit:

- clusters straddling a shard boundary;
- border points claimable by core points in two different shards;
- shards containing only noise;
- ``shards=1`` short-circuiting to the whole-frame engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import DBSCAN, NOISE
from repro.errors import ClusteringError
from repro.shard import ShardClustering, shard_assignment, sharded_dbscan


def _whole(points, eps, min_pts):
    return DBSCAN(eps=eps, min_pts=min_pts).fit(points)


def _assert_identical(sharded, whole):
    np.testing.assert_array_equal(sharded.labels, whole.labels)
    np.testing.assert_array_equal(sharded.core_mask, whole.core_mask)
    assert sharded.n_clusters == whole.n_clusters


class TestShardAssignment:
    def test_contiguous_rank_blocks(self):
        ranks = np.asarray([0, 0, 1, 1, 2, 2, 3, 3])
        shard_of = shard_assignment(ranks, 2)
        np.testing.assert_array_equal(shard_of, [0, 0, 0, 0, 1, 1, 1, 1])

    def test_more_shards_than_ranks(self):
        ranks = np.asarray([5, 5, 9])
        shard_of = shard_assignment(ranks, 8)
        # Only two ranks -> only two shards materialise.
        np.testing.assert_array_equal(shard_of, [0, 0, 1])

    def test_unsorted_ranks(self):
        ranks = np.asarray([3, 0, 3, 1, 0, 2])
        shard_of = shard_assignment(ranks, 2)
        # Ranks {0, 1} -> shard 0, ranks {2, 3} -> shard 1.
        np.testing.assert_array_equal(shard_of, [1, 0, 1, 0, 0, 1])

    def test_invalid_shard_count(self):
        with pytest.raises(ClusteringError, match="n_shards"):
            shard_assignment(np.asarray([0, 1]), 0)


class TestMergeEdgeCases:
    def test_cluster_straddling_shard_boundary(self):
        """One dense chain split down the middle: each half alone is a
        cluster, and the merge must reunite them into one label."""
        points = np.column_stack([np.arange(10) * 0.5, np.zeros(10)])
        shard_of = np.asarray([0] * 5 + [1] * 5)
        eps, min_pts = 0.6, 2
        sharded = sharded_dbscan(points, eps, min_pts, shard_of)
        _assert_identical(sharded, _whole(points, eps, min_pts))
        assert sharded.n_clusters == 1
        assert (sharded.labels == 1).all()

    def test_straddling_cluster_core_only_via_merge(self):
        """Points at the boundary are core globally but not in either
        shard alone: min_pts=3 with only two same-shard neighbours each.
        Stage 2's cross-shard count completion must promote them."""
        #  shard 0: x = 0.0, 0.5, 1.0      shard 1: x = 1.5, 2.0, 2.5
        points = np.column_stack([np.arange(6) * 0.5, np.zeros(6)])
        shard_of = np.asarray([0, 0, 0, 1, 1, 1])
        eps, min_pts = 0.6, 3
        whole = _whole(points, eps, min_pts)
        sharded = sharded_dbscan(points, eps, min_pts, shard_of)
        _assert_identical(sharded, whole)
        # The interior points (x=1.0 and x=1.5) have two same-shard
        # neighbours plus one across the boundary -> core only globally.
        assert whole.core_mask[2] and whole.core_mask[3]
        assert sharded.n_clusters == 1

    def test_border_point_claimable_by_cores_in_two_shards(self):
        """A non-core point eps-reachable from core points in two
        different shards.  Whole-frame DBSCAN gives it the smallest
        neighbouring label; the merge must reproduce that tie-break."""
        left = np.asarray([[-1.0, 0.0], [-1.0, 0.1], [-1.0, -0.1], [-0.5, 0.0]])
        right = np.asarray([[1.0, 0.0], [1.0, 0.1], [1.0, -0.1], [0.5, 0.0]])
        border = np.asarray([[0.0, 0.0]])
        points = np.vstack([left, right, border])
        shard_of = np.asarray([0] * 4 + [1] * 4 + [0])
        # min_pts=4: the middle point sees only three points (itself and
        # the two near cores), so it stays border, claimable either way.
        eps, min_pts = 0.55, 4
        whole = _whole(points, eps, min_pts)
        sharded = sharded_dbscan(points, eps, min_pts, shard_of)
        _assert_identical(sharded, whole)
        assert whole.n_clusters == 2
        # The middle point is border (not core) and claimed, not noise.
        assert not whole.core_mask[8]
        assert whole.labels[8] != NOISE

    def test_noise_only_shards(self):
        """Shards whose points are all noise must not disturb the merge,
        and isolated points must stay noise globally."""
        cluster = np.asarray([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.1, 0.1]])
        scattered = np.asarray([[50.0, 50.0], [-60.0, 10.0], [30.0, -40.0]])
        points = np.vstack([cluster, scattered])
        shard_of = np.asarray([0, 0, 0, 0, 1, 1, 2])
        eps, min_pts = 0.3, 3
        sharded = sharded_dbscan(points, eps, min_pts, shard_of)
        _assert_identical(sharded, _whole(points, eps, min_pts))
        assert sharded.n_clusters == 1
        assert (sharded.labels[4:] == NOISE).all()

    def test_single_shard_equals_whole_frame(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(120, 2))
        shard_of = np.zeros(120, dtype=np.int64)
        sharded = sharded_dbscan(points, 0.4, 4, shard_of)
        _assert_identical(sharded, _whole(points, 0.4, 4))

    def test_duplicate_points_split_across_shards(self):
        """min_pts copies of one point, one copy per shard: no shard
        sees a core locally, yet globally every copy is core."""
        points = np.tile(np.asarray([[2.0, -3.0]]), (4, 1))
        shard_of = np.arange(4, dtype=np.int64)
        sharded = sharded_dbscan(points, 0.5, 4, shard_of)
        _assert_identical(sharded, _whole(points, 0.5, 4))
        assert sharded.core_mask.all()
        assert sharded.n_clusters == 1

    def test_shard_of_shape_mismatch_rejected(self):
        with pytest.raises(ClusteringError, match="shard_of"):
            sharded_dbscan(np.zeros((3, 2)), 0.5, 2, np.zeros(4, dtype=np.int64))


class TestShardsOut:
    def test_intermediates_exposed(self):
        points = np.column_stack([np.arange(10) * 0.5, np.zeros(10)])
        shard_of = np.asarray([0] * 5 + [1] * 5)
        shards: list[ShardClustering] = []
        sharded_dbscan(points, 0.6, 2, shard_of, shards_out=shards)
        assert [s.shard for s in shards] == [0, 1]
        np.testing.assert_array_equal(shards[0].indices, np.arange(5))
        np.testing.assert_array_equal(shards[1].indices, np.arange(5, 10))
        # Each half-chain is a complete local cluster before the merge.
        assert all(s.result.n_clusters == 1 for s in shards)
        assert "ShardClustering" in repr(shards[0])

    def test_local_labels_are_shard_local(self):
        """Two far-apart clusters, one per shard: both get local label 1,
        but the merge assigns distinct global labels."""
        a = np.asarray([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
        b = a + 100.0
        points = np.vstack([a, b])
        shard_of = np.asarray([0, 0, 0, 1, 1, 1])
        shards: list[ShardClustering] = []
        merged = sharded_dbscan(points, 0.3, 3, shard_of, shards_out=shards)
        assert [s.result.labels.max() for s in shards] == [1, 1]
        assert merged.n_clusters == 2
