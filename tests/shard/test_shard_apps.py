"""Sharded-vs-whole differential on the five bundled applications.

The acceptance bar of the sharding tentpole: on every bundled app
generator, frames clustered through the sharded cluster-then-merge
engine and ``track_windows`` runs fanned over shards/jobs are
**bit-identical** to the unsharded, serial path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame
from repro.stream import track_windows
from tests.stream.test_differential import APPS, SETTINGS, _build_trace

_trace_cache: dict[str, object] = {}


def _trace(app: str):
    if app not in _trace_cache:
        _trace_cache[app] = _build_trace(app)
    return _trace_cache[app]


@pytest.mark.parametrize("app", APPS)
def test_sharded_frame_matches_whole(app):
    trace = _trace(app)
    whole = make_frame(trace, SETTINGS)
    for shards in (2, 4):
        sharded = make_frame(trace, SETTINGS, shards=shards)
        np.testing.assert_array_equal(sharded.labels, whole.labels)
        assert sharded.cluster_ids == whole.cluster_ids
        for cid in whole.cluster_ids:
            assert (
                sharded.cluster(cid).total_duration
                == whole.cluster(cid).total_duration
            )


@pytest.mark.parametrize("app", APPS)
def test_sharded_track_windows_matches_whole(app):
    trace = _trace(app)
    plain = track_windows(trace, n_windows=4, settings=SETTINGS)
    sharded = track_windows(trace, n_windows=4, settings=SETTINGS, shards=3)
    assert sharded.regions == plain.regions
    assert sharded.coverage == plain.coverage
    for left, right in zip(plain.pair_relations, sharded.pair_relations):
        assert left.relations == right.relations
    for frame_a, frame_b in zip(plain.frames, sharded.frames):
        np.testing.assert_array_equal(frame_a.labels, frame_b.labels)


@pytest.mark.parametrize("app", ["wrf", "hydroc"])
def test_multiprocess_watch_matches_serial(app, tmp_path):
    """jobs=2 window prefetch (with cache-based work claiming) is
    bit-identical to the serial watch."""
    from repro.parallel.cache import PipelineCache

    trace = _trace(app)
    plain = track_windows(trace, n_windows=4, settings=SETTINGS)
    cache = PipelineCache(tmp_path / "cache")
    fanned = track_windows(
        trace, n_windows=4, settings=SETTINGS, shards=2, jobs=2, cache=cache,
    )
    assert fanned.regions == plain.regions
    assert fanned.coverage == plain.coverage
    for frame_a, frame_b in zip(plain.frames, fanned.frames):
        np.testing.assert_array_equal(frame_a.labels, frame_b.labels)
    # The prefetch committed its labels for later runs to claim.
    assert cache.info().n_entries > 0
