"""Unit tests for trend extrapolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.predict.extrapolate import extrapolate_trends, fit_trend
from repro.tracking.trends import TrendSeries


def series(values, region_id=1, metric="ipc"):
    values = np.asarray(values, dtype=np.float64)
    return TrendSeries(
        region_id=region_id,
        metric=metric,
        aggregate="mean",
        frame_labels=tuple(str(i) for i in range(len(values))),
        values=values,
    )


class TestFitTrend:
    def test_default_x_is_frame_index(self):
        model = fit_trend(series([1.0, 2.0, 3.0, 4.0]))
        assert float(model.predict(np.asarray([4.0]))[0]) == pytest.approx(5.0, rel=0.05)

    def test_explicit_x(self):
        model = fit_trend(series([10.0, 20.0, 40.0]), x=np.asarray([1.0, 2.0, 4.0]))
        assert float(model.predict(np.asarray([8.0]))[0]) == pytest.approx(80.0, rel=0.1)

    def test_x_length_mismatch(self):
        with pytest.raises(ModelError):
            fit_trend(series([1.0, 2.0]), x=np.asarray([1.0]))


class TestExtrapolateTrends:
    def test_multiple_regions(self):
        forecasts = extrapolate_trends(
            [series([1.0, 2.0, 3.0], region_id=1), series([5.0, 5.0, 5.0], region_id=2)],
            None,
            [5.0],
        )
        assert [f.region_id for f in forecasts] == [1, 2]
        assert forecasts[0].y_predicted[0] == pytest.approx(6.0, rel=0.1)
        assert forecasts[1].y_predicted[0] == pytest.approx(5.0, rel=0.01)

    def test_scaling_study_extrapolation(self):
        """Strong-scaling instructions-per-process: predict 512 ranks
        from 64..256 — the paper's 'foresee the performance of future
        experiments' use case."""
        ranks = [64.0, 128.0, 256.0]
        instr = [1e9 / r for r in ranks]
        forecasts = extrapolate_trends(
            [series(instr, metric="instructions")], ranks, [512.0]
        )
        assert forecasts[0].y_predicted[0] == pytest.approx(1e9 / 512, rel=0.05)

    def test_nan_frames_skipped(self):
        forecasts = extrapolate_trends(
            [series([1.0, np.nan, 3.0, 4.0])], None, [4.0]
        )
        assert np.isfinite(forecasts[0].y_predicted).all()

    def test_training_rmse_accessor(self):
        forecast = extrapolate_trends([series([1.0, 2.0, 3.0])], None, [3.0])[0]
        assert forecast.training_rmse < 0.1

    def test_repr(self):
        forecast = extrapolate_trends([series([1.0, 2.0, 3.0])], None, [3.0])[0]
        assert "region=1" in repr(forecast)
