"""Unit tests for trend models and model selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.predict.models import (
    ConstantModel,
    LinearModel,
    PlateauModel,
    PowerLawModel,
    fit_best_model,
)


class TestIndividualModels:
    def test_constant(self):
        model = ConstantModel.fit(np.asarray([1.0, 2.0]), np.asarray([5.0, 5.2]))
        assert model.value == pytest.approx(5.1)
        np.testing.assert_allclose(model.predict(np.asarray([9.0])), [5.1])

    def test_linear_exact(self):
        x = np.asarray([1.0, 2.0, 3.0])
        model = LinearModel.fit(x, 2 * x + 1)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)

    def test_power_law_exact(self):
        x = np.asarray([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**-0.5
        model = PowerLawModel.fit(x, y)
        assert model.coefficient == pytest.approx(3.0)
        assert model.exponent == pytest.approx(-0.5)

    def test_power_law_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            PowerLawModel.fit(np.asarray([0.0, 1.0]), np.asarray([1.0, 2.0]))
        with pytest.raises(ModelError):
            PowerLawModel.fit(np.asarray([1.0, 2.0]), np.asarray([-1.0, 2.0]))

    def test_plateau_recovers_shape(self):
        x = np.linspace(0, 10, 12)
        y = 0.3 + 0.5 * np.exp(-x / 2.0)
        model = PlateauModel.fit(x, y)
        assert model.plateau == pytest.approx(0.3, abs=0.03)
        np.testing.assert_allclose(model.predict(x), y, atol=0.02)

    def test_plateau_needs_points(self):
        with pytest.raises(ModelError):
            PlateauModel.fit(np.asarray([1.0, 2.0]), np.asarray([1.0, 2.0]))

    def test_rmse(self):
        model = ConstantModel(value=1.0)
        assert model.rmse(np.asarray([0.0, 1.0]), np.asarray([1.0, 3.0])) == (
            pytest.approx(np.sqrt(2.0))
        )


class TestSelection:
    def test_selects_constant_for_flat(self):
        rng = np.random.default_rng(0)
        x = np.arange(1.0, 9.0)
        y = 5.0 + 1e-6 * rng.standard_normal(8)
        assert isinstance(fit_best_model(x, y), ConstantModel)

    def test_selects_linearish_for_line(self):
        x = np.arange(1.0, 9.0)
        model = fit_best_model(x, 2 * x + 3)
        np.testing.assert_allclose(model.predict(x), 2 * x + 3, rtol=1e-3)

    def test_selects_power_law_for_scaling(self):
        x = np.asarray([16.0, 32.0, 64.0, 128.0, 256.0])
        y = 1e9 / x
        model = fit_best_model(x, y)
        prediction = float(model.predict(np.asarray([512.0]))[0])
        assert prediction == pytest.approx(1e9 / 512, rel=0.05)

    def test_selects_plateau_for_saturation(self):
        x = np.linspace(0, 12, 13)
        y = 0.4 + 0.6 * np.exp(-x / 1.5)
        model = fit_best_model(x, y)
        tail = float(model.predict(np.asarray([50.0]))[0])
        assert tail == pytest.approx(0.4, abs=0.05)

    def test_negative_values_fall_back_gracefully(self):
        x = np.arange(1.0, 6.0)
        y = -2 * x  # power law impossible
        model = fit_best_model(x, y)
        np.testing.assert_allclose(model.predict(x), y, atol=1e-6)

    def test_nan_filtering(self):
        x = np.asarray([1.0, 2.0, 3.0, 4.0])
        y = np.asarray([2.0, np.nan, 6.0, 8.0])
        model = fit_best_model(x, y)
        assert float(model.predict(np.asarray([5.0]))[0]) == pytest.approx(10.0, rel=0.05)

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            fit_best_model(np.asarray([1.0]), np.asarray([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            fit_best_model(np.asarray([1.0, 2.0]), np.asarray([1.0]))
