"""Unit tests for walk-forward trend validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.predict.validate import backtest_trend, backtest_trends
from repro.tracking.trends import TrendSeries


def series(values, region_id=1, metric="ipc"):
    values = np.asarray(values, dtype=np.float64)
    return TrendSeries(
        region_id=region_id,
        metric=metric,
        aggregate="mean",
        frame_labels=tuple(str(i) for i in range(len(values))),
        values=values,
    )


class TestBacktestTrend:
    def test_perfect_line_perfect_predictions(self):
        report = backtest_trend(series([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
        assert report.n_steps == 3
        np.testing.assert_allclose(report.predicted, report.actual, rtol=1e-6)
        assert report.mape < 1e-6
        assert report.hit_rate() == 1.0

    def test_power_law_predictions(self):
        x = [16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
        values = [1e9 / v for v in x]
        report = backtest_trend(series(values), x)
        assert report.mape < 0.05

    def test_noise_raises_error(self):
        rng = np.random.default_rng(0)
        noisy = 1.0 + 0.5 * rng.standard_normal(8)
        report = backtest_trend(series(noisy))
        assert report.mape > 0.05

    def test_nan_frames_skipped(self):
        report = backtest_trend(series([1.0, 2.0, np.nan, 4.0, 5.0, 6.0]))
        assert report.n_steps == 2  # five finite points, min_train 3

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            backtest_trend(series([1.0, 2.0, 3.0]))

    def test_min_train_validation(self):
        with pytest.raises(ModelError):
            backtest_trend(series([1.0, 2.0, 3.0, 4.0]), min_train=1)

    def test_x_length_mismatch(self):
        with pytest.raises(ModelError):
            backtest_trend(series([1.0, 2.0, 3.0, 4.0]), [1.0, 2.0])

    def test_repr(self):
        report = backtest_trend(series([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert "region=1" in repr(report)

    def test_hit_rate_tolerance(self):
        report = backtest_trend(series([1.0, 2.0, 3.0, 4.0, 8.0]))
        # The last jump breaks the linear trend: the final prediction
        # misses badly at tight tolerance.
        assert report.hit_rate(tolerance=0.01) < 1.0


class TestBacktestTrends:
    def test_skips_short_series(self):
        reports = backtest_trends(
            [series([1.0, 2.0]), series([1.0, 2.0, 3.0, 4.0, 5.0], region_id=2)]
        )
        assert [r.region_id for r in reports] == [2]

    def test_integration_with_tracking(self, wrf_small_result):
        from repro.tracking.trends import compute_trends

        # Two frames only: not enough for a backtest; verifies the
        # graceful-skip path end to end.
        reports = backtest_trends(compute_trends(wrf_small_result, "ipc"))
        assert reports == []

    def test_mrgenesis_backtest(self):
        """Walk-forward over the 12-point MR-Genesis IPC series: the
        pre-knee points predict each other well; the knee step is the
        hard one."""
        from repro import apps, quick_track
        from repro.tracking.trends import compute_trends

        traces = [
            apps.mrgenesis.build(k, iterations=4).run(seed=k) for k in range(1, 13)
        ]
        result = quick_track(traces)
        series_list = compute_trends(result, "ipc")
        reports = backtest_trends(series_list, list(range(1, 13)), min_train=4)
        assert len(reports) == 2
        for report in reports:
            worst = int(np.argmax(report.absolute_relative_errors))
            # The hardest prediction is the saturation knee at 9/node.
            assert report.x[worst] == 9.0
            assert report.mape < 0.06
