"""OnlineTrend: incremental refitting, forecasts, bounded history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.predict import OnlineTrend, fit_best_model
from repro.predict.models import LinearModel


class TestConstruction:
    def test_rejects_bad_reselect_cadence(self):
        with pytest.raises(ModelError):
            OnlineTrend(reselect_every=0)

    def test_rejects_tiny_history(self):
        with pytest.raises(ModelError):
            OnlineTrend(max_history=1)

    def test_unbounded_history_allowed(self):
        trend = OnlineTrend(max_history=None)
        for k in range(100):
            trend.observe(k, 1.0 + 0.01 * k)
        assert trend.n_observations == 100


class TestForecast:
    def test_no_forecast_before_two_observations(self):
        trend = OnlineTrend()
        assert trend.forecast(1.0) is None
        trend.observe(0.0, 1.0)
        assert trend.forecast(1.0) is None

    def test_linear_series_forecast_is_exact(self):
        trend = OnlineTrend()
        for k in range(6):
            trend.observe(k, 2.0 + 3.0 * k)
        point = trend.forecast(6.0)
        assert point is not None
        assert point.predicted == pytest.approx(20.0, rel=1e-6)
        assert point.residual_std == pytest.approx(0.0, abs=1e-9)
        assert point.x == 6.0

    def test_constant_series_selects_constant(self):
        trend = OnlineTrend()
        for k in range(5):
            trend.observe(k, 4.2)
        assert trend.model_kind == "ConstantModel"
        assert trend.forecast(10.0).predicted == pytest.approx(4.2)

    def test_forecast_point_reports_model_kind(self):
        trend = OnlineTrend()
        for k in range(8):
            trend.observe(k, 1.0 + 2.0 * k)
        point = trend.forecast(8.0)
        assert point.model_kind == type(trend.model).__name__


class TestRefitBehaviour:
    def test_cheap_refit_keeps_family_between_reselections(self):
        trend = OnlineTrend(reselect_every=100)
        for k in range(4):
            trend.observe(k, 1.0 + 2.0 * k)
        first_kind = trend.model_kind
        # Observations between reselections refit coefficients only.
        trend.observe(4.0, 9.5)
        assert trend.model_kind == first_kind

    def test_reselection_can_change_family(self):
        # Linear at first, then flat: the reselection pass should
        # eventually stop calling it linear.
        trend = OnlineTrend(reselect_every=2, max_history=8)
        for k in range(4):
            trend.observe(k, 1.0 + k)
        for k in range(4, 16):
            trend.observe(k, 5.0)
        assert trend.model_kind != "LinearModel"

    def test_matches_offline_fit_on_same_window(self):
        # With reselect_every=1 the online model is exactly the offline
        # selection over the current history.
        rng = np.random.default_rng(3)
        xs = np.arange(10, dtype=float)
        ys = 2.0 + 0.5 * xs + 0.01 * rng.standard_normal(10)
        trend = OnlineTrend(reselect_every=1, max_history=None)
        for x, y in zip(xs, ys):
            trend.observe(x, y)
        offline = fit_best_model(xs, ys)
        assert type(trend.model) is type(offline)
        assert trend.model.predict(np.asarray([11.0]))[0] == pytest.approx(
            offline.predict(np.asarray([11.0]))[0]
        )


class TestHistoryAndRobustness:
    def test_history_is_bounded(self):
        trend = OnlineTrend(max_history=4)
        for k in range(10):
            trend.observe(k, float(k))
        assert trend.n_observations == 4
        assert list(trend.x) == [6.0, 7.0, 8.0, 9.0]

    def test_non_finite_observations_dropped(self):
        trend = OnlineTrend()
        trend.observe(0.0, 1.0)
        trend.observe(1.0, float("nan"))
        trend.observe(float("inf"), 2.0)
        assert trend.n_observations == 1
        assert trend.forecast(2.0) is None

    def test_determinism_supports_replay(self):
        # Two trends fed the same series are in identical states — the
        # property checkpoint replay relies on.
        series = [(k, 1.0 + 0.3 * k + (0.01 if k % 2 else -0.01))
                  for k in range(12)]
        a, b = OnlineTrend(), OnlineTrend()
        for x, y in series:
            a.observe(x, y)
            b.observe(x, y)
        pa, pb = a.forecast(12.0), b.forecast(12.0)
        assert pa.predicted == pb.predicted
        assert pa.residual_std == pb.residual_std
        assert a.model_kind == b.model_kind


class TestRegionForecastBridge:
    def test_requires_a_model(self):
        with pytest.raises(ModelError):
            OnlineTrend().as_region_forecast(1, "ipc", [5.0])

    def test_bridges_to_offline_shape(self):
        trend = OnlineTrend()
        for k in range(6):
            trend.observe(k, 1.0 + k)
        forecast = trend.as_region_forecast(3, "ipc", [6.0, 7.0])
        assert forecast.region_id == 3
        assert forecast.metric == "ipc"
        assert forecast.y_predicted.shape == (2,)
        assert forecast.y_predicted[0] == pytest.approx(7.0, rel=1e-6)
        assert isinstance(forecast.model, LinearModel) or forecast.model
