"""Unit tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro.api import cluster_trace, quick_track, track_frames
from repro.clustering.frames import Frame, FrameSettings, make_frames
from tests.conftest import build_two_region_trace


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestClusterTrace:
    def test_returns_frame(self, toy_trace):
        frame = cluster_trace(toy_trace)
        assert isinstance(frame, Frame)
        assert frame.n_clusters == 2


class TestQuickTrack:
    def test_pipeline(self, toy_trace_pair):
        result = quick_track(list(toy_trace_pair))
        assert result.coverage == 100
        assert len(result.tracked_regions) == 2

    def test_custom_settings(self, toy_trace_pair):
        result = quick_track(
            list(toy_trace_pair), settings=FrameSettings(eps=0.05)
        )
        assert result.frames[0].settings.eps == 0.05

    def test_log_y_forces_log_extensive(self, toy_trace_pair):
        result = quick_track(
            list(toy_trace_pair), settings=FrameSettings(log_y=True)
        )
        # All normalised points finite implies the log path ran safely.
        import numpy as np

        for points in result.space.points:
            assert np.isfinite(points).all()


class TestTrackFrames:
    def test_equivalent_to_quick_track(self, toy_trace_pair):
        frames = make_frames(list(toy_trace_pair))
        direct = track_frames(frames)
        convenient = quick_track(list(toy_trace_pair))
        assert direct.coverage == convenient.coverage
        assert len(direct.regions) == len(convenient.regions)
