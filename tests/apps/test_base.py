"""Unit tests for the synthetic application framework."""

from __future__ import annotations

import pytest

from repro.apps.base import AppModel, Mode, RegionSpec
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, MINOTAURO
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath


def region(**overrides) -> RegionSpec:
    base = dict(
        name="r",
        callpath=CallPath.single("r", "a.c", 1),
        point=WorkloadPoint(
            work_units=1e5,
            instructions_per_unit=50.0,
            memory_accesses_per_unit=0.5,
            working_set_bytes=1024.0,
        ),
    )
    base.update(overrides)
    return RegionSpec(**base)


class TestMode:
    def test_defaults_neutral(self):
        mode = Mode()
        assert mode.weight == 1.0
        assert mode.work_scale == mode.cpi_scale == mode.ws_scale == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            Mode(weight=0.0)
        with pytest.raises(ModelError):
            Mode(work_scale=0.0)
        with pytest.raises(ModelError):
            Mode(cpi_scale=-1.0)


class TestRegionSpec:
    def test_needs_mode(self):
        with pytest.raises(ModelError):
            region(modes=())

    def test_repeats_positive(self):
        with pytest.raises(ModelError):
            region(repeats=0)

    def test_imbalance_nonnegative(self):
        with pytest.raises(ModelError):
            region(imbalance=-0.1)

    def test_jitters_nonnegative(self):
        with pytest.raises(ModelError):
            region(work_jitter=-0.1)

    def test_with_point(self):
        changed = region().with_point(work_units=7.0)
        assert changed.point.work_units == 7.0
        assert changed.name == "r"


class TestAppModel:
    def test_defaults(self):
        model = AppModel(name="app", nranks=4, regions=(region(),))
        assert model.effective_processes_per_node == 4
        assert model.machine is MINOTAURO

    def test_fill_node_capped_by_cores(self):
        model = AppModel(name="app", nranks=64, regions=(region(),),
                         machine=MARENOSTRUM)
        assert model.effective_processes_per_node == 4

    def test_explicit_ppn(self):
        model = AppModel(name="app", nranks=12, regions=(region(),),
                         processes_per_node=2)
        assert model.effective_processes_per_node == 2

    def test_ppn_exceeding_cores_rejected(self):
        with pytest.raises(ModelError):
            AppModel(name="app", nranks=8, regions=(region(),),
                     machine=MARENOSTRUM, processes_per_node=8)

    def test_validation(self):
        with pytest.raises(ModelError):
            AppModel(name="app", nranks=0, regions=(region(),))
        with pytest.raises(ModelError):
            AppModel(name="app", nranks=1, regions=())
        with pytest.raises(ModelError):
            AppModel(name="app", nranks=1, regions=(region(),), iterations=0)
        with pytest.raises(ModelError):
            AppModel(name="app", nranks=1, regions=(region(),), comm_fraction=-1.0)

    def test_run_delegates_to_runner(self):
        model = AppModel(name="app", nranks=2, regions=(region(),), iterations=2)
        trace = model.run(seed=0)
        assert trace.n_bursts == 2 * 2
        assert trace.app == "app"
