"""Behavioural tests for the paper's application models.

These check the *calibrated shapes* each model must produce — the
regressions that matter for reproducing the paper's evaluation.  They
run on reduced scales where possible to stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import cgpop, gadget, gromacs, hydroc, mrgenesis, nasbt, nasft, wrf
from repro.apps import quantum_espresso as qe
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, MINOTAURO
from repro.trace.counters import INSTRUCTIONS


class TestWRF:
    def test_twelve_regions(self):
        model = wrf.build(ranks=8)
        assert len(model.regions) == 12

    def test_strong_scaling_halves_work(self):
        t64 = wrf.build(ranks=64, iterations=1).run(seed=0)
        t128 = wrf.build(ranks=128, iterations=1).run(seed=0)
        per_rank_64 = t64.counter(INSTRUCTIONS).sum() / 64
        per_rank_128 = t128.counter(INSTRUCTIONS).sum() / 128
        # Not exactly half due to region 1's replication term.
        assert per_rank_128 == pytest.approx(per_rank_64 / 2, rel=0.05)

    def test_shared_callpaths_match_table1(self):
        model = wrf.build(ranks=8)
        lines = [r.callpath.leaf.line for r in model.regions]
        assert lines.count(6474) == 2  # regions 2 and 5
        assert lines.count(5734) == 2  # regions 7 and 12

    def test_region_table_has_paper_structure(self):
        names = [row[0] for row in wrf.REGION_TABLE]
        assert len(names) == len(set(names)) == 12


class TestCGPOP:
    def test_string_arguments(self):
        model = cgpop.build("MinoTauro", "ifort", ranks=4, iterations=1)
        assert model.machine is MINOTAURO
        assert model.compiler.name == "ifort"

    def test_minotauro_region2_bimodal(self):
        mt = cgpop.build(MINOTAURO, "gfortran", ranks=4)
        mn = cgpop.build(MARENOSTRUM, "gfortran", ranks=4)
        assert len(mt.regions[1].modes) == 2
        assert len(mn.regions[1].modes) == 1

    def test_region1_repeats(self):
        model = cgpop.build(ranks=4)
        assert model.regions[0].repeats == 4

    def test_isa_factor_on_marenostrum(self):
        mn = cgpop.build(MARENOSTRUM, ranks=2, iterations=1).run(seed=0)
        mt = cgpop.build(MINOTAURO, ranks=2, iterations=1).run(seed=0)
        ratio = (
            mn.counter(INSTRUCTIONS).mean() / mt.counter(INSTRUCTIONS).mean()
        )
        assert ratio == pytest.approx(1.36, rel=0.05)


class TestNASBT:
    def test_class_grid_sizes(self):
        assert nasbt.CLASS_GRID == {"W": 24, "A": 64, "B": 102, "C": 162}

    def test_unknown_class_rejected(self):
        with pytest.raises(ModelError, match="class"):
            nasbt.build("D")

    def test_six_regions(self):
        assert len(nasbt.build("W").regions) == 6

    def test_work_scales_with_volume(self):
        w = nasbt.build("W", iterations=1).run(seed=0)
        a = nasbt.build("A", iterations=1).run(seed=0)
        ratio = a.counter(INSTRUCTIONS).sum() / w.counter(INSTRUCTIONS).sum()
        assert ratio == pytest.approx((64 / 24) ** 3, rel=0.05)

    def test_class_w_noisier(self):
        w_jitter = nasbt.build("W").regions[0].cycle_jitter
        a_jitter = nasbt.build("A").regions[0].cycle_jitter
        assert w_jitter > 2 * a_jitter


class TestMRGenesis:
    def test_tasks_per_node_bounds(self):
        with pytest.raises(ModelError):
            mrgenesis.build(0)
        with pytest.raises(ModelError):
            mrgenesis.build(13)

    def test_instructions_constant_across_mappings(self):
        t1 = mrgenesis.build(1, iterations=2).run(seed=0)
        t12 = mrgenesis.build(12, iterations=2).run(seed=0)
        assert t1.counter(INSTRUCTIONS).sum() == pytest.approx(
            t12.counter(INSTRUCTIONS).sum(), rel=0.01
        )

    def test_full_node_slower(self):
        t1 = mrgenesis.build(1, iterations=2).run(seed=0)
        t12 = mrgenesis.build(12, iterations=2).run(seed=0)
        ipc1 = t1.counter(INSTRUCTIONS).sum() / t1.counter("PAPI_TOT_CYC").sum()
        ipc12 = t12.counter(INSTRUCTIONS).sum() / t12.counter("PAPI_TOT_CYC").sum()
        assert ipc12 == pytest.approx(0.825 * ipc1, rel=0.05)  # ~-17.5%


class TestHydroC:
    def test_block_sweep_has_12_sizes(self):
        assert len(hydroc.BLOCK_SIZES) == 12

    def test_bad_block_size(self):
        with pytest.raises(ModelError):
            hydroc.build(0)

    def test_single_bimodal_phase(self):
        model = hydroc.build(64)
        assert len(model.regions) == 1
        assert len(model.regions[0].modes) == 2

    def test_l1_dip_at_64_to_128(self):
        t64 = hydroc.build(64, ranks=2, iterations=2).run(seed=0)
        t128 = hydroc.build(128, ranks=2, iterations=2).run(seed=0)
        ratio = t128.counter("PAPI_L1_DCM").mean() / t64.counter("PAPI_L1_DCM").mean()
        assert 1.25 <= ratio <= 1.55

    def test_instructions_shrink_with_block_size(self):
        small = hydroc.build(4, ranks=1, iterations=1).run(seed=0)
        large = hydroc.build(64, ranks=1, iterations=1).run(seed=0)
        assert large.counter(INSTRUCTIONS).sum() < small.counter(INSTRUCTIONS).sum()


class TestGenericApps:
    def test_gadget_snapshots(self):
        with pytest.raises(ModelError):
            gadget.build(2)
        assert len(gadget.build(0, ranks=4).regions) == 8  # 7 stable + 1 bimodal

    def test_gadget_bimodality_only_in_snapshot0(self):
        def tree_walk(model):
            return next(r for r in model.regions if r.name == "tree_walk")

        early = tree_walk(gadget.build(0, ranks=4))
        late = tree_walk(gadget.build(1, ranks=4))
        assert early.modes[0].cpi_scale != early.modes[1].cpi_scale
        assert late.modes[0].cpi_scale == pytest.approx(late.modes[1].cpi_scale)

    def test_qe_configurations(self):
        with pytest.raises(ModelError):
            qe.build(5)
        assert len(qe.build(0, ranks=4).regions) == 6

    def test_gromacs_scaling(self):
        t24 = gromacs.build(24, iterations=1).run(seed=0)
        t48 = gromacs.build(48, iterations=1).run(seed=0)
        per24 = t24.counter(INSTRUCTIONS).sum() / 24
        per48 = t48.counter(INSTRUCTIONS).sum() / 48
        assert per48 == pytest.approx(per24 / 2, rel=0.02)

    def test_gromacs_window_bounds(self):
        with pytest.raises(ModelError):
            gromacs.build_window(20)

    def test_gromacs_window_region_count(self):
        assert len(gromacs.build_window(0, ranks=4).regions) == 4

    def test_nasft_window_traces(self):
        trace = nasft.build(ranks=2, iterations=6).run(seed=0)
        windows = nasft.window_traces(trace, 3)
        assert len(windows) == 3
        assert sum(w.n_bursts for w in windows) == trace.n_bursts
        assert [w.scenario["window"] for w in windows] == [0, 1, 2]

    def test_nasft_window_validation(self):
        trace = nasft.build(ranks=2, iterations=2).run(seed=0)
        with pytest.raises(ModelError):
            nasft.window_traces(trace, 0)


class TestRegistry:
    def test_build_by_name(self):
        from repro.apps.registry import build_app

        model = build_app("hydroc", block_size=32, ranks=2)
        assert model.name == "HydroC"

    def test_unknown_app(self):
        from repro.apps.registry import build_app

        with pytest.raises(KeyError, match="registered"):
            build_app("lammps")

    def test_all_builders_produce_models(self):
        from repro.apps.registry import APP_BUILDERS, build_app

        defaults = {
            "wrf": {"ranks": 8, "base_ranks": 8},
            "cgpop": {"ranks": 4},
            "nas-bt": {"ranks": 4},
            "nas-ft": {"ranks": 2},
            "mr-genesis": {},
            "hydroc": {"ranks": 2},
            "gadget": {"ranks": 4},
            "quantum-espresso": {"ranks": 4},
            "gromacs": {"ranks": 4, "base_ranks": 4},
            "gromacs-window": {"window": 0, "ranks": 4},
        }
        for name in APP_BUILDERS:
            model = build_app(name, **defaults[name])
            assert model.nranks >= 1
