"""Unit tests for the synthetic execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import AppModel, Mode, RegionSpec
from repro.apps.runner import mode_assignment, run_app
from repro.machine.machine import MINOTAURO
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.counters import CYCLES, INSTRUCTIONS


def region(name="r", line=1, **overrides) -> RegionSpec:
    base = dict(
        name=name,
        callpath=__import__("repro.trace.callstack", fromlist=["CallPath"]).CallPath.single(
            name, "a.c", line
        ),
        point=WorkloadPoint(
            work_units=1e5,
            instructions_per_unit=50.0,
            memory_accesses_per_unit=0.5,
            working_set_bytes=1024.0,
        ),
    )
    base.update(overrides)
    return RegionSpec(**base)


def app(regions, *, nranks=4, iterations=3, **overrides) -> AppModel:
    return AppModel(
        name="app", nranks=nranks, regions=tuple(regions),
        iterations=iterations, machine=MINOTAURO, **overrides
    )


class TestModeAssignment:
    def test_single_mode_all_zero(self):
        assignment = mode_assignment(region(), 8)
        assert (assignment == 0).all()

    def test_weights_respected(self):
        r = region(modes=(Mode(weight=0.25), Mode(weight=0.75)))
        assignment = mode_assignment(r, 8)
        assert (assignment == 0).sum() == 2
        assert (assignment == 1).sum() == 6

    def test_contiguous_blocks(self):
        r = region(modes=(Mode(weight=0.5), Mode(weight=0.5)))
        assignment = mode_assignment(r, 10)
        assert (np.diff(assignment) >= 0).all()

    def test_every_rank_assigned(self):
        r = region(modes=(Mode(weight=0.33), Mode(weight=0.33), Mode(weight=0.34)))
        assignment = mode_assignment(r, 7)
        assert assignment.shape == (7,)
        assert assignment.max() <= 2

    def test_deterministic(self):
        r = region(modes=(Mode(weight=0.4), Mode(weight=0.6)))
        np.testing.assert_array_equal(mode_assignment(r, 16), mode_assignment(r, 16))


class TestRunApp:
    def test_burst_count(self):
        trace = run_app(app([region("a", 1), region("b", 2)]))
        assert trace.n_bursts == 4 * 3 * 2

    def test_repeats_multiply_bursts(self):
        trace = run_app(app([region(repeats=3)]))
        assert trace.n_bursts == 4 * 3 * 3

    def test_deterministic_under_seed(self):
        model = app([region()])
        assert run_app(model, seed=5) == run_app(model, seed=5)

    def test_different_seeds_differ(self):
        model = app([region()])
        assert run_app(model, seed=1) != run_app(model, seed=2)

    def test_counters_consistent(self):
        trace = run_app(app([region()]))
        ipc = trace.metric("ipc")
        expected = trace.counter(INSTRUCTIONS) / trace.counter(CYCLES)
        np.testing.assert_allclose(ipc, expected)

    def test_durations_match_cycles(self):
        trace = run_app(app([region()]))
        np.testing.assert_allclose(
            trace.duration, trace.counter(CYCLES) / MINOTAURO.clock_hz
        )

    def test_spmd_lockstep_structure(self):
        """Each phase starts simultaneously on all ranks (barrier model)."""
        trace = run_app(app([region("a", 1), region("b", 2)], nranks=3))
        begins = trace.begin.reshape(-1, 3)  # blocks of nranks bursts
        for block in begins:
            assert np.allclose(block, block[0])

    def test_phase_order_preserved_per_rank(self):
        trace = run_app(app([region("a", 1), region("b", 2)], nranks=2))
        sub = trace.bursts_of_rank(0)
        paths = [sub.callstacks.path(int(pid)).leaf.line for pid in sub.callpath_id]
        assert paths == [1, 2] * 3

    def test_imbalance_creates_gradient(self):
        trace = run_app(app([region(imbalance=0.5, work_jitter=0.0)], nranks=8))
        instr = trace.counter(INSTRUCTIONS)
        by_rank = [instr[trace.rank == r].mean() for r in range(8)]
        assert by_rank[-1] > 1.3 * by_rank[0]

    def test_modes_create_distinct_behaviour(self):
        r = region(modes=(Mode(weight=0.5), Mode(weight=0.5, work_scale=2.0)),
                   work_jitter=0.0)
        trace = run_app(app([r], nranks=8))
        instr = trace.counter(INSTRUCTIONS)
        low = instr[trace.rank < 4].mean()
        high = instr[trace.rank >= 4].mean()
        assert high == pytest.approx(2 * low, rel=0.01)

    def test_work_drift_grows_over_iterations(self):
        r = region(work_drift_per_iter=0.1, work_jitter=0.0)
        trace = run_app(app([r], nranks=1, iterations=5))
        instr = trace.bursts_of_rank(0).counter(INSTRUCTIONS)
        assert (np.diff(instr) > 0).all()

    def test_cpi_drift_lowers_ipc_over_iterations(self):
        r = region(cpi_drift_per_iter=0.05, work_jitter=0.0, cycle_jitter=0.0)
        trace = run_app(app([r], nranks=1, iterations=5))
        ipc = trace.bursts_of_rank(0).metric("ipc")
        assert (np.diff(ipc) < 0).all()

    def test_scenario_metadata_propagates(self):
        model = app([region()], scenario={"tasks": 4})
        assert run_app(model).scenario == {"tasks": 4}

    def test_comm_fraction_stretches_makespan(self):
        fast = run_app(app([region()], comm_fraction=0.0))
        slow = run_app(app([region()], comm_fraction=0.5))
        assert slow.makespan > fast.makespan
