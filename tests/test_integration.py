"""End-to-end integration tests across subsystem boundaries.

Small-scale versions of the paper's studies driven through the public
API, exercising trace generation -> persistence -> clustering ->
tracking -> trends -> prediction -> rendering in one flow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import apps, quick_track
from repro.clustering.frames import FrameSettings
from repro.predict import extrapolate_trends
from repro.tracking.relabel import relabel_frames
from repro.tracking.trends import compute_trends, top_variations
from repro.trace.io import load_trace, save_trace
from repro.viz.frames_plot import render_sequence_svg


class TestScalingPipeline:
    def test_wrf_small_tracks_all_regions(self, wrf_small_result):
        result = wrf_small_result
        assert result.coverage == 100
        assert len(result.tracked_regions) == 12

    def test_wrf_ipc_trends_match_paper_shape(self, wrf_small_result):
        series = compute_trends(wrf_small_result, "ipc")
        changes = [s.pct_change_total() for s in series]
        # Two regions degrade ~20 %, three improve ~5 % (paper Fig. 7a).
        assert sum(1 for c in changes if c < -0.15) == 2
        assert sum(1 for c in changes if 0.02 < c < 0.09) == 3

    def test_wrf_total_instructions_flat_except_replication(self, wrf_small_result):
        series = compute_trends(wrf_small_result, "instructions", aggregate="total")
        changes = [s.pct_change_total() for s in series]
        growing = [c for c in changes if c > 0.03]
        assert len(growing) == 1  # region 1's code replication
        assert growing[0] == pytest.approx(0.05, abs=0.02)

    def test_top_variations_filter(self, wrf_small_result):
        series = compute_trends(wrf_small_result, "ipc")
        selected = top_variations(series, min_variation=0.03)
        assert 0 < len(selected) < len(series)


class TestPersistenceThroughPipeline:
    def test_saved_traces_track_identically(self, tmp_path, hydroc_traces):
        paths = [
            save_trace(trace, tmp_path / f"h{i}.json")
            for i, trace in enumerate(hydroc_traces)
        ]
        reloaded = [load_trace(p) for p in paths]
        direct = quick_track(list(hydroc_traces))
        via_disk = quick_track(reloaded)
        assert direct.coverage == via_disk.coverage
        assert [r.members for r in direct.regions] == [
            r.members for r in via_disk.regions
        ]


class TestEvolutionaryPipeline:
    def test_time_window_tracking(self):
        trace = apps.nasft.build(ranks=16, iterations=12).run(seed=0)
        windows = apps.nasft.window_traces(trace, 4)
        result = quick_track(windows)
        assert result.coverage == 100
        # IPC degrades over the run (allocator-fragmentation drift).
        series = compute_trends(result, "ipc")
        assert all(s.pct_change_total() < -0.01 for s in series)


class TestPredictionPipeline:
    def test_forecast_from_tracked_trends(self):
        ranks = [8, 16, 32]
        traces = [
            apps.gromacs.build(n, iterations=4, base_ranks=8).run(seed=n)
            for n in ranks
        ]
        result = quick_track(traces, settings=FrameSettings(relevance=0.98))
        series = compute_trends(result, "instructions")
        forecasts = extrapolate_trends(series, ranks, [64.0])
        for forecast, observed in zip(forecasts, series):
            # Strong scaling: predicted per-burst work at 64 ranks is
            # about half the 32-rank value.
            assert forecast.y_predicted[0] == pytest.approx(
                observed.values[-1] / 2, rel=0.15
            )


class TestRenderingPipeline:
    def test_sequence_render_from_tracking(self, tmp_path, hydroc_traces):
        result = quick_track(list(hydroc_traces))
        relabeled = relabel_frames(result)
        path = render_sequence_svg(relabeled, tmp_path / "seq.svg")
        content = path.read_text()
        assert content.startswith("<svg")
        assert "circle" in content


class TestCrossMachinePipeline:
    def test_platform_change_study(self):
        """MareNostrum -> MinoTauro: same code tracked across machines."""
        traces = [
            apps.cgpop.build("MareNostrum", "gfortran", ranks=16, iterations=4).run(seed=0),
            apps.cgpop.build("MinoTauro", "gfortran", ranks=16, iterations=4).run(seed=1),
        ]
        result = quick_track(traces)
        # MinoTauro splits region 2 -> grouped relation, coverage 2/3.
        assert result.coverage == 66
        series = compute_trends(result, "ipc")
        for s in series:
            assert s.values[1] > s.values[0]  # newer machine is faster
