"""Unit tests for report formatting."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table, format_table2, table2_rows, table3_report
from repro.analysis.study import ParametricStudy


@pytest.fixture(scope="module")
def small_study_result():
    study = ParametricStudy(
        app="hydroc",
        scenarios=(
            {"block_size": 32, "ranks": 8, "iterations": 4},
            {"block_size": 64, "ranks": 8, "iterations": 4},
        ),
    )
    return study.run(seed=0)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["h"], [["v"]], title="My table")
        assert text.startswith("My table")


class TestTable2:
    def test_rows(self, small_study_result):
        rows = table2_rows({"HydroC": small_study_result})
        assert rows == [
            {
                "application": "HydroC",
                "input_images": 2,
                "tracked_regions": 2,
                "coverage_pct": 100,
            }
        ]

    def test_format_includes_average(self, small_study_result):
        text = format_table2({"HydroC": small_study_result})
        assert "Table 2" in text
        assert "Average coverage: 100.0%" in text


class TestTable3:
    def test_report_structure(self, small_study_result):
        text, rows = table3_report(small_study_result)
        assert "Table 3" in text
        assert len(rows) == 2
        for row in rows:
            assert len(row["ipc"]) == 2
            assert len(row["duration_per_process"]) == 2

    def test_per_process_duration_scaling(self, small_study_result):
        _, rows = table3_report(small_study_result)
        result = small_study_result.result
        region = result.tracked_regions[0]
        frame = result.frames[0]
        total = sum(
            frame.cluster_total(cid, "duration") for cid in region.clusters_in(0)
        )
        assert rows[0]["duration_per_process"][0] == pytest.approx(
            total / frame.trace.nranks
        )
