"""Unit tests for the automated diagnosis rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.insights import diagnose, format_insights
from repro.api import quick_track
from repro.apps import cgpop, hydroc, mrgenesis, nasbt, wrf
from repro.clustering.frames import FrameSettings


def kinds_for(insights, region_id=None):
    return {
        i.kind
        for i in insights
        if region_id is None or i.region_id == region_id
    }


class TestCacheCapacityRule:
    def test_nasbt_diagnosed_as_cache_bound(self):
        traces = [
            nasbt.build(c, iterations=6).run(seed=i) for i, c in enumerate("WA")
        ]
        result = quick_track(
            traces, settings=FrameSettings(log_y=True, relevance=0.97)
        )
        insights = diagnose(result)
        assert "cache-capacity" in kinds_for(insights)
        worst = insights[0]
        assert worst.kind == "cache-capacity"
        assert worst.severity > 0.3
        assert "misses per kilo-instruction" in worst.message


class TestContentionKneeRule:
    def test_mrgenesis_knee_found(self):
        traces = [
            mrgenesis.build(k, iterations=6).run(seed=k) for k in range(1, 13)
        ]
        result = quick_track(traces)
        insights = diagnose(result)
        knees = [i for i in insights if i.kind == "contention-knee"]
        assert len(knees) == 2  # both regions hit the same knee
        for insight in knees:
            # The sharp step happens moving to 9 tasks/node (frame 9/12).
            assert insight.evidence["knee_frame"] == 8
            assert "saturation knee" in insight.message


class TestEncodingChangeRule:
    def test_compiler_change_detected(self):
        traces = [
            cgpop.build("MareNostrum", comp, ranks=16, iterations=4).run(seed=i)
            for i, comp in enumerate(("gfortran", "xlf"))
        ]
        result = quick_track(traces)
        insights = diagnose(result)
        assert kinds_for(insights) == {"encoding-change"}
        for insight in insights:
            assert insight.evidence["instructions_change"] == pytest.approx(
                -0.36, abs=0.03
            )


class TestReplicationRule:
    def test_wrf_replicating_region_flagged(self, wrf_small_result):
        insights = diagnose(wrf_small_result)
        replicated = [i for i in insights if i.kind == "work-replication"]
        assert len(replicated) == 1
        assert replicated[0].evidence["total_instructions_change"] == (
            pytest.approx(0.05, abs=0.02)
        )


class TestStableRule:
    def test_flat_study_is_stable(self):
        from tests.conftest import build_two_region_trace

        traces = [
            build_two_region_trace(seed=i, scenario={"run": i}) for i in range(2)
        ]
        insights = diagnose(quick_track(traces))
        assert kinds_for(insights) == {"stable"}


class TestFormat:
    def test_format_renders_all(self):
        traces = [
            hydroc.build(b, ranks=8, iterations=4).run(seed=i)
            for i, b in enumerate((32, 64))
        ]
        insights = diagnose(quick_track(traces))
        text = format_insights(insights)
        assert text.startswith("Automated diagnosis:")
        assert all(f"[{i.kind}]" in text for i in insights)

    def test_format_empty(self):
        assert "No insights" in format_insights([])
