"""Unit tests for iteration-aligned windowing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.windows import iteration_start_times, iteration_windows
from repro.errors import StudyError
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    # 12 iterations of the 2-phase toy app on 8 ranks.
    return build_two_region_trace(nranks=8, iterations=12)


class TestStartTimes:
    def test_one_start_per_iteration(self, trace):
        starts = iteration_start_times(trace)
        assert len(starts) == 12
        assert starts == sorted(starts)

    def test_starts_align_with_phase_one(self, trace):
        starts = iteration_start_times(trace)
        # The first iteration starts at the very beginning of the run.
        assert starts[0] == pytest.approx(float(trace.begin.min()))

    def test_aperiodic_rejected(self):
        rng = np.random.default_rng(0)
        from repro.trace.callstack import CallPath
        from repro.trace.trace import TraceBuilder

        builder = TraceBuilder(nranks=2, app="chaos")
        # Random phases: many clusters, no repeating order.
        for i in range(80):
            ipc = float(rng.choice([0.25, 0.5, 1.0, 1.5, 2.0]))
            instr = float(rng.choice([1e6, 3e6, 6e6, 9e6, 2e7]))
            builder.add(
                rank=i % 2, begin=float(i), duration=instr / ipc / 1e9,
                callpath=CallPath.single("f", "a.c", 1),
                counters=[instr, instr / ipc, 1.0, 1.0, 1.0],
            )
        with pytest.raises(StudyError, match="no iterative structure"):
            iteration_start_times(builder.build())


class TestWindows:
    def test_even_split(self, trace):
        windows = iteration_windows(trace, 4)
        assert len(windows) == 4
        assert sum(w.n_bursts for w in windows) == trace.n_bursts
        # 12 iterations / 4 windows: every window holds 3 whole
        # iterations = 3 x 2 phases x 8 ranks bursts.
        assert [w.n_bursts for w in windows] == [48, 48, 48, 48]

    def test_uneven_split_distributes_remainder(self, trace):
        windows = iteration_windows(trace, 5)
        counts = [w.n_bursts for w in windows]
        assert sum(counts) == trace.n_bursts
        assert max(counts) - min(counts) == 16  # 3 vs 2 iterations

    def test_window_metadata(self, trace):
        windows = iteration_windows(trace, 3)
        assert [w.scenario["window"] for w in windows] == [0, 1, 2]

    def test_too_many_windows(self, trace):
        with pytest.raises(StudyError, match="iterations"):
            iteration_windows(trace, 50)

    def test_bad_n_windows(self, trace):
        with pytest.raises(StudyError):
            iteration_windows(trace, 0)

    def test_windows_track_cleanly(self, trace):
        from repro import quick_track

        windows = iteration_windows(trace, 4)
        result = quick_track(windows)
        assert result.coverage == 100
        assert len(result.tracked_regions) == 2
