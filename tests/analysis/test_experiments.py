"""Tests for the canned case-study registry (fast structural checks).

The full paper-scale case-study runs live in the benchmarks; here we
verify the registry structure and run the two cheapest studies end to
end to guard the wiring.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import CASE_STUDIES, get_case_study, run_case_study
from repro.errors import StudyError


class TestRegistry:
    def test_ten_case_studies(self):
        assert len(CASE_STUDIES) == 10

    def test_table2_order(self):
        names = [case.name for case in CASE_STUDIES]
        assert names == [
            "Gadget",
            "QuantumE",
            "WRF",
            "Gromacs",
            "CGPOP",
            "NAS BT",
            "HydroC",
            "MR-Genesis",
            "NAS FT",
            "Gromacs (20)",
        ]

    def test_expected_images_match_scenarios(self):
        for case in CASE_STUDIES:
            if case.study.trace_hook is None:
                assert len(case.study.scenarios) == case.expected_images

    def test_average_expected_coverage_is_90(self):
        mean = sum(case.expected_coverage for case in CASE_STUDIES) / len(CASE_STUDIES)
        assert mean == pytest.approx(90.0)

    def test_lookup_case_insensitive(self):
        assert get_case_study("cgpop").name == "CGPOP"
        with pytest.raises(StudyError, match="unknown case study"):
            get_case_study("LAMMPS")


class TestSmallRuns:
    def test_cgpop_targets(self):
        result = run_case_study("CGPOP")
        case = get_case_study("CGPOP")
        assert result.result.n_frames == case.expected_images
        assert result.n_tracked == case.expected_regions
        assert result.coverage == case.expected_coverage

    def test_nas_bt_targets(self):
        result = run_case_study("NAS BT")
        case = get_case_study("NAS BT")
        assert result.n_tracked == case.expected_regions
        assert result.coverage == case.expected_coverage
