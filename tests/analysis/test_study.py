"""Unit tests for the parametric study driver."""

from __future__ import annotations

import pytest

from repro.analysis.study import ParametricStudy, StudyResult
from repro.clustering.frames import FrameSettings
from repro.errors import StudyError


def hydroc_study(blocks=(32, 64)):
    return ParametricStudy(
        app="hydroc",
        scenarios=tuple({"block_size": b, "ranks": 8, "iterations": 4} for b in blocks),
    )


class TestParametricStudy:
    def test_needs_scenarios(self):
        with pytest.raises(StudyError):
            ParametricStudy(app="hydroc", scenarios=())

    def test_build_models(self):
        models = hydroc_study().build_models()
        assert [m.scenario["block_size"] for m in models] == [32, 64]

    def test_run_produces_result(self):
        result = hydroc_study().run(seed=0)
        assert isinstance(result, StudyResult)
        assert len(result.traces) == 2
        assert result.n_tracked == 2
        assert result.coverage == 100

    def test_seed_derivation_reproducible(self):
        a = hydroc_study().run(seed=7)
        b = hydroc_study().run(seed=7)
        assert a.traces[0] == b.traces[0]
        assert a.traces[1] == b.traces[1]

    def test_scenarios_get_distinct_seeds(self):
        result = hydroc_study(blocks=(32, 32)).run(seed=0)
        assert result.traces[0] != result.traces[1]

    def test_trends_accessor(self):
        result = hydroc_study().run()
        series = result.trends("ipc")
        assert len(series) == 2

    def test_single_scenario_rejected_without_hook(self):
        study = ParametricStudy(
            app="hydroc", scenarios=({"block_size": 32, "ranks": 4, "iterations": 2},)
        )
        with pytest.raises(StudyError, match="two frames"):
            study.run()

    def test_trace_hook(self):
        from repro.apps import nasft

        study = ParametricStudy(
            app="nas-ft",
            scenarios=({"ranks": 4, "iterations": 9},),
            trace_hook=lambda traces: nasft.window_traces(traces[0], 3),
        )
        result = study.run()
        assert len(result.traces) == 3
        assert result.result.n_frames == 3

    def test_log_y_settings_propagate_to_tracker(self):
        study = ParametricStudy(
            app="nas-bt",
            scenarios=(
                {"problem_class": "W", "ranks": 4, "iterations": 4},
                {"problem_class": "A", "ranks": 4, "iterations": 4},
            ),
            settings=FrameSettings(log_y=True, relevance=0.97),
        )
        result = study.run()
        assert result.result.space is not None
        assert result.coverage > 0
