"""Targeted tests for individual insight rules on engineered traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.insights import diagnose
from repro.api import quick_track
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder


def gradient_trace(*, imbalance: float, scenario: dict, seed: int = 0):
    """Two regions; region b's work carries a linear rank gradient."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(nranks=8, app="grad", scenario=scenario)
    path_a = CallPath.single("a", "m.c", 1)
    path_b = CallPath.single("b", "m.c", 2)
    t = np.zeros(8)
    for _ in range(8):
        for path, base, ipc, tilt in (
            (path_a, 1e6, 1.0, 0.0),
            (path_b, 4e6, 0.5, imbalance),
        ):
            for rank in range(8):
                gradient = 1.0 + tilt * (rank / 7 - 0.5)
                instr = base * gradient * (1 + 0.005 * rng.standard_normal())
                cycles = instr / ipc
                duration = cycles / 1e9
                builder.add(rank=rank, begin=float(t[rank]), duration=duration,
                            callpath=path,
                            counters=[instr, cycles, instr * 0.01,
                                      instr * 0.001, instr * 1e-4])
                t[rank] += duration
            t[:] = t.max()
    return builder.build()


class TestImbalanceGrowthRule:
    def test_growing_gradient_flagged(self):
        traces = [
            gradient_trace(imbalance=0.05, scenario={"run": 0}, seed=0),
            gradient_trace(imbalance=0.6, scenario={"run": 1}, seed=1),
        ]
        insights = diagnose(quick_track(traces))
        flagged = [i for i in insights if i.kind == "imbalance-growth"]
        assert len(flagged) == 1
        evidence = flagged[0].evidence
        assert evidence["cv_last"] > 2 * evidence["cv_first"]
        assert "load imbalance" in flagged[0].message

    def test_constant_gradient_not_flagged(self):
        traces = [
            gradient_trace(imbalance=0.3, scenario={"run": 0}, seed=0),
            gradient_trace(imbalance=0.3, scenario={"run": 1}, seed=1),
        ]
        insights = diagnose(quick_track(traces))
        assert not any(i.kind == "imbalance-growth" for i in insights)


class TestSeverityOrdering:
    def test_most_severe_first(self):
        from repro.apps import nasbt
        from repro.clustering.frames import FrameSettings

        traces = [
            nasbt.build(c, iterations=6).run(seed=i) for i, c in enumerate("WA")
        ]
        insights = diagnose(
            quick_track(traces, settings=FrameSettings(log_y=True, relevance=0.97))
        )
        severities = [i.severity for i in insights]
        assert severities == sorted(severities, reverse=True)
