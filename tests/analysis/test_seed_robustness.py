"""Seed-robustness: the Table 2 targets must not depend on the RNG.

The paper's structural results (cluster counts, tracked regions,
coverage) are properties of the applications, not of one lucky noise
draw.  These tests re-run the two cheapest case studies under several
seeds and demand identical outcomes.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import get_case_study

SEEDS = (0, 17, 4242)


@pytest.mark.parametrize("seed", SEEDS)
def test_cgpop_targets_stable_across_seeds(seed):
    case = get_case_study("CGPOP")
    result = case.run(seed=seed)
    assert result.n_tracked == case.expected_regions
    assert result.coverage == case.expected_coverage


@pytest.mark.parametrize("seed", SEEDS)
def test_hydroc_targets_stable_across_seeds(seed):
    case = get_case_study("HydroC")
    result = case.run(seed=seed)
    assert result.n_tracked == case.expected_regions
    assert result.coverage == case.expected_coverage


@pytest.mark.parametrize("seed", SEEDS)
def test_quantum_espresso_targets_stable_across_seeds(seed):
    case = get_case_study("QuantumE")
    result = case.run(seed=seed)
    assert result.n_tracked == case.expected_regions
    assert result.coverage == case.expected_coverage
