"""Unit tests for SPMD measures on alignments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.msa import MultipleAlignment, star_align
from repro.alignment.pairwise import GAP
from repro.alignment.spmd import consensus_sequence, simultaneity_matrix, spmdiness_score
from repro.errors import AlignmentError


def alignment_from(rows):
    matrix = np.asarray(rows, dtype=np.int64)
    return MultipleAlignment(matrix=matrix, keys=tuple(range(matrix.shape[0])))


class TestSpmdiness:
    def test_perfect_spmd(self):
        alignment = alignment_from([[1, 2, 3]] * 4)
        assert spmdiness_score(alignment) == 1.0

    def test_fully_divergent(self):
        alignment = alignment_from([[1, 1], [2, 2], [3, 3], [4, 4]])
        assert spmdiness_score(alignment) == pytest.approx(0.25)

    def test_partial(self):
        alignment = alignment_from([[1, 2], [1, 2], [1, 9], [1, 2]])
        assert spmdiness_score(alignment) == pytest.approx(7 / 8)

    def test_gaps_ignored(self):
        alignment = alignment_from([[1, GAP], [1, GAP]])
        assert spmdiness_score(alignment) == 1.0

    def test_empty(self):
        alignment = MultipleAlignment(
            matrix=np.zeros((1, 0), dtype=np.int64), keys=(0,)
        )
        assert spmdiness_score(alignment) == 0.0


class TestSimultaneity:
    def test_bimodal_co_occurrence(self):
        # Clusters 2 and 3 always share a column: the bimodal case.
        alignment = alignment_from([[1, 2], [1, 3], [1, 2], [1, 3]])
        matrix = simultaneity_matrix(alignment, (1, 2, 3))
        assert matrix[1, 2] == pytest.approx(1.0)  # P(3 | 2)
        assert matrix[2, 1] == pytest.approx(1.0)
        assert matrix[0, 1] == 0.0  # 1 never co-occurs with 2

    def test_diagonal_one_when_present(self):
        alignment = alignment_from([[1, 2], [1, 2]])
        matrix = simultaneity_matrix(alignment, (1, 2))
        assert matrix[0, 0] == 1.0
        assert matrix[1, 1] == 1.0

    def test_absent_cluster_zero_row(self):
        alignment = alignment_from([[1, 1], [1, 1]])
        matrix = simultaneity_matrix(alignment, (1, 7))
        assert (matrix[1, :] == 0).all()

    def test_asymmetric_conditioning(self):
        # 5 appears in two columns, 6 in one of them only.
        alignment = alignment_from([[5, 5], [6, 5]])
        matrix = simultaneity_matrix(alignment, (5, 6))
        assert matrix[1, 0] == pytest.approx(1.0)  # P(5 | 6) = 1
        assert matrix[0, 1] == pytest.approx(0.5)  # P(6 | 5) = 1/2

    def test_empty_ids_rejected(self):
        alignment = alignment_from([[1]])
        with pytest.raises(AlignmentError):
            simultaneity_matrix(alignment, ())


class TestConsensus:
    def test_majority_vote(self):
        alignment = alignment_from([[1, 2], [1, 2], [1, 9]])
        np.testing.assert_array_equal(consensus_sequence(alignment), [1, 2])

    def test_gap_columns_dropped(self):
        alignment = alignment_from([[1, GAP, 2], [1, GAP, 2]])
        np.testing.assert_array_equal(consensus_sequence(alignment), [1, 2])

    def test_end_to_end_with_star(self):
        sequences = {r: np.asarray([1, 2, 3, 1, 2, 3]) for r in range(5)}
        alignment = star_align(sequences)
        np.testing.assert_array_equal(
            consensus_sequence(alignment), [1, 2, 3, 1, 2, 3]
        )
