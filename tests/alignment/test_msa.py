"""Unit tests for star multiple sequence alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.msa import MultipleAlignment, star_align
from repro.alignment.pairwise import GAP
from repro.errors import AlignmentError


def seqs(**kwargs):
    return {k: np.asarray(v, dtype=np.int64) for k, v in
            ((int(key), val) for key, val in kwargs.items())}


class TestStarAlign:
    def test_identical_sequences(self):
        alignment = star_align({r: np.asarray([1, 2, 3]) for r in range(4)})
        assert alignment.n_sequences == 4
        assert alignment.n_columns == 3
        assert (alignment.matrix != GAP).all()
        for col in range(3):
            assert len(set(alignment.matrix[:, col])) == 1

    def test_one_sequence(self):
        alignment = star_align({0: np.asarray([5, 6])})
        assert alignment.n_sequences == 1
        np.testing.assert_array_equal(alignment.matrix[0], [5, 6])

    def test_missing_symbol_becomes_gap(self):
        alignment = star_align({
            0: np.asarray([1, 2, 3]),
            1: np.asarray([1, 3]),
        })
        row1 = alignment.row(1)
        assert (row1 == GAP).sum() == 1
        assert alignment.n_columns == 3

    def test_extra_symbol_grows_center(self):
        alignment = star_align({
            0: np.asarray([1, 3]),
            1: np.asarray([1, 2, 3]),
            2: np.asarray([1, 3]),
        })
        # Centre is the longest sequence (key 1); rows 0 and 2 get gaps.
        assert alignment.n_columns == 3
        assert (alignment.row(0) == GAP).sum() == 1
        assert (alignment.row(2) == GAP).sum() == 1

    def test_regrow_with_multiple_sequences(self):
        # Sequences of equal length force the first as centre; later
        # sequences introduce new columns.
        alignment = star_align({
            0: np.asarray([1, 2, 3, 4]),
            1: np.asarray([1, 2, 9, 3, 4]),
            2: np.asarray([1, 2, 3, 4]),
        })
        assert alignment.n_columns >= 4
        # Every original symbol is preserved per row.
        for key, original in ((0, [1, 2, 3, 4]), (1, [1, 2, 9, 3, 4]), (2, [1, 2, 3, 4])):
            row = alignment.row(key)
            assert [int(v) for v in row[row != GAP]] == original

    def test_column_symbols(self):
        alignment = star_align({
            0: np.asarray([1, 2]),
            1: np.asarray([1, 5]),
        })
        assert set(alignment.column_symbols(0).tolist()) == {1}
        assert set(alignment.column_symbols(1).tolist()) == {2, 5}

    def test_keys_preserved_sorted(self):
        alignment = star_align({
            7: np.asarray([1]),
            3: np.asarray([1]),
        })
        assert alignment.keys == (3, 7)

    def test_row_unknown_key(self):
        alignment = star_align({0: np.asarray([1])})
        with pytest.raises(KeyError):
            alignment.row(5)

    def test_empty_input_rejected(self):
        with pytest.raises(AlignmentError):
            star_align({})

    def test_2d_sequence_rejected(self):
        with pytest.raises(AlignmentError):
            star_align({0: np.zeros((2, 2), dtype=np.int64)})

    def test_spmd_like_input(self):
        # 8 ranks, iterative pattern, one rank diverges in one slot.
        base = [1, 2, 3] * 5
        sequences = {r: np.asarray(base) for r in range(8)}
        divergent = list(base)
        divergent[4] = 9
        sequences[3] = np.asarray(divergent)
        alignment = star_align(sequences)
        # Alignment should not explode in columns.
        assert alignment.n_columns <= len(base) + 2


class TestMultipleAlignmentValidation:
    def test_matrix_must_be_2d(self):
        with pytest.raises(AlignmentError):
            MultipleAlignment(matrix=np.zeros(3, dtype=np.int64), keys=(0,))

    def test_keys_match_rows(self):
        with pytest.raises(AlignmentError):
            MultipleAlignment(matrix=np.zeros((2, 3), dtype=np.int64), keys=(0,))
