"""Unit tests for Needleman-Wunsch pairwise alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.pairwise import GAP, Alignment, global_align
from repro.errors import AlignmentError


def seq(*values):
    return np.asarray(values, dtype=np.int64)


class TestGlobalAlign:
    def test_identical_sequences(self):
        a = seq(1, 2, 3, 4)
        result = global_align(a, a)
        assert result.identity() == 1.0
        np.testing.assert_array_equal(result.aligned_a, a)
        np.testing.assert_array_equal(result.aligned_b, a)
        assert result.score == pytest.approx(8.0)

    def test_single_insertion(self):
        result = global_align(seq(1, 2, 3), seq(1, 2, 9, 3))
        assert result.length == 4
        assert result.matches() == 3
        # The gap sits opposite symbol 9.
        gap_col = int(np.flatnonzero(result.aligned_a == GAP)[0])
        assert result.aligned_b[gap_col] == 9

    def test_single_deletion(self):
        result = global_align(seq(1, 2, 9, 3), seq(1, 2, 3))
        assert result.matches() == 3
        assert (result.aligned_b == GAP).sum() == 1

    def test_completely_different(self):
        result = global_align(seq(1, 1, 1), seq(2, 2, 2))
        assert result.matches() == 0

    def test_empty_sequences(self):
        result = global_align(seq(), seq())
        assert result.length == 0
        assert result.identity() == 0.0

    def test_empty_versus_full(self):
        result = global_align(seq(), seq(1, 2))
        assert result.length == 2
        assert (result.aligned_a == GAP).all()

    def test_pairs(self):
        result = global_align(seq(1, 2, 3), seq(1, 5, 3))
        assert (1, 1) in result.pairs()
        assert (3, 3) in result.pairs()

    def test_score_optimality_simple(self):
        # match=2, mismatch=-1, gap=-2: aligning (1,2) with (1,3)
        # diagonal (match + mismatch = 1) beats gaps (2 - 4 = -2).
        result = global_align(seq(1, 2), seq(1, 3))
        assert result.score == pytest.approx(1.0)
        assert result.length == 2

    def test_repetitive_spmd_sequences(self):
        a = seq(*([1, 2, 3] * 10))
        b = seq(*([1, 2, 3] * 10 + [1, 2, 3]))
        result = global_align(a, b)
        assert result.matches() == 30

    def test_custom_scoring(self):
        strict = global_align(seq(1, 2), seq(2, 1), match=1.0, mismatch=-10.0, gap=-1.0)
        assert strict.matches() <= 1  # prefers gaps over mismatches

    def test_input_validation(self):
        with pytest.raises(AlignmentError):
            global_align(seq(1, GAP), seq(1))
        with pytest.raises(AlignmentError):
            global_align(np.zeros((2, 2), dtype=np.int64), seq(1))
        with pytest.raises(AlignmentError):
            global_align(seq(1), seq(1), gap=0.0)

    def test_alignment_shape_validation(self):
        with pytest.raises(AlignmentError):
            Alignment(aligned_a=seq(1, 2), aligned_b=seq(1), score=0.0)

    def test_score_matches_column_sum(self):
        a = seq(1, 2, 3, 5, 5)
        b = seq(1, 3, 5, 5, 7)
        result = global_align(a, b)
        total = 0.0
        for col in range(result.length):
            sa, sb = result.aligned_a[col], result.aligned_b[col]
            if sa == GAP or sb == GAP:
                total += -2.0
            elif sa == sb:
                total += 2.0
            else:
                total += -1.0
        assert result.score == pytest.approx(total)
