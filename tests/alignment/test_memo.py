"""Unit tests for the content-keyed pairwise-alignment memo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.memo import (
    align_memo_info,
    clear_align_memo,
    memoised_align,
)
from repro.alignment.pairwise import global_align


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_align_memo()
    yield
    clear_align_memo()


def _seqs():
    rng = np.random.default_rng(7)
    a = rng.integers(1, 5, size=40).astype(np.int64)
    b = np.delete(a, [3, 17, 29])
    return a, b


class TestMemo:
    def test_matches_global_align(self):
        a, b = _seqs()
        memo = memoised_align(a, b)
        direct = global_align(a, b)
        assert memo.score == direct.score
        np.testing.assert_array_equal(memo.aligned_a, direct.aligned_a)
        np.testing.assert_array_equal(memo.aligned_b, direct.aligned_b)

    def test_second_call_hits(self):
        a, b = _seqs()
        first = memoised_align(a, b)
        info0 = align_memo_info()
        second = memoised_align(a.copy(), b.copy())  # content-keyed, not id
        info1 = align_memo_info()
        assert info1["hits"] == info0["hits"] + 1
        assert info1["misses"] == info0["misses"]
        assert second is first

    def test_scheme_is_part_of_the_key(self):
        a, b = _seqs()
        default = memoised_align(a, b)
        other = memoised_align(a, b, match=1.0, mismatch=0.0, gap=-1.0)
        assert align_memo_info()["misses"] == 2
        assert default is not other

    def test_results_are_read_only(self):
        a, b = _seqs()
        memo = memoised_align(a, b)
        with pytest.raises(ValueError):
            memo.aligned_a[0] = 99

    def test_clear_resets(self):
        a, b = _seqs()
        memoised_align(a, b)
        clear_align_memo()
        info = align_memo_info()
        assert info == {"entries": 0, "hits": 0, "misses": 0}

    def test_lru_bound(self, monkeypatch):
        from repro.alignment import memo as memo_mod

        monkeypatch.setattr(memo_mod, "_MAX_ENTRIES", 4)
        for value in range(10):
            seq = np.full(3, value, dtype=np.int64)
            memoised_align(seq, seq)
        assert align_memo_info()["entries"] <= 4
