"""Unit tests for iterative-structure detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.structure import (
    detect_period,
    iteration_boundaries,
    phase_structure,
)
from repro.errors import AlignmentError


class TestDetectPeriod:
    def test_clean_period(self):
        assert detect_period([1, 2, 3] * 6) == 3

    def test_smallest_period_wins(self):
        # Period 2 also tiles a period-4 candidate sequence.
        assert detect_period([1, 2] * 8) == 2

    def test_constant_sequence(self):
        assert detect_period([5] * 10) == 1

    def test_aperiodic(self):
        assert detect_period([1, 2, 3, 4, 5, 6, 7, 8]) is None

    def test_noise_tolerance(self):
        sequence = [1, 2, 3] * 10
        sequence[7] = 9  # one divergent symbol
        assert detect_period(sequence, threshold=0.9) == 3

    def test_strict_threshold_rejects_noise(self):
        sequence = [1, 2, 3] * 4
        sequence[4] = 9
        assert detect_period(sequence, threshold=1.0) is None

    def test_too_short(self):
        assert detect_period([1]) is None
        assert detect_period([]) is None

    def test_min_repeats(self):
        sequence = [1, 2, 3, 4, 1, 2, 3, 4]  # exactly two repeats
        assert detect_period(sequence, min_repeats=2) == 4
        assert detect_period(sequence, min_repeats=3) is None

    def test_2d_rejected(self):
        with pytest.raises(AlignmentError):
            detect_period(np.zeros((2, 2), dtype=np.int64))


class TestBoundaries:
    def test_boundaries(self):
        assert iteration_boundaries([1, 2, 3] * 4) == [0, 3, 6, 9]

    def test_aperiodic_empty(self):
        assert iteration_boundaries([1, 2, 3, 4, 5, 6, 7]) == []


class TestPhaseStructure:
    def test_full_report(self):
        structure = phase_structure([1, 2, 3] * 5)
        assert structure is not None
        assert structure.period == 3
        assert structure.phases == (1, 2, 3)
        assert structure.n_iterations == 5
        assert structure.regularity == 1.0

    def test_majority_pattern_with_noise(self):
        sequence = [1, 2, 3] * 10
        sequence[4] = 9
        structure = phase_structure(sequence)
        assert structure is not None
        assert structure.phases == (1, 2, 3)
        assert structure.regularity == pytest.approx(29 / 30)

    def test_aperiodic_none(self):
        assert phase_structure(list(range(12))) is None

    def test_on_real_frame_consensus(self, wrf_small_result):
        from repro.alignment.spmd import consensus_sequence
        from repro.tracking.evaluators.simultaneity import frame_alignment

        frame = wrf_small_result.frames[0]
        consensus = consensus_sequence(frame_alignment(frame))
        structure = phase_structure(consensus)
        assert structure is not None
        assert structure.period == 12  # WRF's twelve phases
        assert structure.n_iterations == 4
        assert structure.regularity > 0.95
