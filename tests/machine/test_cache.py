"""Unit tests for the cache miss-rate model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.machine.cache import CacheHierarchy, CacheLevel

L1 = CacheLevel(name="L1", size_bytes=32 * 1024, floor_miss_rate=0.01,
                ceiling_miss_rate=0.30, sharpness=3.0, miss_penalty_cycles=10.0)
L2 = CacheLevel(name="L2", size_bytes=256 * 1024, floor_miss_rate=0.02,
                ceiling_miss_rate=0.40, sharpness=2.0, miss_penalty_cycles=35.0)
HIER = CacheHierarchy(levels=(L1, L2), memory_latency_cycles=200.0)


class TestCacheLevel:
    def test_small_ws_near_floor(self):
        assert L1.miss_rate(1024) == pytest.approx(L1.floor_miss_rate, abs=0.002)

    def test_huge_ws_near_ceiling(self):
        assert L1.miss_rate(64 * 1024 * 1024) == pytest.approx(
            L1.ceiling_miss_rate, abs=0.002
        )

    def test_midpoint_at_capacity(self):
        expected = (L1.floor_miss_rate + L1.ceiling_miss_rate) / 2
        assert L1.miss_rate(L1.size_bytes) == pytest.approx(expected)

    def test_monotone_in_working_set(self):
        ws = np.geomspace(1024, 1e9, 64)
        rates = L1.miss_rate(ws)
        assert (np.diff(rates) >= 0).all()

    def test_vectorised_matches_scalar(self):
        ws = np.asarray([1e3, 1e5, 1e7])
        vector = L1.miss_rate(ws)
        scalar = [L1.miss_rate(float(w)) for w in ws]
        np.testing.assert_allclose(vector, scalar)

    def test_zero_ws_fits(self):
        assert L1.miss_rate(0.0) <= L1.miss_rate(1.0) + 1e-12

    def test_negative_ws_rejected(self):
        with pytest.raises(ModelError):
            L1.miss_rate(-1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            CacheLevel(name="bad", size_bytes=0)
        with pytest.raises(ModelError):
            CacheLevel(name="bad", size_bytes=1, floor_miss_rate=0.5,
                       ceiling_miss_rate=0.1)
        with pytest.raises(ModelError):
            CacheLevel(name="bad", size_bytes=1, sharpness=0.0)


class TestHierarchy:
    def test_levels_must_grow(self):
        with pytest.raises(ModelError, match="grow"):
            CacheHierarchy(levels=(L2, L1))

    def test_needs_levels(self):
        with pytest.raises(ModelError):
            CacheHierarchy(levels=())

    def test_global_rates_decrease_outwards(self):
        rates = HIER.misses_per_access(1e6)
        assert rates[1] <= rates[0]

    def test_global_l2_is_product_of_locals(self):
        ws = 1e6
        rates = HIER.misses_per_access(ws)
        assert rates[1] == pytest.approx(
            float(L1.miss_rate(ws)) * float(L2.miss_rate(ws))
        )

    def test_outer_ws_drives_outer_levels(self):
        inner_only = HIER.misses_per_access(1024)
        split = HIER.misses_per_access(1024, outer_working_set_bytes=1e9)
        assert split[0] == pytest.approx(inner_only[0])
        assert split[1] > inner_only[1]

    def test_stall_monotone_in_ws(self):
        stalls = [HIER.stall_cycles_per_access(ws) for ws in (1e3, 1e5, 1e7, 1e9)]
        assert stalls == sorted(stalls)

    def test_stall_includes_memory_latency(self):
        # With a saturated hierarchy, the memory term dominates.
        stall = HIER.stall_cycles_per_access(1e9)
        l2_global = HIER.misses_per_access(1e9)[1]
        assert stall > l2_global * HIER.memory_latency_cycles

    def test_level_lookup(self):
        assert HIER.level("L2") is L2
        with pytest.raises(KeyError):
            HIER.level("L3")

    def test_n_levels(self):
        assert HIER.n_levels == 2
