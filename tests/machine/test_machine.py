"""Unit tests for machine presets."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.machine import MACHINES, MARENOSTRUM, MINOTAURO, Machine, get_machine


class TestPresets:
    def test_both_registered(self):
        assert set(MACHINES) == {"MareNostrum", "MinoTauro"}

    def test_lookup(self):
        assert get_machine("MinoTauro") is MINOTAURO
        with pytest.raises(KeyError):
            get_machine("Summit")

    def test_minotauro_faster_core(self):
        # Westmere achieves roughly twice the IPC of the PPC 970MP.
        assert MINOTAURO.peak_ipc > 1.4 * MARENOSTRUM.peak_ipc

    def test_clocks_match_paper(self):
        assert MARENOSTRUM.clock_hz == pytest.approx(2.3e9)
        assert MINOTAURO.clock_hz == pytest.approx(2.53e9)

    def test_cores_per_node_match_paper(self):
        # 2x dual-core PPC 970MP vs 2x 6-core Xeon E5649.
        assert MARENOSTRUM.cores_per_node == 4
        assert MINOTAURO.cores_per_node == 12

    def test_both_have_32k_l1(self):
        # Shared property the HydroC study relies on.
        for machine in MACHINES.values():
            assert machine.caches.levels[0].size_bytes == 32 * 1024


class TestValidation:
    def test_bad_clock(self):
        with pytest.raises(ModelError):
            Machine(
                name="x", clock_hz=0.0, cores_per_node=1, base_cpi=1.0,
                caches=CacheHierarchy(levels=(CacheLevel(name="L1", size_bytes=1024),)),
            )

    def test_bad_cores(self):
        with pytest.raises(ModelError):
            Machine(
                name="x", clock_hz=1e9, cores_per_node=0, base_cpi=1.0,
                caches=CacheHierarchy(levels=(CacheLevel(name="L1", size_bytes=1024),)),
            )

    def test_bad_cpi(self):
        with pytest.raises(ModelError):
            Machine(
                name="x", clock_hz=1e9, cores_per_node=1, base_cpi=0.0,
                caches=CacheHierarchy(levels=(CacheLevel(name="L1", size_bytes=1024),)),
            )
