"""Unit tests for the combined performance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.machine.compiler import GFORTRAN, XLF
from repro.machine.machine import MARENOSTRUM, MINOTAURO
from repro.machine.perfmodel import BurstCounters, PerformanceModel, WorkloadPoint


def point(**overrides) -> WorkloadPoint:
    base = dict(
        work_units=1e6,
        instructions_per_unit=50.0,
        memory_accesses_per_unit=1.0,
        working_set_bytes=64 * 1024,
        bandwidth_demand_gbs=0.5,
    )
    base.update(overrides)
    return WorkloadPoint(**base)


class TestBasics:
    def test_instruction_count(self):
        counters = PerformanceModel(MINOTAURO).evaluate(point())
        assert counters.instructions == pytest.approx(5e7)

    def test_ipc_consistency(self):
        counters = PerformanceModel(MINOTAURO).evaluate(point())
        assert counters.ipc == pytest.approx(
            counters.instructions / counters.cycles
        )

    def test_duration_from_clock(self):
        counters = PerformanceModel(MINOTAURO).evaluate(point())
        assert counters.duration == pytest.approx(
            counters.cycles / MINOTAURO.clock_hz
        )

    def test_linearity_in_work(self):
        model = PerformanceModel(MINOTAURO)
        one = model.evaluate(point(work_units=1e6))
        two = model.evaluate(point(work_units=2e6))
        assert two.cycles == pytest.approx(2 * one.cycles)
        assert two.l1_misses == pytest.approx(2 * one.l1_misses)

    def test_batch_matches_scalar(self):
        model = PerformanceModel(MINOTAURO)
        work = np.asarray([1e5, 5e5, 2e6])
        batch = model.evaluate_batch(point(), work)
        for i, w in enumerate(work):
            single = model.evaluate(point(work_units=float(w)))
            assert np.asarray(batch.cycles)[i] == pytest.approx(single.cycles)
            assert np.asarray(batch.tlb_misses)[i] == pytest.approx(single.tlb_misses)

    def test_zero_work(self):
        counters = PerformanceModel(MINOTAURO).evaluate(point(work_units=0.0))
        assert counters.instructions == 0.0
        assert counters.ipc == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ModelError):
            PerformanceModel(MINOTAURO).evaluate_batch(point(), np.asarray([-1.0]))


class TestMemoryEffects:
    def test_larger_ws_lower_ipc(self):
        model = PerformanceModel(MARENOSTRUM)
        small = model.predicted_ipc(point(working_set_bytes=8 * 1024))
        large = model.predicted_ipc(point(working_set_bytes=64 * 1024 * 1024))
        assert large < small

    def test_larger_ws_more_misses(self):
        model = PerformanceModel(MARENOSTRUM)
        small = model.evaluate(point(working_set_bytes=8 * 1024))
        large = model.evaluate(point(working_set_bytes=64 * 1024 * 1024))
        assert large.l1_misses > small.l1_misses
        assert large.l2_misses > small.l2_misses
        assert large.tlb_misses > small.tlb_misses

    def test_streaming_misses_independent_of_inner_ws(self):
        model = PerformanceModel(MINOTAURO)
        streaming = dict(
            memory_accesses_per_unit=0.0,
            streaming_accesses_per_unit=1.0,
            outer_working_set_bytes=1e9,
        )
        small = model.evaluate(point(working_set_bytes=1024, **streaming))
        large = model.evaluate(point(working_set_bytes=1e8, **streaming))
        assert small.l1_misses == pytest.approx(large.l1_misses)

    def test_streaming_l1_rate_is_per_line(self):
        model = PerformanceModel(MINOTAURO)
        counters = model.evaluate(
            point(
                memory_accesses_per_unit=0.0,
                streaming_accesses_per_unit=1.0,
                outer_working_set_bytes=1e9,
            )
        )
        line = MINOTAURO.caches.levels[0].line_bytes
        assert counters.l1_misses == pytest.approx(1e6 * 8.0 / line)

    def test_core_cpi_scale(self):
        model = PerformanceModel(MINOTAURO)
        slow = model.predicted_ipc(point(core_cpi_scale=2.0))
        fast = model.predicted_ipc(point(core_cpi_scale=1.0))
        assert slow < fast


class TestCompilerEffects:
    def test_vendor_fewer_instructions_same_time(self):
        generic = PerformanceModel(MARENOSTRUM, compiler=GFORTRAN).evaluate(point())
        vendor = PerformanceModel(MARENOSTRUM, compiler=XLF).evaluate(point())
        assert vendor.instructions == pytest.approx(0.64 * generic.instructions)
        assert vendor.duration == pytest.approx(generic.duration, rel=1e-9)
        assert vendor.ipc == pytest.approx(0.64 * generic.ipc, rel=1e-9)

    def test_memory_traffic_compiler_invariant(self):
        generic = PerformanceModel(MARENOSTRUM, compiler=GFORTRAN).evaluate(point())
        vendor = PerformanceModel(MARENOSTRUM, compiler=XLF).evaluate(point())
        assert vendor.l1_misses == pytest.approx(generic.l1_misses)
        assert vendor.l2_misses == pytest.approx(generic.l2_misses)


class TestContentionEffects:
    def test_full_node_slower(self):
        alone = PerformanceModel(MINOTAURO, processes_per_node=1)
        full = PerformanceModel(MINOTAURO, processes_per_node=12)
        heavy = point(bandwidth_demand_gbs=2.5)
        assert full.predicted_ipc(heavy) < alone.predicted_ipc(heavy)

    def test_ppn_cannot_exceed_cores(self):
        with pytest.raises(ModelError):
            PerformanceModel(MARENOSTRUM, processes_per_node=5)

    def test_ppn_must_be_positive(self):
        with pytest.raises(ModelError):
            PerformanceModel(MARENOSTRUM, processes_per_node=0)


class TestWorkloadPointValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ModelError):
            point(work_units=-1.0)
        with pytest.raises(ModelError):
            point(instructions_per_unit=0.0)
        with pytest.raises(ModelError):
            point(memory_accesses_per_unit=-1.0)
        with pytest.raises(ModelError):
            point(working_set_bytes=-1.0)
        with pytest.raises(ModelError):
            point(core_cpi_scale=0.0)
        with pytest.raises(ModelError):
            point(streaming_accesses_per_unit=-0.5)
        with pytest.raises(ModelError):
            point(element_bytes=0.0)

    def test_with_work(self):
        p = point().with_work(123.0)
        assert p.work_units == 123.0
        assert p.instructions_per_unit == point().instructions_per_unit

    def test_counters_dataclass_ipc_scalar(self):
        counters = BurstCounters(
            instructions=100.0, cycles=200.0, l1_misses=0.0,
            l2_misses=0.0, tlb_misses=0.0, duration=1.0,
        )
        assert counters.ipc == pytest.approx(0.5)
