"""Unit tests for the TLB model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.machine.tlb import TLBModel

TLB = TLBModel(entries=64, page_bytes=4096)


class TestTLB:
    def test_reach(self):
        assert TLB.reach_bytes == 64 * 4096

    def test_small_ws_floor(self):
        assert TLB.miss_rate(4096) == pytest.approx(TLB.floor_miss_rate, abs=1e-4)

    def test_large_ws_ceiling(self):
        assert TLB.miss_rate(1e9) == pytest.approx(TLB.ceiling_miss_rate, abs=1e-4)

    def test_midpoint_at_reach(self):
        expected = (TLB.floor_miss_rate + TLB.ceiling_miss_rate) / 2
        assert TLB.miss_rate(TLB.reach_bytes) == pytest.approx(expected)

    def test_monotone(self):
        rates = TLB.miss_rate(np.geomspace(1e3, 1e9, 32))
        assert (np.diff(rates) >= 0).all()

    def test_stall_scales_with_penalty(self):
        heavy = TLBModel(entries=64, page_bytes=4096, miss_penalty_cycles=100.0)
        assert heavy.stall_cycles_per_access(1e9) > TLB.stall_cycles_per_access(1e9)

    def test_negative_ws_rejected(self):
        with pytest.raises(ModelError):
            TLB.miss_rate(-5.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            TLBModel(entries=0)
        with pytest.raises(ModelError):
            TLBModel(page_bytes=0)
        with pytest.raises(ModelError):
            TLBModel(floor_miss_rate=0.5, ceiling_miss_rate=0.1)
