"""Unit tests for the node-contention model."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.machine.contention import NodeContentionModel

MODEL = NodeContentionModel(
    node_bandwidth_gbs=20.0,
    interference_per_process=0.01,
    overload_exponent=1.0,
    saturation_jump=0.2,
    cache_pressure_per_process=0.05,
)


class TestStallFactor:
    def test_alone_within_capacity_is_one(self):
        assert MODEL.memory_stall_factor(1, 1.0) == pytest.approx(1.0)

    def test_interference_grows_with_neighbours(self):
        factors = [MODEL.memory_stall_factor(k, 0.5) for k in range(1, 9)]
        assert factors == sorted(factors)
        # Below the knee only interference applies: linear 1% per process.
        assert factors[3] == pytest.approx(1.03)

    def test_saturation_jump_applies_above_capacity(self):
        below = MODEL.memory_stall_factor(4, 4.9)  # 19.6 < 20
        above = MODEL.memory_stall_factor(4, 5.2)  # 20.8 > 20
        assert above > below * 1.2  # the jump dominates the step

    def test_overload_growth(self):
        f8 = MODEL.memory_stall_factor(8, 5.0)  # overload 2.0
        f4 = MODEL.memory_stall_factor(4, 5.5)  # overload 1.1
        assert f8 > f4

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            MODEL.memory_stall_factor(0, 1.0)
        with pytest.raises(ModelError):
            MODEL.memory_stall_factor(1, -1.0)

    def test_effective_bandwidth_below_demand_under_contention(self):
        effective = MODEL.effective_bandwidth_gbs(8, 5.0)
        assert effective < 5.0


class TestCachePressure:
    def test_alone_no_inflation(self):
        assert MODEL.effective_working_set(1000.0, 1) == pytest.approx(1000.0)

    def test_inflation_linear_in_neighbours(self):
        assert MODEL.effective_working_set(1000.0, 3) == pytest.approx(1100.0)

    def test_zero_pressure(self):
        model = NodeContentionModel()
        assert model.effective_working_set(1000.0, 12) == pytest.approx(1000.0)

    def test_invalid_ppn(self):
        with pytest.raises(ModelError):
            MODEL.effective_working_set(1000.0, 0)


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ModelError):
            NodeContentionModel(node_bandwidth_gbs=0.0)

    def test_bad_interference(self):
        with pytest.raises(ModelError):
            NodeContentionModel(interference_per_process=-0.1)

    def test_bad_exponent(self):
        with pytest.raises(ModelError):
            NodeContentionModel(overload_exponent=0.0)

    def test_bad_jump(self):
        with pytest.raises(ModelError):
            NodeContentionModel(saturation_jump=-0.1)
