"""Unit tests for compiler models."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.machine.compiler import COMPILERS, GFORTRAN, IFORT, XLF, CompilerModel, get_compiler


class TestPresets:
    def test_baseline_neutral(self):
        assert GFORTRAN.instruction_factor == 1.0
        assert GFORTRAN.core_cpi_factor == 1.0
        assert not GFORTRAN.vendor

    def test_vendor_flags(self):
        assert XLF.vendor and IFORT.vendor

    def test_vendor_reduce_instructions(self):
        assert XLF.instruction_factor == pytest.approx(0.64)
        assert IFORT.instruction_factor == pytest.approx(0.70)

    def test_core_cycles_preserved(self):
        # The paper's key observation: execution time stays flat because
        # core cycles per work unit are invariant under the compiler.
        for model in (XLF, IFORT):
            assert model.instruction_factor * model.core_cpi_factor == pytest.approx(1.0)

    def test_lookup(self):
        assert get_compiler("xlf") is XLF
        with pytest.raises(KeyError, match="presets"):
            get_compiler("pgf90")

    def test_registry_complete(self):
        assert set(COMPILERS) == {"gfortran", "xlf", "ifort"}


class TestValidation:
    def test_bad_instruction_factor(self):
        with pytest.raises(ModelError):
            CompilerModel(name="x", instruction_factor=0.0)

    def test_bad_cpi_factor(self):
        with pytest.raises(ModelError):
            CompilerModel(name="x", core_cpi_factor=-1.0)
