"""Unit tests for machine-model calibration from traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.machine.calibration import calibrate, stall_breakdown
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder


def synthetic_trace(
    *, core_cpi=0.7, l1_pen=10.0, l2_pen=200.0, tlb_pen=30.0, n=80, seed=0
):
    """Bursts whose cycles follow an exact known stall model."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(nranks=4, app="calib")
    path = CallPath.single("f", "a.c", 1)
    for i in range(n):
        instr = float(rng.uniform(1e6, 5e7))
        l1 = instr * float(rng.uniform(0.001, 0.05))
        l2 = l1 * float(rng.uniform(0.05, 0.6))
        tlb = instr * float(rng.uniform(1e-5, 1e-3))
        cycles = core_cpi * instr + l1_pen * l1 + l2_pen * l2 + tlb_pen * tlb
        builder.add(
            rank=i % 4, begin=float(i), duration=cycles / 1e9,
            callpath=path, counters=[instr, cycles, l1, l2, tlb],
        )
    return builder.build()


class TestCalibrate:
    def test_recovers_exact_parameters(self):
        trace = synthetic_trace()
        fit = calibrate(trace)
        assert fit.core_cpi == pytest.approx(0.7, rel=1e-6)
        assert fit.l1_penalty == pytest.approx(10.0, rel=1e-5)
        assert fit.l2_penalty == pytest.approx(200.0, rel=1e-6)
        assert fit.tlb_penalty == pytest.approx(30.0, rel=1e-4)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_nonnegative_parameters(self):
        # Even with noisy cycles the estimates stay physical.
        trace = synthetic_trace()
        noisy_counters = trace.counters_matrix.copy()
        rng = np.random.default_rng(1)
        noisy_counters[:, 1] *= rng.lognormal(0, 0.05, trace.n_bursts)
        from repro.trace.trace import Trace

        noisy = Trace(
            rank=trace.rank.copy(), begin=trace.begin.copy(),
            duration=trace.duration.copy(),
            callpath_id=trace.callpath_id.copy(),
            counters=noisy_counters, counter_names=trace.counter_names,
            callstacks=trace.callstacks, nranks=trace.nranks,
        )
        fit = calibrate(noisy)
        for value in (fit.core_cpi, fit.l1_penalty, fit.l2_penalty, fit.tlb_penalty):
            assert value >= 0.0
        assert fit.r_squared > 0.9

    def test_predict_cycles_matches_training(self):
        trace = synthetic_trace()
        fit = calibrate(trace)
        np.testing.assert_allclose(
            fit.predict_cycles(trace), trace.counter("PAPI_TOT_CYC"), rtol=1e-6
        )

    def test_generalises_to_new_bursts(self):
        fit = calibrate(synthetic_trace(seed=0))
        unseen = synthetic_trace(seed=99)
        np.testing.assert_allclose(
            fit.predict_cycles(unseen), unseen.counter("PAPI_TOT_CYC"), rtol=1e-5
        )

    def test_calibrates_simulated_app_traces(self):
        """On a perfmodel-generated trace the fit explains nearly all
        cycle variance (the generator is itself linear in the counters,
        up to jitter)."""
        from repro.apps import nasbt

        trace = nasbt.build("A", ranks=8, iterations=4).run(seed=0)
        fit = calibrate(trace)
        assert fit.r_squared > 0.95
        # Individual parameters may be unidentifiable (collinear miss
        # mixes) but the fitted model still predicts cycles well.
        np.testing.assert_allclose(
            fit.predict_cycles(trace).sum(),
            trace.counter("PAPI_TOT_CYC").sum(),
            rtol=0.05,
        )

    def test_too_few_bursts(self):
        trace = synthetic_trace(n=3)
        with pytest.raises(ModelError):
            calibrate(trace)

    def test_missing_counters(self):
        builder = TraceBuilder(nranks=1, counter_names=("PAPI_TOT_INS",))
        builder.add(rank=0, begin=0, duration=1,
                    callpath=CallPath.single("f", "a.c", 1), counters=[1.0])
        with pytest.raises(ModelError, match="lacks"):
            calibrate(builder.build())


class TestStallBreakdown:
    def test_fractions_sum_to_one(self):
        trace = synthetic_trace()
        breakdown = stall_breakdown(trace)
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-9)
        assert abs(breakdown["unexplained"]) < 1e-6

    def test_memory_bound_trace_detected(self):
        heavy = synthetic_trace(core_cpi=0.3, l2_pen=500.0)
        breakdown = stall_breakdown(heavy)
        assert breakdown["l2"] > breakdown["core"]

    def test_core_bound_trace_detected(self):
        light = synthetic_trace(core_cpi=2.0, l1_pen=1.0, l2_pen=5.0, tlb_pen=1.0)
        breakdown = stall_breakdown(light)
        assert breakdown["core"] > 0.8

    def test_explicit_calibration_reused(self):
        trace = synthetic_trace()
        fit = calibrate(trace)
        assert stall_breakdown(trace, fit) == stall_breakdown(trace)
