"""Fault-injection suite: corrupt every input surface, assert grace.

The contract under test is simple: whatever we feed the pipeline —
truncated or garbled ``.prv`` files, NaN/inf/negative hardware
counters, duplicated bursts, bit-flipped cache entries, killed pool
workers — the only exception that may ever escape a pipeline entry
point is a :class:`repro.errors.ReproError` subclass with an
actionable message, and non-strict mode must degrade gracefully
(repair or quarantine) instead of aborting.
"""
