"""Fault injection at study level: failing scenarios, poisoned hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.study import ParametricStudy
from repro.errors import ModelError, StudyError, TraceError
from repro.robust.partial import PartialResult
from repro.robust.validate import validate_study
from tests.faults.corrupters import with_nan_counters

GOOD = {"block_size": 64, "ranks": 8, "iterations": 3}
ALSO_GOOD = {"block_size": 128, "ranks": 8, "iterations": 3}
BAD = {"block_size": 0, "ranks": 8, "iterations": 3}  # ModelError at build


def study(*scenarios, **kwargs) -> ParametricStudy:
    return ParametricStudy(app="hydroc", scenarios=tuple(scenarios), **kwargs)


class TestValidateStudy:
    def test_unknown_app_rejected(self):
        bad = ParametricStudy(app="no-such-app", scenarios=({},))
        with pytest.raises(StudyError, match="unknown application"):
            validate_study(bad)

    def test_non_mapping_scenario_rejected(self):
        bad = ParametricStudy(app="hydroc", scenarios=(["block_size", 64],))
        with pytest.raises(StudyError, match="must be a mapping"):
            bad.run()

    def test_non_string_keys_rejected(self):
        bad = ParametricStudy(app="hydroc", scenarios=({64: "block_size"},))
        with pytest.raises(StudyError, match="non-string parameter name"):
            validate_study(bad)

    def test_unknown_app_fails_before_simulating(self):
        bad = ParametricStudy(app="no-such-app", scenarios=(GOOD, ALSO_GOOD))
        with pytest.raises(StudyError, match="registered applications"):
            bad.run()


class TestScenarioQuarantine:
    def test_strict_aborts_on_failing_scenario(self):
        with pytest.raises(ModelError):
            study(GOOD, BAD, ALSO_GOOD).run()

    def test_nonstrict_quarantines_failing_scenario(self):
        partial = study(GOOD, BAD, ALSO_GOOD).run(strict=False)
        assert isinstance(partial, PartialResult)
        assert not partial.ok
        assert partial.n_quarantined == 1
        assert partial.failures[0].stage == "simulate"
        assert partial.failures[0].error == "ModelError"
        result = partial.value
        assert result.result.n_frames == 2
        assert result.coverage > 0

    def test_nonstrict_clean_run_reports_ok(self):
        partial = study(GOOD, ALSO_GOOD).run(strict=False)
        assert isinstance(partial, PartialResult)
        assert partial.ok
        assert partial.exit_code == 0
        assert partial.unwrap().result.n_frames == 2

    def test_too_few_survivors_is_total_failure(self):
        with pytest.raises(StudyError, match="at least two frames"):
            study(GOOD, BAD).run(strict=False)

    def test_exit_code_partial(self):
        partial = study(GOOD, BAD, ALSO_GOOD).run(strict=False)
        assert partial.exit_code == 3
        with pytest.raises(Exception, match="quarantine"):
            partial.unwrap()


class TestPoisonedHook:
    @staticmethod
    def _poison(traces):
        return [with_nan_counters(traces[0], n=4), *traces[1:]]

    def test_strict_rejects_nan_from_hook(self):
        poisoned = study(GOOD, ALSO_GOOD, trace_hook=self._poison)
        with pytest.raises(TraceError, match="NaN or infinite"):
            poisoned.run()

    def test_nonstrict_repairs_nan_from_hook(self):
        poisoned = study(GOOD, ALSO_GOOD, trace_hook=self._poison)
        partial = poisoned.run(strict=False)
        # Repair (dropping bursts) is recovery, not quarantine.
        assert partial.ok
        for trace in partial.value.traces:
            assert np.isfinite(trace.counters_matrix).all()
