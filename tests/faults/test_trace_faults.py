"""Fault injection on in-memory traces: NaN/inf/negative counters,
duplicated bursts — and the regression that NaN never reaches DBSCAN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame
from repro.errors import TraceError
from repro.robust.validate import check_trace, validate_trace
from repro.trace.io import load_trace, save_trace
from tests.conftest import build_two_region_trace
from tests.faults.corrupters import (
    with_duplicated_bursts,
    with_nan_counters,
    with_negative_counters,
)


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=4, iterations=4)


@pytest.mark.parametrize("value", [np.nan, np.inf, -np.inf])
def test_nonfinite_counters_rejected_strict(trace, value):
    broken = with_nan_counters(trace, n=5, value=value)
    with pytest.raises(TraceError) as excinfo:
        validate_trace(broken)
    assert "NaN or infinite hardware counters" in str(excinfo.value)
    assert "--no-strict" in str(excinfo.value)  # actionable hint


def test_nonfinite_counters_filtered_nonstrict(trace, caplog):
    broken = with_nan_counters(trace, n=5)
    with caplog.at_level("WARNING"):
        repaired = validate_trace(broken, strict=False)
    assert repaired.n_bursts == trace.n_bursts - 5
    assert np.isfinite(repaired.counters_matrix).all()
    assert any("dropping" in message for message in caplog.messages)


def test_negative_counters_rejected(trace):
    broken = with_negative_counters(trace, n=2)
    with pytest.raises(TraceError, match="negative hardware counters"):
        validate_trace(broken)
    repaired = validate_trace(broken, strict=False)
    assert repaired.n_bursts == trace.n_bursts - 2


def test_duplicated_bursts_detected(trace):
    broken = with_duplicated_bursts(trace, n=4)
    with pytest.raises(TraceError, match="monotone"):
        validate_trace(broken)
    repaired = validate_trace(broken, strict=False)
    # The duplicates (and only the duplicates) are dropped.
    assert repaired.n_bursts == trace.n_bursts
    assert check_trace(repaired) == []


def test_nan_never_reaches_dbscan(trace):
    """Regression: the clustering stage must never see non-finite input.

    ``make_frame`` validates strictly, so a NaN-poisoned trace raises
    before DBSCAN; the non-strict repair path feeds DBSCAN a finite
    matrix and the resulting frame carries only finite points.
    """
    broken = with_nan_counters(trace, n=6)
    settings = FrameSettings(eps=0.05, relevance=0.9)
    with pytest.raises(TraceError):
        make_frame(broken, settings)
    repaired = validate_trace(broken, strict=False)
    frame = make_frame(repaired, settings)
    assert np.isfinite(frame.points).all()
    assert frame.n_points == repaired.n_bursts


def test_nan_poisoned_trace_roundtrips_through_files(trace, tmp_path):
    """Saving a poisoned trace and loading it back still trips validation."""
    broken = with_nan_counters(trace, n=3)
    path = save_trace(broken, tmp_path / "broken.json")
    with pytest.raises(TraceError):
        load_trace(path)
    recovered = load_trace(path, strict=False)
    assert np.isfinite(recovered.counters_matrix).all()
    assert recovered.n_bursts == trace.n_bursts - 3
