"""Fault injection on the Paraver reader: truncation, garbling, drops."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, TraceError, TraceFormatError
from repro.robust.validate import check_trace
from repro.trace.prv import load_prv, save_prv
from tests.conftest import build_two_region_trace
from tests.faults.corrupters import (
    drop_random_fields,
    garble_lines,
    only_repro_errors,
    truncate_file,
)


@pytest.fixture
def prv_path(tmp_path):
    trace = build_two_region_trace(nranks=3, iterations=3)
    return save_prv(trace, tmp_path / "clean.prv")


@pytest.mark.parametrize("keep", [0.15, 0.4, 0.65, 0.9, 0.98])
def test_truncated_prv_never_leaks_raw_exceptions(prv_path, keep):
    truncate_file(prv_path, keep)
    for strict in (True, False):
        outcome, value = only_repro_errors(load_prv, prv_path, strict=strict)
        if outcome == "ok":
            # Whatever survived must satisfy every structural invariant.
            assert check_trace(value) == []


@pytest.mark.parametrize("seed", range(6))
def test_garbled_prv_lines(prv_path, seed):
    garble_lines(prv_path, seed=seed, n_lines=4)
    outcome, value = only_repro_errors(load_prv, prv_path, strict=True)
    # Strict mode may survive only if the garbling hit ignorable spots.
    if outcome == "ok":
        assert check_trace(value) == []
    # Non-strict mode drops the garbled lines and keeps going.
    outcome, value = only_repro_errors(load_prv, prv_path, strict=False)
    if outcome == "ok":
        assert check_trace(value) == []


@pytest.mark.parametrize("seed", range(4))
def test_dropped_fields(prv_path, seed):
    drop_random_fields(prv_path, seed=seed, n_lines=3)
    with pytest.raises((TraceFormatError, TraceError)):
        # A clipped record is either an unparseable line or a dangling
        # event list: strict mode must refuse with a format error.
        loaded = load_prv(prv_path)
        # Reaching here means the clipped fields were all redundant
        # (e.g. an event value the reader ignores); force the skip.
        pytest.skip(f"drop seed {seed} only hit ignorable fields: {loaded}")
    outcome, value = only_repro_errors(load_prv, prv_path, strict=False)
    if outcome == "ok":
        assert check_trace(value) == []


def test_empty_file(tmp_path):
    prv = tmp_path / "empty.prv"
    prv.write_text("")
    prv.with_suffix(".pcf").write_text("")
    prv.with_suffix(".row").write_text("")
    for strict in (True, False):
        outcome, value = only_repro_errors(load_prv, prv, strict=strict)
        assert outcome == "error"
        assert isinstance(value, ReproError)


def test_binary_junk(tmp_path):
    prv = tmp_path / "junk.prv"
    prv.write_bytes(bytes(range(256)) * 16)
    prv.with_suffix(".pcf").write_bytes(b"\x00\xff" * 64)
    prv.with_suffix(".row").write_text("")
    for strict in (True, False):
        outcome, _ = only_repro_errors(load_prv, prv, strict=strict)
        assert outcome == "error"


def test_nonstrict_recovers_majority_of_truncated_trace(prv_path):
    original = load_prv(prv_path)
    truncate_file(prv_path, 0.95)
    recovered = load_prv(prv_path, strict=False)
    # Only the clipped tail may be lost; the head must survive intact.
    assert recovered.n_bursts >= original.n_bursts * 0.5
    assert check_trace(recovered) == []
