"""Job-server fault injection: killed workers, timeouts, crashed servers.

The service contract under fault:

* a SIGKILLed job worker produces a ``failed`` record with error type
  ``WorkerDeath`` — never a hung job — and the dispatcher survives to
  run the next job;
* a job overrunning its timeout is killed and marked ``failed`` with
  ``TaskTimeout``;
* a server that dies mid-queue re-queues every interrupted job exactly
  once on restart (one ``requeued`` journal event each), while terminal
  jobs stay terminal and queryable.
"""

from __future__ import annotations

import json
import os
import signal
import time

from repro.serve import JobClient, JobServer, TenantPaths

FAST_SPEC = {
    "kind": "track",
    "app": "hydroc",
    "scenarios": [
        {"block_size": 64, "ranks": 8, "iterations": 3},
        {"block_size": 64, "ranks": 8, "iterations": 4},
    ],
    "seeds": [1, 2],
}


def wait_for_pidfile(paths: TenantPaths, job_id: str, timeout: float = 60.0) -> int:
    """Poll until the job's worker writes its pidfile; return the pid."""
    deadline = time.monotonic() + timeout
    pid_path = paths.pid_path(job_id)
    while time.monotonic() < deadline:
        try:
            return int(pid_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            time.sleep(0.05)
    raise AssertionError(f"worker for job {job_id} never wrote {pid_path}")


def test_sigkilled_worker_fails_the_job_not_the_server(live_server, tmp_path):
    server = live_server(
        JobServer, tmp_path / "srv", workers=1, job_timeout=600.0
    )
    client = JobClient(server.url)
    # hold_s pins the worker alive long enough to target it.
    held = client.submit("ops", dict(FAST_SPEC, hold_s=30.0))["job_id"]
    pid = wait_for_pidfile(TenantPaths(server.root, "ops"), held)
    os.kill(pid, signal.SIGKILL)

    final = client.wait(held, timeout=60.0)
    assert final["state"] == "failed"
    assert final["error_type"] == "WorkerDeath"
    # Exit code -9 = killed by SIGKILL, preserved in the message.
    assert "-9" in final["error"]

    # The dispatcher thread survived: the next job runs to completion.
    survivor = client.submit("ops", FAST_SPEC)["job_id"]
    assert client.wait(survivor, timeout=240.0)["state"] == "done"


def test_job_timeout_kills_the_worker_and_fails_the_job(live_server, tmp_path):
    server = live_server(
        JobServer, tmp_path / "srv", workers=1, job_timeout=2.0
    )
    client = JobClient(server.url)
    job_id = client.submit("ops", dict(FAST_SPEC, hold_s=30.0))["job_id"]
    final = client.wait(job_id, timeout=60.0)
    assert final["state"] == "failed"
    assert final["error_type"] == "TaskTimeout"
    assert "2" in final["error"]
    # The worker really is gone, not orphaned behind the failed record.
    pid_path = TenantPaths(server.root, "ops").pid_path(job_id)
    deadline = time.monotonic() + 10.0
    while pid_path.exists() and time.monotonic() < deadline:
        time.sleep(0.05)  # the killed worker cannot clean up; the file
    # may linger, but the process must be dead:
    try:
        pid = int(pid_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        pid = None
    if pid is not None:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            pass  # dead, as required
        else:
            raise AssertionError(f"worker {pid} still alive after timeout")


def test_restart_requeues_interrupted_jobs_exactly_once(live_server, tmp_path):
    root = tmp_path / "srv"
    first = live_server(JobServer, root, workers=1)
    first.runner.pause()
    client = JobClient(first.url)

    waiting = [client.submit("ops", FAST_SPEC)["job_id"] for _ in range(2)]
    doomed = client.submit("ops", FAST_SPEC)["job_id"]
    cancelled = client.submit("other", FAST_SPEC)["job_id"]
    client.cancel(cancelled)
    # Simulate a crash mid-execution: claim one job (journals `started`)
    # and kill the server before it can finish.
    claimed = first.queue.claim_next(timeout=5.0)
    assert claimed is not None and claimed.job_id in waiting + [doomed]
    first.close()

    second = live_server(JobServer, root, workers=2)
    requeued_ids = {r.job_id for r in second.requeued}
    assert requeued_ids == set(waiting) | {doomed}

    # Exactly one `requeued` journal event per interrupted job.
    events = list(second.journal.iter_events())
    requeue_counts: dict[str, int] = {}
    for event in events:
        if event.get("event") == "requeued":
            job = event["job_id"]
            requeue_counts[job] = requeue_counts.get(job, 0) + 1
    assert requeue_counts == {job_id: 1 for job_id in requeued_ids}

    # Terminal jobs stayed terminal and queryable across the restart.
    client2 = JobClient(second.url)
    assert client2.status(cancelled)["state"] == "cancelled"

    # The re-queued jobs drain to done on the new server.
    for job_id in requeued_ids:
        final = client2.wait(job_id, timeout=300.0)
        assert final["state"] == "done", final
        payload = json.loads(client2.result(job_id))
        assert payload["schema"] == "repro.serve.result/1"
    # The interrupted job's history is honest: its pre-crash claim
    # counts, so it finished on its second attempt.
    assert client2.status(claimed.job_id)["attempts"] == 2
    for job_id in requeued_ids - {claimed.job_id}:
        assert client2.status(job_id)["attempts"] == 1
