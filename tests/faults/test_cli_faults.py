"""CLI fault injection: exit codes 2 (total) vs 3 (partial) vs 0."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.robust.partial import EXIT_PARTIAL, EXIT_TOTAL
from repro.trace.io import save_trace
from tests.conftest import build_two_region_trace
from tests.faults.corrupters import truncate_file


@pytest.fixture
def good_traces(tmp_path):
    paths = []
    for run in range(2):
        trace = build_two_region_trace(scenario={"run": run}, seed=run + 1)
        paths.append(str(save_trace(trace, tmp_path / f"good{run}.json")))
    return paths


@pytest.fixture
def corrupt_prv(tmp_path):
    path = tmp_path / "corrupt.prv"
    path.write_text("not a paraver trace\n1:2:3\n")
    return str(path)  # no .pcf next to it: unloadable in any mode


def test_strict_corrupt_trace_exits_total(good_traces, corrupt_prv, capsys):
    code = main(["track", *good_traces, corrupt_prv])
    assert code == EXIT_TOTAL
    assert "error:" in capsys.readouterr().err


def test_nonstrict_corrupt_trace_exits_partial(good_traces, corrupt_prv, capsys):
    code = main(["track", *good_traces, corrupt_prv, "--no-strict"])
    captured = capsys.readouterr()
    assert code == EXIT_PARTIAL
    assert "quarantine: 1 item failed" in captured.err
    assert "corrupt.prv" in captured.err
    assert "tracked regions" in captured.out  # the survivors were tracked


def test_nonstrict_clean_run_exits_zero(good_traces, capsys):
    code = main(["track", *good_traces, "--no-strict"])
    assert code == 0
    assert "quarantine" not in capsys.readouterr().err


def test_nonstrict_everything_corrupt_exits_total(corrupt_prv, tmp_path, capsys):
    other = tmp_path / "other.prv"
    other.write_text("also garbage\n")
    code = main(["track", corrupt_prv, str(other), "--no-strict"])
    assert code == EXIT_TOTAL
    assert "error:" in capsys.readouterr().err


def test_strict_repairable_prv_exits_total(good_traces, tmp_path, capsys):
    """A truncated but partially readable .prv still fails strict mode."""
    trace = build_two_region_trace(scenario={"run": 9}, seed=9)
    from repro.trace.prv import save_prv

    prv = save_prv(trace, tmp_path / "t.prv")
    truncate_file(prv, 0.6)
    code = main(["track", *good_traces, str(prv)])
    assert code == EXIT_TOTAL


def test_study_unknown_name_exits_total(capsys):
    code = main(["study", "no-such-case"])
    assert code == EXIT_TOTAL
    assert "unknown case study" in capsys.readouterr().err
