"""Killed pool workers: the executor must fall back, not crash."""

from __future__ import annotations

import os

from repro import obs
from repro.parallel.executor import pmap
from tests.faults.corrupters import kill_if_worker


def test_killed_worker_falls_back_to_serial():
    """SIGKILLing a worker breaks the pool; the batch reruns serially."""
    parent = os.getpid()
    tasks = [(parent, value) for value in range(6)]
    results = pmap(kill_if_worker, tasks, jobs=2, label="faults.kill")
    assert results == [value * 2 for value in range(6)]


def test_killed_worker_fallback_is_counted():
    obs.enable()
    obs.reset()
    try:
        parent = os.getpid()
        pmap(kill_if_worker, [(parent, 1), (parent, 2)], jobs=2)
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in obs.metrics_snapshot()["counters"]
        }
        fallbacks = sum(
            value for (name, _), value in counters.items()
            if name == "parallel.fallbacks_total"
        )
        assert fallbacks >= 1
    finally:
        obs.reset()
        obs.disable()


def test_killed_worker_inside_frame_stage(toy_trace_pair):
    """End to end: a worker dying mid-make_frames still yields frames.

    The pool failure path re-runs the whole batch serially, so the
    result must equal the plain serial result.
    """
    from repro.clustering.frames import make_frames

    first, second = toy_trace_pair
    serial = make_frames([first, second])
    parallel = make_frames([first, second], jobs=2)
    for frame_a, frame_b in zip(serial, parallel):
        assert (frame_a.labels == frame_b.labels).all()
