"""Killed pool workers: the executor must fall back, not crash."""

from __future__ import annotations

import os

from repro import obs
from repro.parallel.executor import pmap
from tests.faults.corrupters import kill_if_worker, record_then_maybe_kill


def test_killed_worker_falls_back_to_serial():
    """SIGKILLing a worker breaks the pool; the batch reruns serially."""
    parent = os.getpid()
    tasks = [(parent, value) for value in range(6)]
    results = pmap(kill_if_worker, tasks, jobs=2, label="faults.kill")
    assert results == [value * 2 for value in range(6)]


def test_killed_worker_fallback_is_counted():
    obs.enable()
    obs.reset()
    try:
        parent = os.getpid()
        pmap(kill_if_worker, [(parent, 1), (parent, 2)], jobs=2)
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in obs.metrics_snapshot()["counters"]
        }
        fallbacks = sum(
            value for (name, _), value in counters.items()
            if name == "parallel.fallbacks_total"
        )
        assert fallbacks >= 1
    finally:
        obs.reset()
        obs.disable()


def test_fallback_reruns_only_unfinished_tasks(tmp_path):
    """Completed tasks keep their pool results across a pool failure.

    Five quick tasks finish while the bomb (submitted last) sleeps;
    when it kills its worker the pool breaks, and the fallback must
    re-execute *only* the bomb — one marker per finished task, and
    ``parallel.fallback_tasks_total`` counting exactly the re-run.
    """
    obs.enable()
    obs.reset()
    try:
        parent = os.getpid()
        tasks = [
            (parent, value, value == 5, str(tmp_path)) for value in range(6)
        ]
        results = pmap(
            record_then_maybe_kill, tasks, jobs=2, label="faults.partial"
        )
        assert results == [value * 2 for value in range(6)]
        executions = {value: 0 for value in range(6)}
        for marker in tmp_path.iterdir():
            executions[int(marker.name.split("-")[0])] += 1
        # The quick tasks ran exactly once (in the pool); the bomb ran
        # twice — the killed worker attempt plus the in-parent re-run.
        assert executions == {0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 2}
        counters = {
            c["name"]: c["value"]
            for c in obs.metrics_snapshot()["counters"]
        }
        assert counters.get("parallel.fallback_tasks_total") == 1
        assert counters.get("parallel.fallbacks_total") == 1
    finally:
        obs.reset()
        obs.disable()


def test_killed_worker_inside_frame_stage(toy_trace_pair):
    """End to end: a worker dying mid-make_frames still yields frames.

    The pool failure path re-runs the whole batch serially, so the
    result must equal the plain serial result.
    """
    from repro.clustering.frames import make_frames

    first, second = toy_trace_pair
    serial = make_frames([first, second])
    parallel = make_frames([first, second], jobs=2)
    for frame_a, frame_b in zip(serial, parallel):
        assert (frame_a.labels == frame_b.labels).all()
