"""Cache fault injection: bit flips, truncation, stale formats.

The cache contract under fault: a damaged entry is *discarded and
recomputed* — never trusted, never crashed on — and the recomputed
result is bit-identical to an uncached run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.clustering.frames import FrameSettings, make_frame, make_frames
from repro.parallel.cache import PipelineCache, frame_key, trace_key
from tests.conftest import build_two_region_trace
from tests.faults.corrupters import flip_bit, truncate_file
from tests.parallel import assert_frames_equal


@pytest.fixture
def cache(tmp_path):
    return PipelineCache(tmp_path / "cache")


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=4, iterations=3)


@pytest.fixture
def observed():
    obs.enable()
    obs.reset()
    yield
    obs.reset()
    obs.disable()


def counter_value(name: str, **labels) -> int:
    for counter in obs.metrics_snapshot()["counters"]:
        if counter["name"] == name and counter["labels"] == labels:
            return counter["value"]
    return 0


class TestBitFlips:
    @pytest.mark.parametrize("seed", range(8))
    def test_flipped_trace_entry_discarded(self, cache, trace, seed):
        key = trace_key("toy", {"case": "flip"}, 0)
        path = cache.put_trace(key, trace)
        flip_bit(path, seed=seed)
        # Either the flip broke the JSON (unreadable) or it survived
        # parsing and the payload digest catches it: always a miss.
        assert cache.get_trace(key) is None
        assert not path.exists()
        cache.put_trace(key, trace)
        assert cache.get_trace(key) == trace

    def test_payload_mutation_caught_by_digest(self, cache, trace):
        """A well-formed document with altered payload must not verify."""
        key = trace_key("toy", {"case": "digest"}, 0)
        path = cache.put_trace(key, trace)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["columns"]["duration"][0] += 1.0
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get_trace(key) is None

    def test_flipped_labels_entry_discarded(self, cache, trace):
        settings = FrameSettings()
        frame = make_frame(trace, settings)
        key = frame_key(trace, settings)
        path = cache.put_labels(key, frame.labels)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["labels"][0] += 1  # silent off-by-one flip
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get_labels(key) is None

    def test_negative_labels_payload_discarded(self, cache, trace):
        key = frame_key(trace, FrameSettings())
        cache.put(key, {"labels": [-2, 1, 0]})
        assert cache.get_labels(key) is None


class TestTruncation:
    def test_truncated_entry_discarded(self, cache, trace):
        key = trace_key("toy", {"case": "trunc"}, 0)
        path = cache.put_trace(key, trace)
        truncate_file(path, 0.5)
        assert cache.get_trace(key) is None
        assert not path.exists()

    def test_empty_entry_discarded(self, cache, trace):
        key = trace_key("toy", {"case": "empty"}, 0)
        path = cache.put_trace(key, trace)
        path.write_text("", encoding="utf-8")
        assert cache.get_trace(key) is None


class TestFormatDrift:
    def test_v1_entry_without_digest_invalidated(self, cache, trace):
        """Entries from before the digest field read as corrupt, not hits."""
        from repro.trace.io import trace_to_json

        key = trace_key("toy", {"case": "v1"}, 0)
        path = cache.put_trace(key, trace)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["format"] = 1
        document.pop("digest")
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get_trace(key) is None
        assert json.dumps(trace_to_json(trace))  # sanity: payload serializable


class TestMetricsAndIdentity:
    def test_corruption_counted(self, cache, trace, observed):
        key = trace_key("toy", {"case": "metrics"}, 0)
        path = cache.put_trace(key, trace)
        flip_bit(path, seed=1)
        assert cache.get_trace(key) is None
        assert counter_value("cache.corrupt_total", kind="trace") >= 1
        assert counter_value("cache.misses_total", kind="trace") >= 1
        cache.put_trace(key, trace)
        assert cache.get_trace(key) is not None
        assert counter_value("cache.hits_total", kind="trace") == 1

    def test_recompute_after_corruption_is_bit_identical(self, cache, tmp_path):
        traces = [
            build_two_region_trace(scenario={"run": 0}, seed=1),
            build_two_region_trace(scenario={"run": 1}, seed=2),
        ]
        settings = FrameSettings()
        uncached = make_frames(traces, settings)
        primed = make_frames(traces, settings, cache=cache)
        for frame_a, frame_b in zip(uncached, primed):
            assert_frames_equal(frame_a, frame_b)
        # Corrupt every cache entry on disk, then run through the cache
        # again: each entry is discarded, recomputed and re-stored.
        entries = list(cache.root.glob("*/*.json"))
        assert entries
        for index, path in enumerate(entries):
            flip_bit(path, seed=index)
        recovered = make_frames(traces, settings, cache=cache)
        for frame_a, frame_b in zip(uncached, recovered):
            assert_frames_equal(frame_a, frame_b)
        # The re-stored entries serve clean hits afterwards.
        hits = make_frames(traces, settings, cache=cache)
        for frame_a, frame_b in zip(uncached, hits):
            assert_frames_equal(frame_a, frame_b)
