"""Corruption helpers shared by the fault-injection tests.

Two families:

- **file corrupters** mutate a file in place (truncation, garbled
  lines, single-bit flips) — the on-disk faults a real trace archive
  or cache directory can suffer;
- **trace mutators** rebuild a :class:`~repro.trace.trace.Trace` with
  one invariant deliberately broken (NaN counters, duplicated
  bursts...) — the in-memory faults a buggy translator or collector
  can produce.

Everything here is module-level so the pool fault tests can pickle it.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.trace.trace import Trace

__all__ = [
    "drop_random_fields",
    "flip_bit",
    "garble_lines",
    "kill_if_worker",
    "only_repro_errors",
    "record_then_maybe_kill",
    "rebuild_trace",
    "truncate_file",
    "with_duplicated_bursts",
    "with_nan_counters",
    "with_negative_counters",
]


# -- verdict helper -----------------------------------------------------
def only_repro_errors(fn, *args, **kwargs):
    """Run *fn*; success and :class:`ReproError` are the only outcomes.

    Returns ``("ok", result)`` or ``("error", exception)``.  Any other
    exception type is the bug this suite exists to catch and fails the
    test with a clear message.
    """
    try:
        return "ok", fn(*args, **kwargs)
    except ReproError as exc:
        assert str(exc), "ReproError escaped with an empty message"
        return "error", exc
    except Exception as exc:  # noqa: BLE001 - the whole point
        raise AssertionError(
            f"non-ReproError escaped the pipeline: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


# -- file corrupters ----------------------------------------------------
def truncate_file(path: str | Path, keep_fraction: float) -> Path:
    """Chop the tail off *path* (mid-line, like a dropped transfer)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def garble_lines(path: str | Path, *, seed: int = 0, n_lines: int = 3) -> Path:
    """Overwrite random spans of random non-header lines with junk."""
    path = Path(path)
    rng = np.random.default_rng(seed)
    lines = path.read_text().splitlines()
    candidates = [i for i, line in enumerate(lines) if i > 0 and line.strip()]
    for index in rng.choice(candidates, size=min(n_lines, len(candidates)),
                            replace=False):
        line = lines[index]
        start = int(rng.integers(0, max(len(line) - 1, 1)))
        lines[index] = line[:start] + "@#garbage#@" + line[start + 1 :]
    path.write_text("\n".join(lines) + "\n")
    return path


def drop_random_fields(path: str | Path, *, seed: int = 0, n_lines: int = 3) -> Path:
    """Delete the trailing colon-field of random record lines."""
    path = Path(path)
    rng = np.random.default_rng(seed)
    lines = path.read_text().splitlines()
    candidates = [i for i, line in enumerate(lines) if i > 0 and ":" in line]
    for index in rng.choice(candidates, size=min(n_lines, len(candidates)),
                            replace=False):
        lines[index] = lines[index].rsplit(":", 1)[0]
    path.write_text("\n".join(lines) + "\n")
    return path


def flip_bit(path: str | Path, *, seed: int = 0) -> Path:
    """Flip one pseudo-random bit of *path* (cosmic-ray simulation)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    rng = np.random.default_rng(seed)
    offset = int(rng.integers(0, len(data)))
    data[offset] ^= 1 << int(rng.integers(0, 8))
    path.write_bytes(bytes(data))
    return path


# -- trace mutators -----------------------------------------------------
def rebuild_trace(trace: Trace, **overrides) -> Trace:
    """Reconstruct *trace* with selected columns replaced."""
    kwargs = dict(
        rank=trace.rank,
        begin=trace.begin,
        duration=trace.duration,
        callpath_id=trace.callpath_id,
        counters=trace.counters_matrix,
        counter_names=trace.counter_names,
        callstacks=trace.callstacks,
        nranks=trace.nranks,
        app=trace.app,
        scenario=trace.scenario,
        clock_hz=trace.clock_hz,
    )
    kwargs.update(overrides)
    return Trace(**kwargs)


def with_nan_counters(trace: Trace, *, n: int = 3, value: float = np.nan) -> Trace:
    """Poison the first counter column of the first *n* bursts."""
    counters = np.array(trace.counters_matrix)
    counters[:n, 0] = value
    return rebuild_trace(trace, counters=counters)


def with_negative_counters(trace: Trace, *, n: int = 3) -> Trace:
    """Make the first counter column of the first *n* bursts negative."""
    counters = np.array(trace.counters_matrix)
    counters[:n, 0] = -np.abs(counters[:n, 0]) - 1.0
    return rebuild_trace(trace, counters=counters)


def with_duplicated_bursts(trace: Trace, *, n: int = 4) -> Trace:
    """Append exact copies of the first *n* bursts (overlap corruption)."""
    def dup(column):
        return np.concatenate([column, column[:n]])

    return rebuild_trace(
        trace,
        rank=dup(trace.rank),
        begin=dup(trace.begin),
        duration=dup(trace.duration),
        callpath_id=dup(trace.callpath_id),
        counters=np.concatenate(
            [trace.counters_matrix, trace.counters_matrix[:n]]
        ),
    )


# -- pool fault tasks ---------------------------------------------------
def record_then_maybe_kill(task: tuple[int, int, bool, str]) -> int:
    """Record an execution marker, then die iff this is the bomb task.

    Every execution (pool worker *or* in-parent fallback) drops one
    marker file into *log_dir*, so a test can count exactly how many
    times each task ran.  The bomb sleeps first, giving the other
    workers time to finish their tasks, then SIGKILLs its worker — the
    partial-fallback test asserts the finished tasks keep their pool
    results instead of being re-executed.
    """
    import time

    parent_pid, value, bomb, log_dir = task
    marker = Path(log_dir) / f"{value}-{os.getpid()}-{time.monotonic_ns()}"
    marker.touch()
    if bomb and os.getpid() != parent_pid:
        time.sleep(1.0)
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def kill_if_worker(task: tuple[int, int]) -> int:
    """Kill the process unless it is the parent: a dying pool worker.

    With process pools the SIGKILL lands on the worker and the executor
    must fall back to a serial (in-parent) rerun; the serial rerun sees
    ``os.getpid() == parent_pid`` and computes the real value.
    """
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2
