"""Degenerate clustering inputs: strict raises, non-strict quarantines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import (
    FrameSettings,
    make_frame,
    make_frames,
    make_frames_partial,
)
from repro.errors import ClusteringError
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder
from tests.conftest import build_two_region_trace
from tests.faults.corrupters import only_repro_errors

PATH = CallPath.single("main", "main.c", 1)


def single_burst_trace():
    builder = TraceBuilder(nranks=1, app="degenerate")
    builder.add(rank=0, begin=0.0, duration=1.0, callpath=PATH,
                counters=[1e6, 2e6, 1e4, 1e3, 100.0])
    return builder.build()


def identical_points_trace(n: int = 20):
    builder = TraceBuilder(nranks=2, app="flat")
    for i in range(n):
        builder.add(rank=i % 2, begin=float(i // 2), duration=1.0,
                    callpath=PATH, counters=[1e6, 2e6, 1e4, 1e3, 100.0])
    return builder.build()


def test_single_burst_raises_clustering_error():
    with pytest.raises(ClusteringError, match="at least two points"):
        make_frame(single_burst_trace())


def test_all_identical_points_raise_clustering_error():
    with pytest.raises(ClusteringError, match="no structure to cluster"):
        make_frame(identical_points_trace())


def test_eps_zero_rejected_at_settings():
    with pytest.raises(ClusteringError, match="eps must be > 0"):
        FrameSettings(eps=0.0)
    with pytest.raises(ClusteringError, match="eps must be > 0"):
        FrameSettings(eps=-0.5)


def test_min_duration_removing_everything():
    trace = build_two_region_trace(iterations=2)
    settings = FrameSettings(min_duration=1e6)  # removes every burst
    with pytest.raises(ClusteringError, match="min_duration"):
        make_frame(trace, settings)


def test_degenerate_inputs_never_leak_raw_exceptions():
    settings = FrameSettings(eps=0.05)
    for trace in (single_burst_trace(), identical_points_trace()):
        outcome, value = only_repro_errors(make_frame, trace, settings)
        assert outcome == "error"
        assert isinstance(value, ClusteringError)


def test_mid_study_degenerate_trace_quarantined():
    """Non-strict multi-trace frame construction drops only the bad one."""
    good_a = build_two_region_trace(scenario={"run": 0}, seed=1)
    good_b = build_two_region_trace(scenario={"run": 1}, seed=2)
    bad = single_burst_trace()
    frames, failures = make_frames_partial([good_a, bad, good_b])
    assert [frame is not None for frame in frames] == [True, False, True]
    assert len(failures) == 1
    assert failures[0].stage == "frame"
    assert failures[0].error == "ClusteringError"
    assert "degenerate" in failures[0].item


def test_mid_study_degenerate_trace_aborts_strict():
    good = build_two_region_trace(seed=1)
    with pytest.raises(ClusteringError):
        make_frames([good, single_burst_trace()])


def test_min_duration_removes_all_mid_study_quarantined():
    """The ISSUE scenario: min_duration kills one scenario of a sweep."""
    # Scale one trace's durations down so the shared filter removes it.
    short = build_two_region_trace(
        scenario={"run": "short"}, ipc_a=1000.0, ipc_b=500.0, seed=3
    )
    long_a = build_two_region_trace(scenario={"run": 0}, seed=1)
    long_b = build_two_region_trace(scenario={"run": 1}, seed=2)
    threshold = float(np.max(short.duration)) * 1.01
    assert threshold < float(np.min(long_a.duration))
    settings = FrameSettings(min_duration=threshold)
    frames, failures = make_frames_partial([long_a, short, long_b], settings)
    assert [frame is not None for frame in frames] == [True, False, True]
    assert len(failures) == 1
    assert "min_duration" in failures[0].message
