"""Tests for n-dimensional clustering/tracking spaces.

The paper: "While the experiments described hereafter define these two
dimensions [IPC x instructions], the whole process can be likewise
applied to any arbitrary number of dimensions."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame, make_frames
from repro.errors import ClusteringError
from repro.tracking.scaling import normalize_frames
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace

SETTINGS_3D = FrameSettings(extra_metrics=("l1_mpki",))


class TestSettings:
    def test_metric_names(self):
        assert SETTINGS_3D.metric_names == ("ipc", "instructions", "l1_mpki")
        assert SETTINGS_3D.n_dimensions == 3

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ClusteringError, match="distinct"):
            FrameSettings(extra_metrics=("ipc",))

    def test_default_is_2d(self):
        assert FrameSettings().n_dimensions == 2


class TestFrames3D:
    def test_points_shape(self, toy_trace):
        frame = make_frame(toy_trace, SETTINGS_3D)
        assert frame.points.shape == (toy_trace.n_bursts, 3)
        assert frame.plot_points.shape == (toy_trace.n_bursts, 2)

    def test_extra_column_is_metric(self, toy_trace):
        frame = make_frame(toy_trace, SETTINGS_3D)
        np.testing.assert_allclose(frame.points[:, 2], toy_trace.metric("l1_mpki"))

    def test_clusters_found_in_3d(self, toy_trace):
        frame = make_frame(toy_trace, SETTINGS_3D)
        assert frame.n_clusters == 2

    def test_extra_dimension_separates_hidden_modes(self):
        """Two behaviours identical in (IPC, instructions) but different
        in L1 MPKI are only separable with the third dimension."""
        from repro.trace.callstack import CallPath
        from repro.trace.trace import TraceBuilder

        rng = np.random.default_rng(0)
        builder = TraceBuilder(nranks=16, app="hidden")
        path = CallPath.single("f", "a.c", 1)
        for it in range(20):
            for rank in range(16):
                instr = 1e6 * (1 + 0.01 * rng.standard_normal())
                cycles = instr / 1.0
                # Same IPC and instructions; MPKI differs by rank group.
                l1 = instr * (0.002 if rank < 8 else 0.03)
                builder.add(rank=rank, begin=float(it), duration=cycles / 1e9,
                            callpath=path,
                            counters=[instr, cycles, l1, l1 / 10, 1.0])
        trace = builder.build()
        flat = make_frame(trace)
        rich = make_frame(trace, SETTINGS_3D)
        assert flat.n_clusters == 1
        assert rich.n_clusters == 2


class TestTracking3D:
    def make_pair(self):
        traces = [
            build_two_region_trace(seed=0, scenario={"run": 0}),
            build_two_region_trace(seed=1, scenario={"run": 1}, ipc_b=0.45),
        ]
        return make_frames(traces, SETTINGS_3D)

    def test_normalized_space_is_3d(self):
        frames = self.make_pair()
        space = normalize_frames(frames)
        assert space.axis_names == ("ipc", "instructions", "l1_mpki")
        for points, weights in zip(space.points, space.weights):
            assert points.shape[1] == 3
            assert len(weights) == 3

    def test_tracking_works_in_3d(self):
        frames = self.make_pair()
        result = Tracker(frames).run()
        assert result.coverage == 100
        assert len(result.tracked_regions) == 2

    def test_mixed_dimensionality_rejected(self):
        frames = [
            make_frame(build_two_region_trace(seed=0)),
            make_frame(build_two_region_trace(seed=1), SETTINGS_3D),
        ]
        with pytest.raises(Exception, match="axis"):
            normalize_frames(frames)

    def test_rendering_uses_projection(self, tmp_path):
        from repro.tracking.relabel import relabel_frames
        from repro.viz.frames_plot import render_frame_svg, render_sequence_svg

        frames = self.make_pair()
        result = Tracker(frames).run()
        render_frame_svg(frames[0], tmp_path / "f.svg")
        render_sequence_svg(relabel_frames(result), tmp_path / "seq.svg")
