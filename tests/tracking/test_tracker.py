"""Unit tests for the frame-sequence tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frame, make_frames
from repro.errors import TrackingError
from repro.tracking.tracker import TrackedRegion, Tracker, TrackerConfig
from tests.conftest import build_two_region_trace


def traces_for(n_frames: int):
    return [
        build_two_region_trace(
            seed=i, scenario={"run": i}, ipc_a=1.0 + 0.02 * i, ipc_b=0.5 - 0.01 * i
        )
        for i in range(n_frames)
    ]


class TestTrackerConfig:
    def test_defaults_match_paper(self):
        config = TrackerConfig()
        assert config.outlier_threshold == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(TrackingError):
            TrackerConfig(outlier_threshold=1.5)
        with pytest.raises(TrackingError):
            TrackerConfig(spmd_threshold=-0.1)
        with pytest.raises(TrackingError):
            TrackerConfig(sequence_threshold=2.0)
        with pytest.raises(TrackingError):
            TrackerConfig(max_align_ranks=0)


class TestTracker:
    def test_needs_two_frames(self):
        frame = make_frame(build_two_region_trace())
        with pytest.raises(TrackingError):
            Tracker([frame])

    def test_two_frames(self):
        frames = make_frames(traces_for(2))
        result = Tracker(frames).run()
        assert len(result.tracked_regions) == 2
        assert result.coverage == 100
        assert result.n_frames == 2

    def test_many_frames_chain(self):
        frames = make_frames(traces_for(6))
        result = Tracker(frames).run()
        assert len(result.tracked_regions) == 2
        assert all(region.spans_all for region in result.tracked_regions)
        assert len(result.pair_relations) == 5

    def test_region_ids_duration_ranked(self):
        frames = make_frames(traces_for(3))
        result = Tracker(frames).run()
        durations = [region.total_duration for region in result.regions]
        assert durations == sorted(durations, reverse=True)
        assert [region.region_id for region in result.regions] == [1, 2]

    def test_region_lookup(self):
        frames = make_frames(traces_for(2))
        result = Tracker(frames).run()
        assert result.region(1).region_id == 1
        with pytest.raises(KeyError):
            result.region(99)

    def test_region_of_cluster(self):
        frames = make_frames(traces_for(2))
        result = Tracker(frames).run()
        region = result.region_of_cluster(0, 1)
        assert region is not None
        assert 1 in region.clusters_in(0)
        assert result.region_of_cluster(0, 99) is None

    def test_summary_row(self):
        frames = make_frames(traces_for(2))
        result = Tracker(frames).run()
        row = result.summary_row()
        assert row == {
            "input_images": 2,
            "tracked_regions": 2,
            "coverage_pct": 100,
        }

    def test_deterministic(self):
        frames = make_frames(traces_for(3))
        r1 = Tracker(frames).run()
        r2 = Tracker(frames).run()
        assert [reg.members for reg in r1.regions] == [reg.members for reg in r2.regions]


class TestTrackedRegion:
    def test_spans_all(self):
        region = TrackedRegion(
            region_id=1,
            members=(frozenset({1}), frozenset({2})),
            total_duration=1.0,
        )
        assert region.spans_all
        assert region.n_frames_present == 2

    def test_partial(self):
        region = TrackedRegion(
            region_id=1,
            members=(frozenset({1}), frozenset()),
            total_duration=1.0,
        )
        assert not region.spans_all
        assert region.n_frames_present == 1

    def test_repr(self):
        region = TrackedRegion(
            region_id=3,
            members=(frozenset({1, 2}), frozenset()),
            total_duration=1.0,
        )
        assert "{1,2} -> -" in repr(region)
