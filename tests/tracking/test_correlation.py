"""Unit tests for correlation matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.tracking.correlation import CorrelationMatrix


@pytest.fixture
def matrix():
    return CorrelationMatrix(
        row_ids=(1, 2),
        col_ids=(1, 2, 3),
        values=np.asarray([[0.9, 0.1, 0.0], [0.0, 0.04, 0.96]]),
    )


class TestCorrelationMatrix:
    def test_get(self, matrix):
        assert matrix.get(1, 1) == pytest.approx(0.9)
        assert matrix.get(2, 3) == pytest.approx(0.96)

    def test_get_unknown_pair(self, matrix):
        with pytest.raises(KeyError):
            matrix.get(9, 1)

    def test_drop_below(self, matrix):
        filtered = matrix.drop_below(0.05)
        assert filtered.get(2, 2) == 0.0
        assert filtered.get(1, 1) == pytest.approx(0.9)
        # Original untouched.
        assert matrix.get(2, 2) == pytest.approx(0.04)

    def test_nonzero_pairs(self, matrix):
        pairs = matrix.drop_below(0.05).nonzero_pairs()
        assert (1, 1, pytest.approx(0.9)) in pairs
        assert all(v >= 0.05 for _, _, v in pairs)

    def test_row(self, matrix):
        assert matrix.row(1) == {1: pytest.approx(0.9), 2: pytest.approx(0.1)}

    def test_best_match(self, matrix):
        assert matrix.best_match(1) == (1, pytest.approx(0.9))
        empty = matrix.drop_below(2.0)
        assert empty.best_match(1) is None

    def test_transpose(self, matrix):
        transposed = matrix.transpose()
        assert transposed.get(3, 2) == pytest.approx(0.96)
        assert transposed.row_ids == (1, 2, 3)

    def test_shape_validation(self):
        with pytest.raises(TrackingError):
            CorrelationMatrix(row_ids=(1,), col_ids=(1,), values=np.zeros((2, 2)))

    def test_negative_values_rejected(self):
        with pytest.raises(TrackingError):
            CorrelationMatrix(row_ids=(1,), col_ids=(1,),
                              values=np.asarray([[-0.5]]))

    def test_to_text_format(self, matrix):
        text = matrix.to_text()
        assert "A1" in text and "B3" in text
        assert "90%" in text
        assert "-" in text  # zero cells rendered as dashes
