"""Unit tests for relabeling and the coverage metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frames
from repro.tracking.coverage import coverage_percent, max_identifiable_objects
from repro.tracking.relabel import relabel_frames
from repro.tracking.tracker import TrackedRegion, Tracker
from tests.conftest import build_two_region_trace


@pytest.fixture
def result():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}),
    ]
    return Tracker(make_frames(traces)).run()


class TestRelabel:
    def test_labels_consistent_across_frames(self, result):
        relabeled = relabel_frames(result)
        assert len(relabeled) == 2
        # Region ids present in both frames are identical sets.
        assert relabeled[0].region_ids == relabeled[1].region_ids

    def test_mapping_matches_regions(self, result):
        relabeled = relabel_frames(result)
        for frame_index, item in enumerate(relabeled):
            for cid, rid in item.mapping.items():
                assert cid in result.region(rid).clusters_in(frame_index)

    def test_points_of_region(self, result):
        relabeled = relabel_frames(result)
        region_id = relabeled[0].region_ids[0]
        points = relabeled[0].points_of_region(region_id)
        assert points.shape[0] == int((relabeled[0].labels == region_id).sum())

    def test_noise_stays_zero(self, result):
        relabeled = relabel_frames(result)
        for item in relabeled:
            noise_original = item.frame.labels == 0
            assert (item.labels[noise_original] == 0).all()


class TestCoverage:
    def region(self, members):
        return TrackedRegion(
            region_id=1,
            members=tuple(frozenset(m) for m in members),
            total_duration=1.0,
        )

    def test_max_identifiable(self, result):
        assert max_identifiable_objects(result.frames) == 2

    def test_full_coverage(self, result):
        assert coverage_percent(result.regions, result.frames) == 100

    def test_partial_region_not_counted(self, result):
        partial = self.region([{1}, set()])
        full = self.region([{1}, {1}])
        assert coverage_percent([partial, full], result.frames) == 50

    def test_floor_semantics(self, result):
        # 8 tracked of 9 identifiable floors to 88 (as the paper rounds).
        import math

        assert math.floor(100 * 8 / 9) == 88

    def test_empty(self):
        assert coverage_percent([], []) == 0
