"""Unit tests for the per-run evaluator cache (EvalCache).

The load-bearing property is *transparency*: a cached combine_pair must
return bit-identical results to an uncached one, because every cache
entry is the value of the exact call the uncached path would make.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.alignment.spmd import consensus_sequence
from repro.clustering.frames import make_frame
from repro.tracking.combine import combine_pair
from repro.tracking.evalcache import EvalCache
from repro.tracking.tracker import Tracker
from repro.tracking.evaluators.simultaneity import (
    frame_alignment,
    simultaneity_for_frame,
)
from repro.tracking.scaling import normalize_frames
from tests.conftest import build_two_region_trace


@pytest.fixture
def frame_pair():
    a = make_frame(build_two_region_trace(seed=1, nranks=6, iterations=5))
    b = make_frame(
        build_two_region_trace(seed=2, nranks=6, iterations=5, ipc_a=1.05, ipc_b=0.45)
    )
    return a, b


def _assert_matrix_equal(left, right):
    if left is None or right is None:
        assert left is right
        return
    assert left.row_ids == right.row_ids
    assert left.col_ids == right.col_ids
    np.testing.assert_array_equal(left.values, right.values)


class TestEntries:
    def test_tree_identity_on_hit(self, frame_pair):
        a, _ = frame_pair
        space = normalize_frames(list(frame_pair))
        cache = EvalCache()
        first = cache.tree(a, space.points[0])
        second = cache.tree(a, space.points[0])
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_simultaneity_matches_direct(self, frame_pair):
        a, _ = frame_pair
        cache = EvalCache()
        _assert_matrix_equal(
            cache.simultaneity(a, 64), simultaneity_for_frame(a, max_ranks=64)
        )

    def test_consensus_matches_direct(self, frame_pair):
        a, _ = frame_pair
        cache = EvalCache()
        direct = consensus_sequence(frame_alignment(a, max_ranks=64))
        np.testing.assert_array_equal(cache.consensus(a, 64), direct)

    def test_alignment_shared_between_derivations(self, frame_pair):
        a, _ = frame_pair
        cache = EvalCache()
        cache.simultaneity(a, 64)
        before = cache.misses
        cache.consensus(a, 64)  # reuses the cached frame_alignment
        alignment_misses = cache.misses - before
        assert alignment_misses == 1  # the consensus entry itself

    def test_retain_prunes_other_frames(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        cache = EvalCache()
        cache.tree(a, space.points[0])
        cache.tree(b, space.points[1])
        cache.simultaneity(a, 64)
        cache.simultaneity(b, 64)
        cache.retain([b])
        entries = cache.info()["entries"]
        cache.tree(b, space.points[1])
        cache.simultaneity(b, 64)
        assert cache.info()["entries"] == entries  # b's entries survived
        before = cache.misses
        cache.tree(a, space.points[0])  # a's were dropped
        assert cache.misses == before + 1


class TestTransparency:
    def test_combine_pair_cached_is_bit_identical(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        plain = combine_pair(a, b, space.points[0], space.points[1])
        cache = EvalCache()
        cached = combine_pair(
            a, b, space.points[0], space.points[1], cache=cache
        )
        # Warm cache: a second evaluation reuses every per-frame entry.
        warm = combine_pair(a, b, space.points[0], space.points[1], cache=cache)
        for other in (cached, warm):
            assert other.relations == plain.relations
            _assert_matrix_equal(other.displacement_ab, plain.displacement_ab)
            _assert_matrix_equal(other.displacement_ba, plain.displacement_ba)
            _assert_matrix_equal(other.callstack_ab, plain.callstack_ab)
            _assert_matrix_equal(other.simultaneity_a, plain.simultaneity_a)
            _assert_matrix_equal(other.simultaneity_b, plain.simultaneity_b)
            _assert_matrix_equal(other.sequence_ab, plain.sequence_ab)
        assert cache.hits > 0


class TestWorkerLocalCaches:
    """Process-backend workers share trees within their pair chunks.

    Regression for the serial-only cache attachment: per-pair private
    caches cost ``2 * n_pairs`` tree builds, the chunked worker-local
    caches cost ``n_frames + (n_chunks - 1)`` (chunk-boundary frames
    are built twice), and the serial run-wide cache costs ``n_frames``.
    """

    @staticmethod
    def _frames():
        return [
            make_frame(build_two_region_trace(seed=s, nranks=6, iterations=5))
            for s in (1, 2, 3, 4)
        ]

    @staticmethod
    def _run(frames, jobs):
        obs.enable()
        obs.reset()
        try:
            result = Tracker(frames).run(jobs=jobs)
            counters = {
                c["name"]: c["value"]
                for c in obs.metrics_snapshot()["counters"]
            }
            return result, counters.get("tracking.tree_builds_total", 0)
        finally:
            obs.reset()
            obs.disable()

    def test_tree_builds_drop_under_jobs_two(self):
        frames = self._frames()
        n_pairs = len(frames) - 1
        serial_result, serial_builds = self._run(frames, jobs=1)
        parallel_result, parallel_builds = self._run(frames, jobs=2)
        # Serial: one run-wide cache -> one tree per frame.
        assert serial_builds == len(frames)
        # jobs=2: chunks {0,1} and {2} -> 3 + 2 trees, strictly fewer
        # than the 2-per-pair cost of cacheless workers.
        assert parallel_builds == 5
        assert parallel_builds < 2 * n_pairs
        # And the sharing never changes the answer.
        assert parallel_result.regions == serial_result.regions
        assert parallel_result.coverage == serial_result.coverage
