"""Unit tests for the four tracking evaluators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frame
from repro.tracking.evaluators.callstack import callstack_matrix
from repro.tracking.evaluators.displacement import (
    displacement_matrix,
    displacement_matrix_reference,
    frame_tree,
)
from repro.tracking.evaluators.sequence import align_with_pivots, sequence_matrix
from repro.tracking.evaluators.simultaneity import frame_alignment, simultaneity_for_frame
from repro.tracking.scaling import normalize_frames
from tests.conftest import build_two_region_trace


@pytest.fixture
def frame_pair():
    a = make_frame(build_two_region_trace(seed=1, nranks=6, iterations=5))
    b = make_frame(
        build_two_region_trace(seed=2, nranks=6, iterations=5, ipc_a=1.05, ipc_b=0.45)
    )
    return a, b


class TestDisplacement:
    def test_clean_diagonal(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        matrix = displacement_matrix(a, b, space.points[0], space.points[1])
        # Each region of A maps overwhelmingly onto its counterpart.
        for cid in a.cluster_ids:
            best, value = matrix.best_match(cid)
            assert best == cid
            assert value > 0.95

    def test_rows_sum_to_at_most_one(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        matrix = displacement_matrix(a, b, space.points[0], space.points[1])
        sums = matrix.values.sum(axis=1)
        assert (sums <= 1 + 1e-9).all()
        # All of A's clustered points land somewhere in B.
        assert (sums > 0.99).all()

    def test_point_count_validation(self, frame_pair):
        a, b = frame_pair
        with pytest.raises(Exception):
            displacement_matrix(a, b, np.zeros((3, 2)), np.zeros((b.n_points, 2)))

    def test_reciprocal_direction(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        forward = displacement_matrix(a, b, space.points[0], space.points[1])
        backward = displacement_matrix(b, a, space.points[1], space.points[0])
        assert forward.row_ids == a.cluster_ids
        assert backward.row_ids == b.cluster_ids

    def test_batched_matches_reference_bitwise(self, frame_pair):
        """The single-query scatter formulation must reproduce the
        per-cluster-loop reference exactly, in both directions."""
        a, b = frame_pair
        space = normalize_frames([a, b])
        for fa, fb, pa, pb in [
            (a, b, space.points[0], space.points[1]),
            (b, a, space.points[1], space.points[0]),
        ]:
            fast = displacement_matrix(fa, fb, pa, pb)
            ref = displacement_matrix_reference(fa, fb, pa, pb)
            assert fast.row_ids == ref.row_ids
            assert fast.col_ids == ref.col_ids
            np.testing.assert_array_equal(fast.values, ref.values)

    def test_prebuilt_tree_matches_reference_bitwise(self, frame_pair):
        a, b = frame_pair
        space = normalize_frames([a, b])
        tree = frame_tree(b, space.points[1])
        fast = displacement_matrix(
            a, b, space.points[0], space.points[1], tree_b=tree
        )
        ref = displacement_matrix_reference(
            a, b, space.points[0], space.points[1]
        )
        np.testing.assert_array_equal(fast.values, ref.values)


class TestSimultaneity:
    def test_unimodal_regions_not_simultaneous(self, frame_pair):
        a, _ = frame_pair
        matrix = simultaneity_for_frame(a)
        # The two phases never share an alignment column.
        assert matrix.get(1, 2) < 0.2
        assert matrix.get(1, 1) == pytest.approx(1.0)

    def test_bimodal_region_simultaneous(self):
        from repro.apps import hydroc

        trace = hydroc.build(block_size=64, ranks=8, iterations=4).run(seed=0)
        frame = make_frame(trace)
        matrix = simultaneity_for_frame(frame)
        # HydroC's two modes execute at the same logical step (some
        # alignment columns lose a side to DBSCAN noise, so the
        # estimate sits below 1.0 but far above the 0.5 threshold the
        # combiner applies).
        assert matrix.get(1, 2) > 0.6
        assert matrix.get(2, 1) > 0.6

    def test_rank_sampling_cap(self, frame_pair):
        a, _ = frame_pair
        alignment = frame_alignment(a, max_ranks=3)
        assert alignment.n_sequences == 3


class TestCallstack:
    def test_same_code_full_overlap(self, frame_pair):
        a, b = frame_pair
        matrix = callstack_matrix(a, b)
        for cid in a.cluster_ids:
            assert matrix.get(cid, cid) == pytest.approx(1.0)

    def test_different_code_zero(self, frame_pair):
        a, b = frame_pair
        matrix = callstack_matrix(a, b)
        assert matrix.get(1, 2) == 0.0
        assert matrix.get(2, 1) == 0.0


class TestSequence:
    def test_pivot_propagation(self):
        # Paper Figure 5: knowing 1 -> 2 aligns the rest positionally.
        consensus_a = np.asarray([1, 2, 3] * 4)
        consensus_b = np.asarray([2, 3, 4] * 4)
        pairs = align_with_pivots(consensus_a, consensus_b, {1: 2})
        assert (1, 2) in pairs
        assert (2, 3) in pairs
        assert (3, 4) in pairs

    def test_matrix_values(self):
        consensus_a = np.asarray([1, 2] * 5)
        consensus_b = np.asarray([7, 8] * 5)
        matrix = sequence_matrix(consensus_a, consensus_b, (1, 2), (7, 8), {1: 7})
        assert matrix.get(1, 7) == pytest.approx(1.0)
        assert matrix.get(2, 8) == pytest.approx(1.0)
        assert matrix.get(1, 8) == 0.0

    def test_no_pivots_still_aligns_by_position(self):
        consensus_a = np.asarray([1, 2, 3])
        consensus_b = np.asarray([4, 5, 6])
        pairs = align_with_pivots(consensus_a, consensus_b, {})
        # Without pivots everything mismatches, but global alignment
        # still prefers the diagonal over gap-gap pairs when mismatch
        # beats double gaps.
        assert len(pairs) == 3

    def test_shifted_sequences(self):
        consensus_a = np.asarray([1, 2, 3, 1, 2, 3])
        consensus_b = np.asarray([9, 1, 2, 3, 1, 2, 3])  # extra prefix phase
        pairs = align_with_pivots(consensus_a, consensus_b, {1: 1, 2: 2, 3: 3})
        assert pairs.count((1, 1)) == 2
        assert pairs.count((2, 2)) == 2
