"""Unit tests for cross-frame scale normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame
from repro.errors import TrackingError
from repro.tracking.scaling import normalize_frames
from tests.conftest import build_two_region_trace


def frames_for(ranks_list, **kwargs):
    return [
        make_frame(build_two_region_trace(nranks=n, iterations=4, seed=i, **kwargs))
        for i, n in enumerate(ranks_list)
    ]


class TestNormalizeFrames:
    def test_all_points_in_unit_box(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames)
        for points in space.points:
            assert points.min() >= -1e-9
            assert points.max() <= 1 + 1e-9

    def test_extensive_axis_weighted_by_ranks(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames)
        assert space.weights[0] == (1.0, 1.0)
        assert space.weights[1] == (1.0, 2.0)  # instructions weighted 8/4

    def test_intensive_axis_not_weighted(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames)
        # x axis is IPC (intensive): weight 1 in both frames.
        assert all(w[0] == 1.0 for w in space.weights)

    def test_reference_frame_choice(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames, reference=1)
        assert space.weights[0] == (1.0, 0.5)
        assert space.weights[1] == (1.0, 1.0)

    def test_halved_work_realigned(self):
        """Doubling ranks halves per-burst instructions; weighting makes
        the two frames' clusters land on each other (paper Fig. 1c)."""
        base = build_two_region_trace(nranks=4, iterations=4, seed=0)
        double = build_two_region_trace(
            nranks=8, iterations=4, seed=1, instr_a=0.5e6, instr_b=2e6
        )
        frames = [make_frame(base), make_frame(double)]
        space = normalize_frames(frames)
        mean_y_0 = space.points[0][:, 1].mean()
        mean_y_1 = space.points[1][:, 1].mean()
        assert mean_y_0 == pytest.approx(mean_y_1, abs=0.02)

    def test_axis_names(self):
        frames = frames_for([4, 4])
        assert normalize_frames(frames).axis_names == ("ipc", "instructions")

    def test_mismatched_axes_rejected(self):
        frame_a = make_frame(build_two_region_trace(nranks=4))
        frame_b = make_frame(
            build_two_region_trace(nranks=4),
            FrameSettings(x_metric="ipc", y_metric="cycles"),
        )
        with pytest.raises(TrackingError, match="axis"):
            normalize_frames([frame_a, frame_b])

    def test_empty_rejected(self):
        with pytest.raises(TrackingError):
            normalize_frames([])

    def test_bad_reference(self):
        frames = frames_for([4])
        with pytest.raises(TrackingError):
            normalize_frames(frames, reference=5)

    def test_log_extensive(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames, log_extensive=True)
        for points in space.points:
            assert np.isfinite(points).all()

    def test_frame_points_accessor(self):
        frames = frames_for([4, 8])
        space = normalize_frames(frames)
        np.testing.assert_array_equal(space.frame_points(1), space.points[1])
