"""Robustness tests: degenerate and adversarial tracking inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame, make_frames
from repro.tracking.tracker import Tracker
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder
from tests.conftest import build_two_region_trace


def single_region_trace(seed=0, scenario=None):
    # Both "regions" collapse onto one position: min-max normalisation
    # stretches the residual jitter across the unit box, so the point
    # population must be dense enough to stay one DBSCAN cluster.
    return build_two_region_trace(
        seed=seed, scenario=scenario or {}, instr_a=1e6, instr_b=1e6,
        ipc_a=1.0, ipc_b=1.0, nranks=16, iterations=10,
    )


def all_noise_trace(seed=0):
    """Uniformly scattered bursts: DBSCAN finds nothing."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(nranks=4, app="noise")
    path = CallPath.single("f", "a.c", 1)
    for i in range(60):
        instr = float(rng.uniform(1e5, 1e8))
        ipc = float(rng.uniform(0.1, 2.0))
        cycles = instr / ipc
        builder.add(
            rank=int(rng.integers(0, 4)), begin=float(i), duration=cycles / 1e9,
            callpath=path, counters=[instr, cycles, 1.0, 1.0, 1.0],
        )
    return builder.build()


class TestDegenerateFrames:
    def test_single_cluster_pair(self):
        traces = [
            single_region_trace(seed=0, scenario={"run": 0}),
            single_region_trace(seed=1, scenario={"run": 1}),
        ]
        result = Tracker(make_frames(traces)).run()
        assert len(result.tracked_regions) == 1
        assert result.coverage == 100

    def test_all_noise_frames(self):
        frames = [make_frame(all_noise_trace(seed)) for seed in (0, 1)]
        # No objects at all: tracking must degrade gracefully.
        result = Tracker(frames).run()
        assert result.coverage == 0
        assert result.regions == ()

    def test_one_empty_one_structured(self):
        frames = [
            make_frame(all_noise_trace(0)),
            make_frame(build_two_region_trace(seed=1)),
        ]
        result = Tracker(frames).run()
        # Objects exist only in the second frame: nothing spans both.
        assert result.tracked_regions == ()
        assert len(result.regions) == 2

    def test_disjoint_callpaths_never_matched(self):
        """Same positions, completely different code: the call-stack
        evaluator must veto every correspondence."""
        a = build_two_region_trace(seed=0, scenario={"run": 0})
        rng_path_trace = build_two_region_trace(seed=1, scenario={"run": 1})
        # Rebuild the second trace with renamed call paths.
        builder = TraceBuilder(nranks=rng_path_trace.nranks, app="other",
                               scenario={"run": 1})
        for burst in rng_path_trace.bursts():
            leaf = burst.callpath.leaf
            builder.add(
                rank=burst.rank, begin=burst.begin, duration=burst.duration,
                callpath=CallPath.single(leaf.function + "_x", "other.c",
                                         leaf.line + 1000),
                counters=[burst.counters[name] for name in
                          rng_path_trace.counter_names],
            )
        b = builder.build()
        result = Tracker(make_frames([a, b])).run()
        assert result.tracked_regions == ()

    def test_identical_frames(self):
        trace = build_two_region_trace(seed=0)
        result = Tracker(make_frames([trace, trace])).run()
        assert result.coverage == 100
        for region in result.tracked_regions:
            assert region.members[0] == region.members[1]

    def test_many_identical_frames_chain(self):
        trace = build_two_region_trace(seed=0)
        result = Tracker(make_frames([trace] * 5)).run()
        assert result.coverage == 100
        assert len(result.pair_relations) == 4

    def test_single_rank_trace(self):
        traces = [
            build_two_region_trace(nranks=1, iterations=30, seed=0,
                                   scenario={"run": 0}),
            build_two_region_trace(nranks=1, iterations=30, seed=1,
                                   scenario={"run": 1}),
        ]
        result = Tracker(make_frames(traces)).run()
        assert result.coverage == 100

    def test_tiny_min_pts_many_microclusters_still_tracks(self):
        settings = FrameSettings(min_pts=2, eps=0.02)
        traces = [
            build_two_region_trace(seed=0, scenario={"run": 0}),
            build_two_region_trace(seed=1, scenario={"run": 1}),
        ]
        result = Tracker(make_frames(traces, settings)).run()
        # Whatever fragmentation happens, the pipeline completes and
        # relations partition the clusters.
        for frame_index, frame in enumerate(result.frames):
            tracked_members: set[int] = set()
            for region in result.regions:
                tracked_members |= region.clusters_in(frame_index)
            assert tracked_members == set(frame.cluster_ids)
