"""Unit tests for trend extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frames
from repro.errors import TrackingError
from repro.tracking.tracker import Tracker
from repro.tracking.trends import (
    TrendSeries,
    compute_trends,
    normalized_to_max,
    top_variations,
)
from tests.conftest import build_two_region_trace


@pytest.fixture
def result():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}, ipc_b=0.4),
        build_two_region_trace(seed=2, scenario={"run": 2}, ipc_b=0.3),
    ]
    return Tracker(make_frames(traces)).run()


class TestComputeTrends:
    def test_one_series_per_region(self, result):
        series = compute_trends(result, "ipc")
        assert {s.region_id for s in series} == {1, 2}
        assert all(s.n_frames == 3 for s in series)

    def test_ipc_decline_detected(self, result):
        series = {s.region_id: s for s in compute_trends(result, "ipc")}
        # Region b (id 1: the longest) declines 0.5 -> 0.3.
        declining = series[1]
        assert declining.values[0] == pytest.approx(0.5, rel=0.02)
        assert declining.pct_change_total() == pytest.approx(-0.4, abs=0.03)

    def test_flat_region_flat(self, result):
        series = {s.region_id: s for s in compute_trends(result, "ipc")}
        stable = series[2]
        assert abs(stable.pct_change_total()) < 0.02

    def test_total_aggregate(self, result):
        series = compute_trends(result, "instructions", aggregate="total")
        frame0 = result.frames[0]
        region1 = result.region(1)
        expected = sum(
            frame0.cluster_total(cid, "instructions")
            for cid in region1.clusters_in(0)
        )
        values = {s.region_id: s.values[0] for s in series}
        assert values[1] == pytest.approx(expected)

    def test_bad_aggregate(self, result):
        with pytest.raises(TrackingError):
            compute_trends(result, "ipc", aggregate="median")

    def test_frame_labels(self, result):
        series = compute_trends(result, "ipc")[0]
        assert series.frame_labels == ("toy(run=0)", "toy(run=1)", "toy(run=2)")

    def test_step_changes(self, result):
        series = {s.region_id: s for s in compute_trends(result, "ipc")}
        steps = series[1].step_changes()
        assert steps.shape == (2,)
        assert (steps < 0).all()


class TestSeriesHelpers:
    def make(self, values, region_id=1):
        values = np.asarray(values, dtype=np.float64)
        return TrendSeries(
            region_id=region_id,
            metric="ipc",
            aggregate="mean",
            frame_labels=tuple(str(i) for i in range(len(values))),
            values=values,
        )

    def test_pct_change_with_nan(self):
        series = self.make([1.0, np.nan, 1.5])
        assert series.pct_change_total() == pytest.approx(0.5)

    def test_pct_change_degenerate(self):
        assert self.make([0.0, 1.0]).pct_change_total() == 0.0
        assert self.make([1.0]).pct_change_total() == 0.0

    def test_max_abs_variation(self):
        series = self.make([1.0, 0.7, 0.9])
        assert series.max_abs_variation() == pytest.approx(0.3)

    def test_top_variations_filters_and_sorts(self):
        flat = self.make([1.0, 1.001], region_id=1)
        mild = self.make([1.0, 1.05], region_id=2)
        strong = self.make([1.0, 0.5], region_id=3)
        selected = top_variations([flat, mild, strong], min_variation=0.03)
        assert [s.region_id for s in selected] == [3, 2]

    def test_normalized_to_max(self):
        series = self.make([2.0, 4.0, 3.0])
        (normed,) = normalized_to_max([series])
        np.testing.assert_allclose(normed.values, [50.0, 100.0, 75.0])

    def test_normalized_handles_all_nan(self):
        series = self.make([np.nan, np.nan])
        (normed,) = normalized_to_max([series])
        assert (normed.values == 0).all()

    def test_repr(self):
        assert "region=1" in repr(self.make([1.0, np.nan]))
