"""Unit tests for the who-is-who report."""

from __future__ import annotations

import pytest

from repro.clustering.frames import make_frames
from repro.tracking.report import region_summary, relation_evidence, who_is_who
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace


@pytest.fixture(scope="module")
def result():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}),
    ]
    return Tracker(make_frames(traces)).run()


class TestWhoIsWho:
    def test_header(self, result):
        text = who_is_who(result)
        assert "Tracked 2 regions across 2 frames (coverage 100%)" in text

    def test_lists_frames(self, result):
        text = who_is_who(result)
        assert "[0] toy(run=0)" in text
        assert "[1] toy(run=1)" in text

    def test_lists_relations_with_kind(self, result):
        text = who_is_who(result)
        assert "{1}=={1}  [univocal, confidence" in text
        assert "{2}=={2}  [univocal, confidence" in text

    def test_evidence_included(self, result):
        text = who_is_who(result, evidence=True)
        assert "displacement" in text
        assert "call stack" in text

    def test_evidence_can_be_omitted(self, result):
        text = who_is_who(result, evidence=False)
        # Evidence lines are gone; the "by <evaluator>" attribution on
        # the relation line itself remains.
        assert "reciprocal" not in text
        assert "displacement 10" not in text
        assert "by displacement" in text

    def test_region_section(self, result):
        text = who_is_who(result)
        assert "Region 1: {1} -> {1}" in text
        assert "% of time" in text
        assert "ref: region_" in text


class TestRelationEvidence:
    def test_values_rendered_as_percentages(self, result):
        pair = result.pair_relations[0]
        lines = relation_evidence(pair, pair.relations[0])
        assert lines
        assert any("displacement 100%" in line for line in lines)

    def test_grouped_relation_shows_simultaneity(self, hydroc_traces):
        """A bimodal pair's SPMD evidence appears for grouped sides."""
        from repro import quick_track
        from repro.tracking.combine import Relation

        result = quick_track(list(hydroc_traces))
        pair = result.pair_relations[0]
        synthetic = Relation(left=frozenset({1, 2}), right=frozenset({1}))
        lines = relation_evidence(pair, synthetic)
        assert any("simultaneous" in line for line in lines)


class TestRegionSummary:
    def test_share_sums_to_clustered_fraction(self, result):
        lines = region_summary(result)
        shares = []
        for line in lines:
            if "% of time" in line:
                shares.append(float(line.split("(")[1].split("%")[0]))
        assert 90.0 < sum(shares) <= 100.0
