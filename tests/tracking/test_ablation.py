"""Tests for the evaluator ablation switches."""

from __future__ import annotations

import pytest

from repro.clustering.frames import make_frames
from repro.tracking.tracker import Tracker, TrackerConfig
from tests.conftest import build_two_region_trace


def small_nasbt_traces():
    from repro.apps import nasbt

    return [
        nasbt.build("W", ranks=16, iterations=6).run(seed=0),
        nasbt.build("A", ranks=16, iterations=6).run(seed=1),
    ]


class TestAblationSwitches:
    def test_defaults_all_on(self):
        config = TrackerConfig()
        assert config.use_callstack and config.use_spmd and config.use_sequence

    def test_callstack_off_breaks_long_jumps(self):
        """NAS BT's W->A jump is only recoverable through call stacks;
        disabling that evaluator loses regions."""
        from repro.clustering.frames import FrameSettings

        traces = small_nasbt_traces()
        settings = FrameSettings(log_y=True, relevance=0.97)
        frames = make_frames(traces, settings)
        full = Tracker(frames, TrackerConfig(log_extensive=True)).run()
        ablated = Tracker(
            frames, TrackerConfig(log_extensive=True, use_callstack=False)
        ).run()
        assert full.coverage == 100
        assert ablated.coverage < full.coverage

    def test_spmd_off_orphans_split_clusters(self):
        """CGPOP's MinoTauro split is attached by the SPMD evaluator
        when displacements miss it; with displacement already finding
        the reciprocal edge, results may match — but disabling SPMD
        must never *improve* coverage."""
        from repro.apps import cgpop

        traces = [
            cgpop.build("MareNostrum", "gfortran", ranks=16, iterations=4).run(seed=0),
            cgpop.build("MinoTauro", "gfortran", ranks=16, iterations=4).run(seed=1),
        ]
        frames = make_frames(traces)
        full = Tracker(frames).run()
        ablated = Tracker(frames, TrackerConfig(use_spmd=False)).run()
        assert ablated.coverage <= full.coverage

    def test_easy_case_unaffected_by_ablation(self, toy_trace_pair):
        """Well-separated, short-displacement scenarios are resolved by
        displacements alone."""
        frames = make_frames(list(toy_trace_pair))
        full = Tracker(frames).run()
        bare = Tracker(
            frames,
            TrackerConfig(use_callstack=False, use_spmd=False, use_sequence=False),
        ).run()
        assert bare.coverage == full.coverage == 100

    def test_sequence_off_keeps_wide_relations(self):
        """Disabling the sequence evaluator must never split less...
        i.e. region counts can only stay equal or drop."""
        traces = small_nasbt_traces()
        from repro.clustering.frames import FrameSettings

        frames = make_frames(traces, FrameSettings(log_y=True, relevance=0.97))
        full = Tracker(frames, TrackerConfig(log_extensive=True)).run()
        ablated = Tracker(
            frames, TrackerConfig(log_extensive=True, use_sequence=False)
        ).run()
        assert len(ablated.tracked_regions) <= len(full.tracked_regions)
