"""Unit tests for relation confidence scoring."""

from __future__ import annotations

import pytest

from repro.clustering.frames import make_frames
from repro.tracking.combine import Relation
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace


@pytest.fixture(scope="module")
def pair():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}),
    ]
    result = Tracker(make_frames(traces)).run()
    return result.pair_relations[0]


class TestConfidence:
    def test_clean_relations_high_confidence(self, pair):
        for relation in pair.relations:
            assert pair.confidence(relation) > 0.9

    def test_empty_side_zero(self, pair):
        assert pair.confidence(Relation(frozenset(), frozenset({1}))) == 0.0
        assert pair.confidence(Relation(frozenset({1}), frozenset())) == 0.0

    def test_unsupported_pairing_low(self, pair):
        # Crossing the two regions has no evidence behind it.
        crossed = Relation(left=frozenset({1}), right=frozenset({2}))
        assert pair.confidence(crossed) < 0.1

    def test_bounded(self, pair):
        for relation in pair.relations:
            assert 0.0 <= pair.confidence(relation) <= 1.0

    def test_grouped_relation_includes_spmd_support(self, hydroc_traces):
        """An artificial grouping of HydroC's two simultaneous modes:
        the SPMD support keeps member confidence above zero even for
        the member lacking direct displacement evidence."""
        frames = make_frames(list(hydroc_traces))
        result = Tracker(frames).run()
        pair = result.pair_relations[0]
        grouped = Relation(left=frozenset({1, 2}), right=frozenset({1}))
        lone = Relation(left=frozenset({2}), right=frozenset({1}))
        assert pair.confidence(grouped) > pair.confidence(lone)

    def test_report_shows_confidence(self, pair):
        from repro.tracking.report import who_is_who
        from repro.clustering.frames import make_frames as _mf  # noqa: F401

        # Rebuild a result to render the full report.
        traces = [
            build_two_region_trace(seed=0, scenario={"run": 0}),
            build_two_region_trace(seed=1, scenario={"run": 1}),
        ]
        result = Tracker(make_frames(traces)).run()
        text = who_is_who(result)
        assert "confidence" in text
