"""Unit tests for the evaluator-combination algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frame
from repro.tracking.combine import Relation, combine_pair
from repro.tracking.scaling import normalize_frames
from tests.conftest import build_two_region_trace


def combined(trace_a, trace_b, **kwargs):
    frame_a = make_frame(trace_a)
    frame_b = make_frame(trace_b)
    space = normalize_frames([frame_a, frame_b])
    return combine_pair(
        frame_a, frame_b, space.points[0], space.points[1], **kwargs
    )


class TestRelation:
    def test_univocal(self):
        rel = Relation(left=frozenset({1}), right=frozenset({2}))
        assert rel.is_univocal and not rel.is_wide

    def test_wide(self):
        rel = Relation(left=frozenset({1, 2}), right=frozenset({3, 4}))
        assert rel.is_wide and not rel.is_univocal

    def test_grouped_not_wide(self):
        rel = Relation(left=frozenset({1, 2}), right=frozenset({3}))
        assert not rel.is_wide

    def test_repr(self):
        rel = Relation(left=frozenset({2, 1}), right=frozenset({3}))
        assert repr(rel) == "{1,2}=={3}"


class TestCombinePair:
    def test_clean_case_univocal(self, toy_trace_pair):
        pair = combined(*toy_trace_pair)
        assert len(pair.relations) == 2
        assert all(rel.is_univocal for rel in pair.relations)
        mapping = pair.mapping()
        assert mapping[1] == frozenset({1})
        assert mapping[2] == frozenset({2})

    def test_diagnostics_exposed(self, toy_trace_pair):
        pair = combined(*toy_trace_pair)
        assert pair.displacement_ab.row_ids == (1, 2)
        assert pair.callstack_ab.get(1, 1) > 0
        assert pair.simultaneity_a.get(1, 1) == pytest.approx(1.0)

    def test_long_jump_recovered_by_callstack(self):
        """A 10x shift in instructions breaks the displacement evaluator
        but the unique call-stack references still pair the regions."""
        a = build_two_region_trace(seed=1)
        b = build_two_region_trace(seed=2, instr_a=10e6, instr_b=40e6)
        pair = combined(a, b)
        mapping = pair.mapping()
        assert mapping[1] == frozenset({1})
        assert mapping[2] == frozenset({2})

    def test_bimodal_merge_grouped(self, hydroc_traces):
        """HydroC's two modes share a call path; tracking them from the
        64 to the 128 block-size scenario must keep them separate (they
        are well separated in the space)."""
        pair = combined(*hydroc_traces)
        assert len([rel for rel in pair.relations if rel.left and rel.right]) == 2

    def test_outlier_threshold_effect(self, toy_trace_pair):
        strict = combined(*toy_trace_pair, outlier_threshold=0.4)
        assert all(rel.is_univocal for rel in strict.relations)

    def test_spmd_widening_recovers_orphans(self):
        """A cluster appearing only in frame B (new behaviour), SPMD-
        simultaneous with a matched sibling and sharing its call path,
        joins the sibling's relation — the paper's A5 == B5 u B13."""
        from repro.apps import cgpop
        from repro.machine.machine import MARENOSTRUM, MINOTAURO

        a = cgpop.build(MARENOSTRUM, "gfortran", ranks=16, iterations=4).run(seed=1)
        b = cgpop.build(MINOTAURO, "gfortran", ranks=16, iterations=4).run(seed=2)
        pair = combined(a, b)
        grouped = [rel for rel in pair.relations if len(rel.right) == 2]
        assert len(grouped) == 1
        assert len(grouped[0].left) == 1
