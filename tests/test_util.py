"""Unit tests for the internal utility helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    as_rng,
    check_fraction,
    check_nonempty,
    check_positive,
    format_pct,
    format_si,
    pairwise,
)


class TestAsRng:
    def test_seed_reproducible(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_none_allowed(self):
        assert as_rng(None) is not None


class TestChecks:
    def test_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_fraction(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("f", 1.01)

    def test_nonempty(self):
        assert check_nonempty("s", [1]) == [1]
        with pytest.raises(ValueError):
            check_nonempty("s", [])


class TestPairwise:
    def test_pairs(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]

    def test_short_inputs(self):
        assert list(pairwise([])) == []
        assert list(pairwise([1])) == []


class TestFormatting:
    def test_si_suffixes(self):
        assert format_si(6.8e6) == "6.8M"
        assert format_si(4.3e9) == "4.3G"
        assert format_si(1.2e3) == "1.2k"
        assert format_si(2.5e12) == "2.5T"

    def test_si_small_values(self):
        assert format_si(0.5) == "0.5"

    def test_si_negative(self):
        assert format_si(-3.0e6) == "-3M"

    def test_pct(self):
        assert format_pct(-0.36) == "-36.0%"
        assert format_pct(0.05) == "+5.0%"
