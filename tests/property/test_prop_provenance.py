"""Property-based tests for relation provenance (heuristic attribution).

The run report's attribution table rests on two invariants:

- **uniqueness** — every relation names exactly one proposing
  evaluator (or the ``unmatched`` sentinel for empty-sided orphans);
- **ablation consistency** — a relation can only be attributed to an
  evaluator that actually ran, and support scores never cite evidence
  from an ablated evaluator.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.frames import make_frame, make_frames
from repro.tracking.combine import (
    CALLSTACK,
    SEQUENCE,
    SIMULTANEITY,
    UNMATCHED,
    combine_pair,
)
from repro.tracking.evaluators import EVALUATORS
from repro.tracking.scaling import normalize_frames
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace


def _combined(trace_a, trace_b, **kwargs):
    frame_a = make_frame(trace_a)
    frame_b = make_frame(trace_b)
    space = normalize_frames([frame_a, frame_b])
    return combine_pair(
        frame_a, frame_b, space.points[0], space.points[1], **kwargs
    )


@given(
    st.floats(min_value=0.6, max_value=1.4),
    st.floats(min_value=0.3, max_value=0.55),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_every_relation_has_exactly_one_proposer(ipc_a, ipc_b, seed):
    """Each relation is attributed to exactly one known evaluator."""
    traces = [
        build_two_region_trace(seed=seed, scenario={"run": 0}),
        build_two_region_trace(
            seed=seed + 1, scenario={"run": 1}, ipc_a=ipc_a, ipc_b=ipc_b
        ),
    ]
    result = Tracker(make_frames(traces)).run()
    for pair in result.pair_relations:
        assert pair.provenance is not None
        assert len(pair.provenance.relations) == len(pair.relations)
        for relation in pair.relations:
            record = pair.provenance_of(relation)
            if relation.left and relation.right:
                assert record.proposed_by in EVALUATORS
            else:
                assert record.proposed_by == UNMATCHED
            # proposed_by is a single name, never a composite.
            assert (record.proposed_by in EVALUATORS) != (
                record.proposed_by == UNMATCHED
            )


@given(
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=12, deadline=None)
def test_ablation_consistent_attribution(
    use_callstack, use_spmd, use_sequence, seed
):
    """Attribution never names or cites an ablated evaluator."""
    trace_a = build_two_region_trace(seed=seed, scenario={"run": 0})
    trace_b = build_two_region_trace(seed=seed + 1, scenario={"run": 1})
    pair = _combined(
        trace_a,
        trace_b,
        use_callstack=use_callstack,
        use_spmd=use_spmd,
        use_sequence=use_sequence,
    )
    disabled = set()
    if not use_callstack:
        disabled.add(CALLSTACK)
    if not use_spmd:
        disabled.add(SIMULTANEITY)
    if not use_sequence:
        disabled.add(SEQUENCE)
    for relation in pair.relations:
        record = pair.provenance_of(relation)
        assert record.proposed_by not in disabled
        assert not (set(record.evaluators) & disabled)
        assert not ({name for name, _ in record.support} & disabled)


def test_full_ablation_still_attributes_to_displacement():
    """With every optional evaluator off, displacement owns all links."""
    trace_a = build_two_region_trace(seed=3, scenario={"run": 0})
    trace_b = build_two_region_trace(seed=4, scenario={"run": 1})
    pair = _combined(
        trace_a,
        trace_b,
        use_callstack=False,
        use_spmd=False,
        use_sequence=False,
    )
    matched = [r for r in pair.relations if r.left and r.right]
    assert matched
    for relation in matched:
        assert pair.provenance_of(relation).proposed_by == "displacement"
