"""Property-based differential suite: sharded DBSCAN vs whole-frame.

The tentpole guarantee of ``repro.shard`` is that cluster-then-merge
produces labels **bit-identical** to the whole-frame grid engine — not
merely the same partition up to relabelling.  These tests drive
:func:`sharded_dbscan` against :meth:`DBSCAN.fit` with randomised
points, shard assignments, eps/min_pts and dimensionalities, including
the adversarial geometries the merge must get right: duplicated
points, lattice distances landing exactly on eps, and shardings that
scatter nearby points across shards.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering.dbscan import DBSCAN
from repro.shard import shard_assignment, sharded_dbscan

points_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=0, max_value=60), st.just(2)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
eps_strategy = st.floats(min_value=0.05, max_value=3.0)
min_pts_strategy = st.integers(min_value=1, max_value=8)
shards_strategy = st.integers(min_value=1, max_value=7)


def _assert_matches_whole(points, eps, min_pts, shard_of):
    whole = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    sharded = sharded_dbscan(points, eps, min_pts, shard_of)
    np.testing.assert_array_equal(sharded.labels, whole.labels)
    np.testing.assert_array_equal(sharded.core_mask, whole.core_mask)
    assert sharded.n_clusters == whole.n_clusters


@given(points_strategy, eps_strategy, min_pts_strategy, shards_strategy, st.randoms())
@settings(max_examples=60, deadline=None)
def test_matches_whole_random_sharding(points, eps, min_pts, n_shards, rand):
    """Arbitrary (spatially blind) shard assignment: worst case for the
    merge, since every cluster can straddle every shard boundary."""
    n = points.shape[0]
    shard_of = np.asarray([rand.randrange(n_shards) for _ in range(n)], dtype=np.int64)
    _assert_matches_whole(points, eps, min_pts, shard_of)


@given(points_strategy, eps_strategy, min_pts_strategy, shards_strategy)
@settings(max_examples=40, deadline=None)
def test_matches_whole_rank_block_sharding(points, eps, min_pts, n_shards):
    """The production sharding: contiguous rank blocks via shard_assignment."""
    n = points.shape[0]
    ranks = np.arange(n, dtype=np.int64) % max(1, min(n, 16))
    shard_of = shard_assignment(ranks, n_shards) if n else np.empty(0, dtype=np.int64)
    _assert_matches_whole(points, eps, min_pts, shard_of)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=4),
        ),
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    ),
    eps_strategy,
    min_pts_strategy,
    shards_strategy,
)
@settings(max_examples=40, deadline=None)
def test_matches_whole_other_dimensions(points, eps, min_pts, n_shards):
    n = points.shape[0]
    shard_of = (np.arange(n, dtype=np.int64) * 2654435761) % n_shards
    _assert_matches_whole(points, eps, min_pts, shard_of)


@given(
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    eps_strategy,
    min_pts_strategy,
    shards_strategy,
)
@settings(max_examples=30, deadline=None)
def test_matches_whole_all_identical_points(n, value, eps, min_pts, n_shards):
    """Every point duplicated: the densest possible cross-shard cluster.
    Per-shard counts must sum to exactly n for every point."""
    points = np.full((n, 2), value)
    shard_of = np.arange(n, dtype=np.int64) % n_shards
    _assert_matches_whole(points, eps, min_pts, shard_of)


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(min_value=0, max_value=40), st.just(2)),
        elements=st.integers(min_value=-4, max_value=4),
    ),
    st.sampled_from([0.5, 1.0, float(np.sqrt(2.0)), 2.0, float(np.sqrt(5.0))]),
    min_pts_strategy,
    shards_strategy,
)
@settings(max_examples=60, deadline=None)
def test_matches_whole_eps_on_lattice_distances(lattice, eps, min_pts, n_shards):
    """Distances landing exactly on eps: the inclusive-ball boundary must
    round identically in the per-shard count pass and the whole-frame
    core-mask pass, or core status flips across engines."""
    points = lattice.astype(np.float64)
    n = points.shape[0]
    shard_of = np.arange(n, dtype=np.int64) % n_shards
    _assert_matches_whole(points, eps, min_pts, shard_of)


@given(eps_strategy, min_pts_strategy, shards_strategy)
@settings(max_examples=10, deadline=None)
def test_matches_whole_degenerate_sizes(eps, min_pts, n_shards):
    _assert_matches_whole(np.empty((0, 2)), eps, min_pts, np.empty(0, dtype=np.int64))
    _assert_matches_whole(
        np.asarray([[0.3, -0.7]]), eps, min_pts, np.zeros(1, dtype=np.int64)
    )


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=20, deadline=None)
def test_shard_count_exceeding_points(points, eps, min_pts):
    """More shards than points (singleton shards everywhere): stage 1
    produces no cores, stage 2 decides everything."""
    n = points.shape[0]
    shard_of = np.arange(n, dtype=np.int64)
    _assert_matches_whole(points, eps, min_pts, shard_of)
