"""Property-based tests for machine-model invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.compiler import CompilerModel
from repro.machine.machine import MARENOSTRUM, MINOTAURO
from repro.machine.perfmodel import PerformanceModel, WorkloadPoint

ws_strategy = st.floats(min_value=1.0, max_value=1e10)
work_strategy = st.floats(min_value=0.0, max_value=1e8)


@given(ws_strategy, ws_strategy)
@settings(max_examples=60, deadline=None)
def test_cache_miss_rate_monotone(ws_a, ws_b):
    level = CacheLevel(name="L", size_bytes=128 * 1024)
    lo, hi = min(ws_a, ws_b), max(ws_a, ws_b)
    assert level.miss_rate(lo) <= level.miss_rate(hi) + 1e-12


@given(ws_strategy)
@settings(max_examples=60, deadline=None)
def test_cache_rates_within_bounds(ws):
    for machine in (MARENOSTRUM, MINOTAURO):
        for level, rate in zip(
            machine.caches.levels, machine.caches.misses_per_access(ws)
        ):
            assert 0.0 <= rate <= level.ceiling_miss_rate + 1e-12


@given(work_strategy, ws_strategy)
@settings(max_examples=60, deadline=None)
def test_counters_nonnegative_and_consistent(work, ws):
    point = WorkloadPoint(
        work_units=work,
        instructions_per_unit=40.0,
        memory_accesses_per_unit=1.0,
        working_set_bytes=ws,
    )
    counters = PerformanceModel(MINOTAURO).evaluate(point)
    assert counters.instructions >= 0
    assert counters.cycles >= counters.instructions * 0  # non-negative
    assert counters.l1_misses >= counters.l2_misses - 1e-9
    assert counters.duration * MINOTAURO.clock_hz == (
        __import__("pytest").approx(counters.cycles)
    )


@given(
    st.floats(min_value=0.3, max_value=1.0),
    work_strategy.filter(lambda w: w > 1.0),
)
@settings(max_examples=40, deadline=None)
def test_vendor_compiler_invariants(instruction_factor, work):
    """For any 'core-cycle-preserving' vendor compiler, IPC scales with
    the instruction factor and time is invariant."""
    vendor = CompilerModel(
        name="v",
        instruction_factor=instruction_factor,
        core_cpi_factor=1.0 / instruction_factor,
        vendor=True,
    )
    point = WorkloadPoint(
        work_units=work,
        instructions_per_unit=50.0,
        memory_accesses_per_unit=1.0,
        working_set_bytes=1e6,
    )
    baseline = PerformanceModel(MARENOSTRUM).evaluate(point)
    compiled = PerformanceModel(MARENOSTRUM, compiler=vendor).evaluate(point)
    assert compiled.duration == __import__("pytest").approx(baseline.duration, rel=1e-9)
    assert compiled.ipc == __import__("pytest").approx(
        instruction_factor * baseline.ipc, rel=1e-9
    )


@given(st.integers(min_value=1, max_value=12), st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=60, deadline=None)
def test_contention_factor_at_least_one(ppn, demand):
    factor = MINOTAURO.contention.memory_stall_factor(ppn, demand)
    assert factor >= 1.0


@given(st.floats(min_value=0.1, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_ipc_monotone_in_node_occupation(demand):
    point = WorkloadPoint(
        work_units=1e6,
        instructions_per_unit=40.0,
        memory_accesses_per_unit=1.0,
        working_set_bytes=512 * 1024,
        bandwidth_demand_gbs=demand,
    )
    ipcs = [
        PerformanceModel(MINOTAURO, processes_per_node=k).predicted_ipc(point)
        for k in range(1, 13)
    ]
    assert all(b <= a + 1e-12 for a, b in zip(ipcs, ipcs[1:]))
