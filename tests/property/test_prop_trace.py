"""Property-based tests for trace invariants and persistence."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.callstack import CallPath
from repro.trace.filters import filter_top_duration_fraction
from repro.trace.io import trace_from_json, trace_to_json
from repro.trace.trace import TraceBuilder

burst_record = st.tuples(
    st.integers(min_value=0, max_value=3),                       # rank
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # begin
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),   # duration
    st.integers(min_value=0, max_value=2),                       # region
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False),    # instructions
)

PATHS = [CallPath.single(f"f{i}", "a.c", i * 10) for i in range(3)]


def build(records):
    builder = TraceBuilder(nranks=4, app="prop")
    for rank, begin, duration, region, instr in records:
        builder.add(
            rank=rank,
            begin=begin,
            duration=duration,
            callpath=PATHS[region],
            counters=[instr, instr * 2.0, instr * 0.01, instr * 0.001, 1.0],
        )
    return builder.build()


@given(st.lists(burst_record, max_size=40))
@settings(max_examples=50, deadline=None)
def test_json_roundtrip(records):
    trace = build(records)
    assert trace_from_json(trace_to_json(trace)) == trace


@given(st.lists(burst_record, max_size=40))
@settings(max_examples=50, deadline=None)
def test_total_time_is_duration_sum(records):
    trace = build(records)
    assert trace.total_time == float(np.sum(trace.duration))


@given(st.lists(burst_record, min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_rank_partition_is_complete(records):
    trace = build(records)
    total = sum(trace.bursts_of_rank(r).n_bursts for r in range(4))
    assert total == trace.n_bursts


@given(
    st.lists(burst_record, min_size=1, max_size=40),
    st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=50, deadline=None)
def test_top_duration_filter_coverage(records, fraction):
    trace = build(records)
    kept = filter_top_duration_fraction(trace, fraction)
    assert kept.n_bursts <= trace.n_bursts
    if trace.total_time > 0:
        assert kept.total_time >= fraction * trace.total_time - 1e-12


@given(st.lists(burst_record, min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_sorted_by_time_is_permutation(records):
    trace = build(records)
    ordered = trace.sorted_by_time()
    assert ordered.n_bursts == trace.n_bursts
    np.testing.assert_allclose(
        np.sort(ordered.duration), np.sort(trace.duration)
    )
    assert (np.diff(ordered.begin) >= 0).all()
