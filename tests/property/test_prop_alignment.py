"""Property-based tests for the sequence-alignment substrate.

Includes the differential suite against
:func:`~repro.alignment.pairwise.global_align_reference` — the retained
full-table formulation is the executable specification, and the banded
and checkpointed (linear-memory) engines must reproduce its score *and*
its exact backtrack path (both aligned arrays, move for move) on every
input, including empty/length-1 sequences and extreme length skews
where the initial band corridor is dominated by the |n - m| offset.
"""

from __future__ import annotations

import contextlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import pairwise as pw
from repro.alignment.msa import star_align
from repro.alignment.pairwise import GAP, global_align, global_align_reference
from repro.alignment.spmd import consensus_sequence, simultaneity_matrix, spmdiness_score

sequences = st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=30)
nonempty_sequences = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=30
)


@given(sequences, sequences)
@settings(max_examples=60, deadline=None)
def test_alignment_preserves_sequences(a, b):
    """Removing gaps from either aligned side recovers the input."""
    result = global_align(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
    recovered_a = [int(v) for v in result.aligned_a if v != GAP]
    recovered_b = [int(v) for v in result.aligned_b if v != GAP]
    assert recovered_a == a
    assert recovered_b == b


@given(sequences, sequences)
@settings(max_examples=60, deadline=None)
def test_alignment_no_double_gap_columns(a, b):
    result = global_align(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
    both_gap = (result.aligned_a == GAP) & (result.aligned_b == GAP)
    assert not both_gap.any()


@given(sequences, sequences)
@settings(max_examples=60, deadline=None)
def test_alignment_length_bounds(a, b):
    result = global_align(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
    assert max(len(a), len(b)) <= result.length <= len(a) + len(b)


@given(nonempty_sequences)
@settings(max_examples=40, deadline=None)
def test_self_alignment_is_identity(a):
    arr = np.asarray(a, dtype=np.int64)
    result = global_align(arr, arr)
    assert result.identity() == 1.0
    assert result.score == 2.0 * len(a)


@given(sequences, sequences)
@settings(max_examples=40, deadline=None)
def test_alignment_score_symmetry(a, b):
    arr_a = np.asarray(a, dtype=np.int64)
    arr_b = np.asarray(b, dtype=np.int64)
    forward = global_align(arr_a, arr_b)
    backward = global_align(arr_b, arr_a)
    assert forward.score == backward.score


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=10),
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=12),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=40, deadline=None)
def test_star_align_preserves_rows(seqs):
    arrays = {k: np.asarray(v, dtype=np.int64) for k, v in seqs.items()}
    alignment = star_align(arrays)
    assert alignment.keys == tuple(sorted(seqs))
    for key, original in arrays.items():
        row = alignment.row(key)
        assert [int(v) for v in row[row != GAP]] == original.tolist()


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=10),
    st.integers(min_value=2, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_identical_rank_sequences_perfectly_spmd(base, n_ranks):
    sequences = {r: np.asarray(base, dtype=np.int64) for r in range(n_ranks)}
    alignment = star_align(sequences)
    assert spmdiness_score(alignment) == 1.0
    np.testing.assert_array_equal(consensus_sequence(alignment), base)


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8),
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_simultaneity_diagonal_and_bounds(base, n_ranks):
    sequences = {r: np.asarray(base, dtype=np.int64) for r in range(n_ranks)}
    alignment = star_align(sequences)
    ids = tuple(sorted(set(base)))
    matrix = simultaneity_matrix(alignment, ids)
    assert (matrix >= 0).all() and (matrix <= 1).all()
    for i in range(len(ids)):
        assert matrix[i, i] == 1.0


score_schemes = st.tuples(
    st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
    st.floats(min_value=-5.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=-5.0, max_value=-0.01, allow_nan=False),
)


def _recomputed_score(result, match: float, mismatch: float, gap: float) -> float:
    """Score of the alignment summed column by column."""
    total = 0.0
    for left, right in zip(result.aligned_a, result.aligned_b):
        if left == GAP or right == GAP:
            total += gap
        elif left == right:
            total += match
        else:
            total += mismatch
    return total


@given(sequences, sequences, score_schemes)
@settings(max_examples=80, deadline=None)
def test_backtrack_terminates_and_reproduces_score(a, b, scheme):
    """The tolerant backtrack must always finish, even for pathological
    scoring schemes whose vectorised-fill scores disagree with the
    scalar recomputation in the last ulp, and the alignment it emits
    must be worth exactly the optimal DP score."""
    match, mismatch, gap = scheme
    result = global_align(
        np.asarray(a, dtype=np.int64),
        np.asarray(b, dtype=np.int64),
        match=match,
        mismatch=mismatch,
        gap=gap,
    )
    recovered_a = [int(v) for v in result.aligned_a if v != GAP]
    recovered_b = [int(v) for v in result.aligned_b if v != GAP]
    assert recovered_a == a
    assert recovered_b == b
    recomputed = _recomputed_score(result, match, mismatch, gap)
    assert np.isclose(recomputed, result.score, rtol=1e-6, atol=1e-6)


# ----------------------------------------------------------------------
# Differential suite: banded / checkpointed engines vs the reference.

integral_schemes = st.sampled_from(
    [(2.0, -1.0, -2.0), (1.0, 0.0, -1.0), (3.0, -2.0, -1.0), (5.0, -4.0, -3.0)]
)

# Length-skewed pairs keep the initial band corridor dominated by the
# |n - m| diagonal offset (the band-width == |n - m| edge).
skewed_pairs = st.tuples(
    st.lists(st.integers(min_value=1, max_value=4), min_size=0, max_size=3),
    st.lists(st.integers(min_value=1, max_value=4), min_size=30, max_size=70),
)


@contextlib.contextmanager
def _forced(full_fill_cells, checkpoint_cells):
    """Pin the engine thresholds so small inputs take the big-input path."""
    saved = pw._FULL_FILL_CELLS, pw._CHECKPOINT_CELLS
    pw._FULL_FILL_CELLS, pw._CHECKPOINT_CELLS = full_fill_cells, checkpoint_cells
    try:
        yield
    finally:
        pw._FULL_FILL_CELLS, pw._CHECKPOINT_CELLS = saved


def _assert_matches_reference(a, b, scheme):
    match, mismatch, gap = scheme
    arr_a = np.asarray(a, dtype=np.int64)
    arr_b = np.asarray(b, dtype=np.int64)
    fast = global_align(arr_a, arr_b, match=match, mismatch=mismatch, gap=gap)
    ref = global_align_reference(
        arr_a, arr_b, match=match, mismatch=mismatch, gap=gap
    )
    assert fast.score == ref.score
    np.testing.assert_array_equal(fast.aligned_a, ref.aligned_a)
    np.testing.assert_array_equal(fast.aligned_b, ref.aligned_b)


@given(sequences, sequences, integral_schemes)
@settings(max_examples=60, deadline=None)
def test_banded_matches_reference_exactly(a, b, scheme):
    with _forced(0, pw._CHECKPOINT_CELLS):
        _assert_matches_reference(a, b, scheme)


@given(sequences, sequences, integral_schemes)
@settings(max_examples=60, deadline=None)
def test_checkpointed_matches_reference_exactly(a, b, scheme):
    with _forced(0, 1):
        _assert_matches_reference(a, b, scheme)


@given(skewed_pairs, integral_schemes)
@settings(max_examples=40, deadline=None)
def test_band_offset_edge_matches_reference(pair, scheme):
    a, b = pair
    with _forced(0, pw._CHECKPOINT_CELLS):
        _assert_matches_reference(a, b, scheme)
        _assert_matches_reference(b, a, scheme)


@given(integral_schemes)
@settings(max_examples=16, deadline=None)
def test_degenerate_sequences_match_reference(scheme):
    with _forced(0, 1):
        for a, b in [([], []), ([], [1]), ([2], []), ([1], [1]), ([1], [2])]:
            _assert_matches_reference(a, b, scheme)


@given(sequences, sequences)
@settings(max_examples=40, deadline=None)
def test_default_entry_point_matches_reference(a, b):
    """No forcing: whatever engine global_align picks must agree."""
    _assert_matches_reference(a, b, (2.0, -1.0, -2.0))


@given(nonempty_sequences)
@settings(max_examples=30, deadline=None)
def test_identity_fast_path_matches_reference(a):
    """Self-alignment takes the all-diagonal shortcut; path must still
    be exactly the reference's."""
    _assert_matches_reference(a, a, (2.0, -1.0, -2.0))


@given(sequences, sequences)
@settings(max_examples=40, deadline=None)
def test_backtrack_score_with_irrational_scheme(a, b):
    """A fixed ugly scheme (irrational penalties) exercises the exact
    float-mismatch path the tolerance guards against."""
    match, mismatch, gap = 2 * np.pi / 3, -np.e / 7, -np.sqrt(2) / 3
    result = global_align(
        np.asarray(a, dtype=np.int64),
        np.asarray(b, dtype=np.int64),
        match=match,
        mismatch=mismatch,
        gap=gap,
    )
    recomputed = _recomputed_score(result, match, mismatch, gap)
    assert np.isclose(recomputed, result.score, rtol=1e-6, atol=1e-6)
