"""Property-based round-trip tests for the Paraver format."""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.prv import load_prv, save_prv
from tests.property.test_prop_trace import build, burst_record


@given(st.lists(burst_record, max_size=25))
@settings(max_examples=30, deadline=None)
def test_prv_roundtrip_preserves_structure(records):
    trace = build(records)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.prv"
        loaded = load_prv(save_prv(trace, path))

    assert loaded.n_bursts == trace.n_bursts
    assert loaded.nranks == trace.nranks
    assert loaded.app == trace.app

    def ns_order(t):
        # Order by the format-representable keys only (nanosecond-
        # quantised times, integer instructions): sub-quantum
        # differences cannot round-trip and must not affect the order.
        return t.select(
            np.lexsort((
                np.rint(t.counters_matrix[:, 0]),
                np.rint(t.duration * 1e9),
                t.rank,
                np.rint(t.begin * 1e9),
            ))
        )

    original = ns_order(trace)
    reloaded = ns_order(loaded)
    np.testing.assert_array_equal(original.rank, reloaded.rank)
    # Nanosecond quantisation of timestamps, integer counters.
    np.testing.assert_allclose(original.begin, reloaded.begin, atol=1e-9)
    np.testing.assert_allclose(original.duration, reloaded.duration, atol=2e-9)
    np.testing.assert_allclose(
        original.counters_matrix, reloaded.counters_matrix, atol=0.51
    )
    for i in range(original.n_bursts):
        assert str(
            original.callstacks.path(int(original.callpath_id[i]))
        ) == str(reloaded.callstacks.path(int(reloaded.callpath_id[i])))
