"""Property-based round-trip tests for the Paraver format."""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.prv import _parse_header_total, load_prv, save_prv
from repro.trace.trace import TraceBuilder
from tests.property.test_prop_trace import PATHS

# One physically valid burst: a (gap-before, duration) pair keeps the
# bursts of one rank strictly sequential — a CPU runs one burst at a
# time, and `load_prv` validates exactly that invariant.
sequential_burst = st.tuples(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),    # gap before
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),   # duration
    st.integers(min_value=0, max_value=2),                       # region
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False),    # instructions
)

rank_schedules = st.lists(
    st.lists(sequential_burst, max_size=8), min_size=1, max_size=4
)


def build_sequential(schedules):
    """Build a valid trace: each rank's bursts laid out back to back."""
    builder = TraceBuilder(nranks=max(len(schedules), 1), app="prop")
    for rank, schedule in enumerate(schedules):
        clock = 0.0
        for gap, duration, region, instr in schedule:
            clock += gap
            builder.add(
                rank=rank,
                begin=clock,
                duration=duration,
                callpath=PATHS[region],
                counters=[instr, instr * 2.0, instr * 0.01, instr * 0.001, 1.0],
            )
            clock += duration
    return builder.build()


@given(rank_schedules)
@settings(max_examples=30, deadline=None)
def test_prv_roundtrip_preserves_structure(schedules):
    trace = build_sequential(schedules)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.prv"
        loaded = load_prv(save_prv(trace, path))

    assert loaded.n_bursts == trace.n_bursts
    assert loaded.nranks == trace.nranks
    assert loaded.app == trace.app

    def ns_order(t):
        # Order by the format-representable keys only (nanosecond-
        # quantised times, integer instructions): sub-quantum
        # differences cannot round-trip and must not affect the order.
        return t.select(
            np.lexsort((
                np.rint(t.counters_matrix[:, 0]),
                np.rint(t.duration * 1e9),
                t.rank,
                np.rint(t.begin * 1e9),
            ))
        )

    original = ns_order(trace)
    reloaded = ns_order(loaded)
    np.testing.assert_array_equal(original.rank, reloaded.rank)
    # Nanosecond quantisation of timestamps, integer counters.
    np.testing.assert_allclose(original.begin, reloaded.begin, atol=1e-9)
    np.testing.assert_allclose(original.duration, reloaded.duration, atol=2e-9)
    np.testing.assert_allclose(
        original.counters_matrix, reloaded.counters_matrix, atol=0.51
    )
    for i in range(original.n_bursts):
        assert str(
            original.callstacks.path(int(original.callpath_id[i]))
        ) == str(reloaded.callstacks.path(int(reloaded.callpath_id[i])))


@given(rank_schedules)
@settings(max_examples=50, deadline=None)
def test_prv_burst_ends_never_exceed_header_total(schedules):
    """The rounding-unification invariant: one ``np.rint`` pass produces
    both the record times and the header total, so no state record can
    end after the duration the header declares."""
    trace = build_sequential(schedules)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.prv"
        prv = save_prv(trace, path)
        lines = prv.read_text().splitlines()
        total_ns = _parse_header_total(lines[0], prv)
        end_ns = [
            int(line.split(":")[6])
            for line in lines[1:]
            if line.startswith("1:")
        ]
        event_ns = [
            int(line.split(":")[5])
            for line in lines[1:]
            if line.startswith("2:")
        ]
        # Strict reload succeeds because every record respects the header.
        loaded = load_prv(prv)
    assert loaded.n_bursts == trace.n_bursts
    if end_ns:
        assert max(end_ns) <= total_ns
        assert max(end_ns) == total_ns  # header is exactly the last end
    if event_ns:
        assert max(event_ns) <= total_ns
