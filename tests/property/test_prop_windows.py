"""Property-based tests for time windowing (:mod:`repro.stream.window`).

The invariant under test: :func:`slice_trace` is a *partition* of the
trace along its time axis — every burst lands in exactly one window,
per-rank burst order is preserved, and concatenating the windows
round-trips the original trace — for random traces, random window
counts and random widths, including the degenerate corners.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.robust.validate import validate_trace
from repro.stream import WINDOW_KEY, concat_windows, slice_trace
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder

_PATH = CallPath.single("kernel", "main.c", 1)


@st.composite
def traces(draw):
    """Small random traces with per-rank monotone begin times."""
    nranks = draw(st.integers(min_value=1, max_value=3))
    builder = TraceBuilder(nranks=nranks, app="prop")
    n_per_rank = draw(st.integers(min_value=1, max_value=8))
    for rank in range(nranks):
        t = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        for _ in range(n_per_rank):
            gap = draw(
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
            )
            duration = draw(
                st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
            )
            t += gap
            instructions = duration * 1e9
            builder.add(
                rank=rank,
                begin=t,
                duration=duration,
                callpath=_PATH,
                counters=[instructions, instructions,
                          instructions * 0.01, instructions * 0.001,
                          instructions * 0.0001],
            )
            t += duration
    return builder.build()


window_counts = st.integers(min_value=1, max_value=9)


@given(traces(), window_counts)
@settings(max_examples=40, deadline=None)
def test_windows_partition_the_trace(trace, n_windows):
    """Every burst lands in exactly one window."""
    spec, windows = slice_trace(trace, n_windows=n_windows)
    assert len(windows) == spec.n_windows == n_windows
    assert sum(w.n_bursts for w in windows) == trace.n_bursts
    idx = spec.window_of(trace.begin)
    assert idx.min() >= 0 and idx.max() < n_windows
    for i, window in enumerate(windows):
        assert window.n_bursts == int((idx == i).sum())
        assert window.scenario[WINDOW_KEY] == i


@given(traces(), window_counts)
@settings(max_examples=40, deadline=None)
def test_concat_round_trips(trace, n_windows):
    """concat(slice(trace)) recovers the trace up to burst order."""
    _, windows = slice_trace(trace, n_windows=n_windows)
    rebuilt = concat_windows(windows)
    assert rebuilt.sorted_by_time() == trace.sorted_by_time()


@given(traces(), window_counts)
@settings(max_examples=40, deadline=None)
def test_per_rank_order_preserved(trace, n_windows):
    """Windowing a time-sorted trace keeps each rank's begins sorted."""
    ordered = trace.sorted_by_time()
    _, windows = slice_trace(ordered, n_windows=n_windows)
    for window in windows:
        for rank in range(window.nranks):
            begins = window.begin[window.rank == rank]
            assert np.all(np.diff(begins) >= 0)


@given(traces(), window_counts)
@settings(max_examples=30, deadline=None)
def test_nonempty_windows_stay_valid(trace, n_windows):
    """A valid trace slices into valid (non-empty) windows."""
    validate_trace(trace.sorted_by_time(), strict=True)
    _, windows = slice_trace(trace.sorted_by_time(), n_windows=n_windows)
    for window in windows:
        if window.n_bursts:
            validate_trace(window, strict=True)


@given(traces(), st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_width_mode_partitions_too(trace, width_s):
    """Fixed-width windows are a partition as well."""
    spec, windows = slice_trace(trace, window_ns=width_s * 1e9)
    assert spec.mode == "width"
    assert sum(w.n_bursts for w in windows) == trace.n_bursts
    span = float(trace.end.max() - trace.begin.min())
    if span > 0:
        # Model the count with the spec's *actual* width: the ns->s
        # round-trip (width_s * 1e9 * 1e-9) can differ from width_s by
        # one ulp, which flips the ceil right at window boundaries.
        assert spec.n_windows == max(1, int(np.ceil(span / spec.width)))


@given(traces())
@settings(max_examples=30, deadline=None)
def test_single_window_keeps_everything(trace):
    _, windows = slice_trace(trace, n_windows=1)
    assert len(windows) == 1
    assert windows[0].n_bursts == trace.n_bursts
    assert concat_windows(windows).sorted_by_time() == trace.sorted_by_time()


@given(traces())
@settings(max_examples=30, deadline=None)
def test_more_windows_than_bursts(trace):
    """Over-slicing yields empty windows but loses nothing."""
    n = trace.n_bursts + 3
    _, windows = slice_trace(trace, n_windows=n)
    assert len(windows) == n
    assert sum(w.n_bursts for w in windows) == trace.n_bursts
    assert sum(1 for w in windows if w.n_bursts == 0) >= 3


@given(traces())
@settings(max_examples=15, deadline=None)
def test_mode_argument_validation(trace):
    with pytest.raises(StreamError):
        slice_trace(trace)
    with pytest.raises(StreamError):
        slice_trace(trace, n_windows=2, window_ns=1e9)
    with pytest.raises(StreamError):
        slice_trace(trace, n_windows=0)
    with pytest.raises(StreamError):
        slice_trace(trace, window_ns=0.0)


def test_empty_trace_raises():
    builder = TraceBuilder(nranks=1, app="prop")
    trace = builder.build()
    with pytest.raises(StreamError):
        slice_trace(trace, n_windows=2)
