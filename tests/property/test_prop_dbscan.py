"""Property-based tests for DBSCAN invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering.dbscan import DBSCAN, NOISE
from scipy.spatial import cKDTree

points_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=0, max_value=60), st.just(2)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
eps_strategy = st.floats(min_value=0.05, max_value=3.0)
min_pts_strategy = st.integers(min_value=1, max_value=8)


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_labels_shape_and_range(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    assert result.labels.shape == (points.shape[0],)
    assert result.labels.min(initial=0) >= 0
    assert result.labels.max(initial=0) == result.n_clusters


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_cluster_ids_dense(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    present = set(result.labels.tolist()) - {NOISE}
    assert present == set(range(1, result.n_clusters + 1))


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_core_points_never_noise(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    assert (result.labels[result.core_mask] != NOISE).all()


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_core_definition_matches_neighbourhoods(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    if points.shape[0] == 0:
        return
    tree = cKDTree(points)
    counts = np.asarray([len(nb) for nb in tree.query_ball_point(points, eps)])
    np.testing.assert_array_equal(result.core_mask, counts >= min_pts)


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=30, deadline=None)
def test_min_pts_one_means_no_noise(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=1).fit(points)
    # With min_pts=1 every point is core, so nothing stays noise.
    if points.shape[0]:
        assert (result.labels != NOISE).all()


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=30, deadline=None)
def test_permutation_invariance_of_partition(points, eps, min_pts):
    """Relabelled cluster ids may differ, but the partition may not."""
    if points.shape[0] == 0:
        return
    rng = np.random.default_rng(0)
    perm = rng.permutation(points.shape[0])
    original = DBSCAN(eps=eps, min_pts=min_pts).fit(points).labels
    shuffled = DBSCAN(eps=eps, min_pts=min_pts).fit(points[perm]).labels
    # Noise sets must coincide.
    np.testing.assert_array_equal(original[perm] == NOISE, shuffled == NOISE)
    # Same-cluster relations must be preserved for clustered points.
    clustered = shuffled != NOISE
    idx = np.flatnonzero(clustered)
    for i in idx[: min(len(idx), 12)]:
        for j in idx[: min(len(idx), 12)]:
            same_original = original[perm][i] == original[perm][j]
            same_shuffled = shuffled[i] == shuffled[j]
            assert same_original == same_shuffled
