"""Property-based tests for DBSCAN invariants.

Includes the differential suite against :func:`dbscan_reference` — the
retained pure-Python BFS formulation is the executable specification,
and the grid-bucketed vectorised engine must reproduce its labels, core
mask and cluster count **exactly** (not up to relabelling) on every
input, including all-identical points and eps landing exactly on
lattice distances (bucket/boundary edges).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering.dbscan import DBSCAN, NOISE, dbscan_reference
from scipy.spatial import cKDTree

points_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=0, max_value=60), st.just(2)),
    elements=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
)
eps_strategy = st.floats(min_value=0.05, max_value=3.0)
min_pts_strategy = st.integers(min_value=1, max_value=8)


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_labels_shape_and_range(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    assert result.labels.shape == (points.shape[0],)
    assert result.labels.min(initial=0) >= 0
    assert result.labels.max(initial=0) == result.n_clusters


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_cluster_ids_dense(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    present = set(result.labels.tolist()) - {NOISE}
    assert present == set(range(1, result.n_clusters + 1))


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_core_points_never_noise(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    assert (result.labels[result.core_mask] != NOISE).all()


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=50, deadline=None)
def test_core_definition_matches_neighbourhoods(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    if points.shape[0] == 0:
        return
    tree = cKDTree(points)
    counts = np.asarray([len(nb) for nb in tree.query_ball_point(points, eps)])
    np.testing.assert_array_equal(result.core_mask, counts >= min_pts)


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=30, deadline=None)
def test_min_pts_one_means_no_noise(points, eps, min_pts):
    result = DBSCAN(eps=eps, min_pts=1).fit(points)
    # With min_pts=1 every point is core, so nothing stays noise.
    if points.shape[0]:
        assert (result.labels != NOISE).all()


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=30, deadline=None)
def test_permutation_invariance_of_partition(points, eps, min_pts):
    """Relabelled cluster ids may differ, but the partition may not."""
    if points.shape[0] == 0:
        return
    rng = np.random.default_rng(0)
    perm = rng.permutation(points.shape[0])
    original = DBSCAN(eps=eps, min_pts=min_pts).fit(points).labels
    shuffled = DBSCAN(eps=eps, min_pts=min_pts).fit(points[perm]).labels
    # Noise sets must coincide.
    np.testing.assert_array_equal(original[perm] == NOISE, shuffled == NOISE)
    # Same-cluster relations must be preserved for clustered points.
    clustered = shuffled != NOISE
    idx = np.flatnonzero(clustered)
    for i in idx[: min(len(idx), 12)]:
        for j in idx[: min(len(idx), 12)]:
            same_original = original[perm][i] == original[perm][j]
            same_shuffled = shuffled[i] == shuffled[j]
            assert same_original == same_shuffled


# ----------------------------------------------------------------------
# Differential suite: vectorised engine vs the reference BFS.


def _assert_matches_reference(points, eps, min_pts):
    fast = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
    ref = dbscan_reference(points, eps, min_pts)
    np.testing.assert_array_equal(fast.labels, ref.labels)
    np.testing.assert_array_equal(fast.core_mask, ref.core_mask)
    assert fast.n_clusters == ref.n_clusters


@given(points_strategy, eps_strategy, min_pts_strategy)
@settings(max_examples=60, deadline=None)
def test_matches_reference_random_2d(points, eps, min_pts):
    _assert_matches_reference(points, eps, min_pts)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=4),
        ),
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    ),
    eps_strategy,
    min_pts_strategy,
)
@settings(max_examples=40, deadline=None)
def test_matches_reference_other_dimensions(points, eps, min_pts):
    _assert_matches_reference(points, eps, min_pts)


@given(
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    eps_strategy,
    min_pts_strategy,
)
@settings(max_examples=30, deadline=None)
def test_matches_reference_all_identical_points(n, value, eps, min_pts):
    points = np.full((n, 2), value)
    _assert_matches_reference(points, eps, min_pts)


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(min_value=0, max_value=40), st.just(2)),
        elements=st.integers(min_value=-4, max_value=4),
    ),
    st.sampled_from([0.5, 1.0, float(np.sqrt(2.0)), 2.0, float(np.sqrt(5.0))]),
    min_pts_strategy,
)
@settings(max_examples=60, deadline=None)
def test_matches_reference_eps_on_lattice_distances(lattice, eps, min_pts):
    """Integer-lattice points with eps landing exactly on inter-point
    distances: every neighbourhood test sits on the <= eps boundary and
    every bucket edge coincides with point coordinates."""
    _assert_matches_reference(lattice.astype(np.float64), eps, min_pts)


@given(eps_strategy, min_pts_strategy)
@settings(max_examples=10, deadline=None)
def test_matches_reference_degenerate_sizes(eps, min_pts):
    _assert_matches_reference(np.empty((0, 2)), eps, min_pts)
    _assert_matches_reference(np.asarray([[0.3, -0.7]]), eps, min_pts)
