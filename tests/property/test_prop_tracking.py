"""Property-based tests for tracking invariants on synthetic frames."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.frames import make_frames
from repro.clustering.normalize import MinMaxScaler
from repro.tracking.scaling import normalize_frames
from repro.tracking.tracker import Tracker
from tests.conftest import build_two_region_trace


@given(
    st.floats(min_value=0.6, max_value=1.4),
    st.floats(min_value=0.3, max_value=0.55),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_two_region_tracking_always_resolves(ipc_a, ipc_b, seed):
    """Whatever mild IPC shift the second scenario applies, the two
    well-separated regions are tracked univocally."""
    traces = [
        build_two_region_trace(seed=seed, scenario={"run": 0}),
        build_two_region_trace(
            seed=seed + 1, scenario={"run": 1}, ipc_a=ipc_a, ipc_b=ipc_b
        ),
    ]
    result = Tracker(make_frames(traces)).run()
    assert result.coverage == 100
    assert len(result.tracked_regions) == 2


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_region_partition_invariants(seed):
    """Every cluster belongs to exactly one tracked region."""
    traces = [
        build_two_region_trace(seed=seed, scenario={"run": 0}),
        build_two_region_trace(seed=seed + 1, scenario={"run": 1}),
    ]
    result = Tracker(make_frames(traces)).run()
    for frame_index, frame in enumerate(result.frames):
        seen: set[int] = set()
        for region in result.regions:
            members = region.clusters_in(frame_index)
            assert not (members & seen)
            seen |= members
        assert seen == set(frame.cluster_ids)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-5.0, max_value=5.0),
            st.floats(min_value=-5.0, max_value=5.0),
        ),
        min_size=2,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_minmax_scaler_bounds(points):
    values = np.asarray(points, dtype=np.float64)
    scaler = MinMaxScaler.fit(values)
    scaled = scaler.transform(values)
    assert scaled.min() >= -1e-12
    assert scaled.max() <= 1 + 1e-12
    # Degenerate (constant) columns intentionally collapse to 0.5 and
    # cannot round-trip; check the inverse on the informative columns.
    informative = scaler.hi > scaler.lo
    np.testing.assert_allclose(
        scaler.inverse(scaled)[:, informative], values[:, informative], atol=1e-9
    )
