"""Property-based tests for the MPI simulator."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.perfmodel import WorkloadPoint
from repro.mpisim import MPISimulator

POINT = WorkloadPoint(
    work_units=1e4,
    instructions_per_unit=50.0,
    memory_accesses_per_unit=0.5,
    working_set_bytes=32 * 1024,
)

# A random but *valid* SPMD program: a shared schedule of operations all
# ranks execute identically (compute, barrier, allreduce, ring shift).
op_codes = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12)


def program_from_codes(codes):
    def program(rank, mpi):
        for code in codes:
            if code == 0:
                yield mpi.compute("work", POINT)
            elif code == 1:
                yield mpi.barrier()
            elif code == 2:
                yield mpi.allreduce(64)
            else:
                if mpi.nranks > 1:
                    yield mpi.sendrecv(
                        dest=(rank + 1) % mpi.nranks,
                        src=(rank - 1) % mpi.nranks,
                        nbytes=512,
                    )

    return program


@given(op_codes, st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=99))
@settings(max_examples=40, deadline=None)
def test_valid_spmd_programs_never_deadlock(codes, nranks, seed):
    trace = MPISimulator(nranks=nranks).run(program_from_codes(codes), seed=seed)
    expected_bursts = nranks * codes.count(0)
    assert trace.n_bursts == expected_bursts


@given(op_codes, st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=99))
@settings(max_examples=25, deadline=None)
def test_simulation_deterministic(codes, nranks, seed):
    sim = MPISimulator(nranks=nranks)
    first = sim.run(program_from_codes(codes), seed=seed)
    second = sim.run(program_from_codes(codes), seed=seed)
    assert first == second


@given(op_codes, st.integers(min_value=2, max_value=5))
@settings(max_examples=25, deadline=None)
def test_clocks_monotone_per_rank(codes, nranks):
    trace = MPISimulator(nranks=nranks).run(program_from_codes(codes))
    for rank in range(nranks):
        sub = trace.bursts_of_rank(rank)
        if sub.n_bursts > 1:
            assert (sub.begin[1:] >= sub.end[:-1] - 1e-12).all()


@given(op_codes, st.integers(min_value=2, max_value=5))
@settings(max_examples=25, deadline=None)
def test_counters_always_consistent(codes, nranks):
    trace = MPISimulator(nranks=nranks).run(program_from_codes(codes))
    if trace.n_bursts:
        np.testing.assert_allclose(
            trace.duration, trace.counter("PAPI_TOT_CYC") / trace.clock_hz
        )
        assert (trace.counter("PAPI_TOT_INS") > 0).all()
