"""Packaging-level checks: entry points, exports, module executability."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
from repro import errors


class TestModuleExecution:
    def test_python_dash_m(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "1.0.0" in completed.stdout

    def test_console_script_help(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "case studies" in completed.stdout


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_subpackage_errors_catchable(self):
        from repro.mpisim import DeadlockError

        assert issubclass(DeadlockError, errors.ReproError)


class TestSubpackageSurfaces:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.trace",
            "repro.machine",
            "repro.apps",
            "repro.mpisim",
            "repro.clustering",
            "repro.alignment",
            "repro.tracking",
            "repro.predict",
            "repro.viz",
            "repro.analysis",
        ],
    )
    def test_all_exports_resolve(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name}"
