"""Unit tests for Paraver trace interoperability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace.io import load_trace, save_trace
from repro.trace.prv import CALLER_EVENT_TYPE, COUNTER_EVENT_TYPES, load_prv, save_prv
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=3, iterations=3, scenario={"tasks": 3})


def assert_traces_close(a, b):
    """Equality up to Paraver's nanosecond/integer quantisation."""
    assert a.app == b.app
    assert a.scenario == b.scenario
    assert a.nranks == b.nranks
    assert a.n_bursts == b.n_bursts
    # Align both by (rank, begin) before comparing columns.
    a = a.sorted_by_time()
    b = b.sorted_by_time()
    np.testing.assert_array_equal(a.rank, b.rank)
    np.testing.assert_allclose(a.begin, b.begin, atol=2e-9)
    np.testing.assert_allclose(a.duration, b.duration, atol=2e-9)
    np.testing.assert_allclose(a.counters_matrix, b.counters_matrix, atol=0.51)
    paths_a = [str(a.callstacks.path(int(p))) for p in a.callpath_id]
    paths_b = [str(b.callstacks.path(int(p))) for p in b.callpath_id]
    assert paths_a == paths_b


class TestRoundTrip:
    def test_triplet_written(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        assert prv.exists()
        assert prv.with_suffix(".pcf").exists()
        assert prv.with_suffix(".row").exists()

    def test_roundtrip(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        assert_traces_close(load_prv(prv), trace)

    def test_extension_added(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run")
        assert prv.suffix == ".prv"

    def test_io_dispatch(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "run.prv")
        assert_traces_close(load_trace(path), trace)

    def test_header_format(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        header = prv.read_text().splitlines()[0]
        assert header.startswith("#Paraver")
        assert f":{trace.nranks}(" in header

    def test_record_structure(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        lines = prv.read_text().splitlines()[1:]
        states = [l for l in lines if l.startswith("1:")]
        events = [l for l in lines if l.startswith("2:")]
        assert len(states) == trace.n_bursts
        assert len(events) == trace.n_bursts
        # Every event carries the caller reference plus all counters.
        first_event = events[0].split(":")
        types = {int(first_event[i]) for i in range(6, len(first_event) - 1, 2)}
        assert CALLER_EVENT_TYPE in types
        assert set(COUNTER_EVENT_TYPES.values()) <= types

    def test_pcf_names_callpaths(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        pcf = prv.with_suffix(".pcf").read_text()
        assert "region_a@main.c:10" in pcf
        assert "PAPI_TOT_INS" in pcf

    def test_empty_trace(self, tmp_path):
        from repro.trace.trace import TraceBuilder

        empty = TraceBuilder(nranks=2, app="e").build()
        prv = save_prv(empty, tmp_path / "empty.prv")
        loaded = load_prv(prv)
        assert loaded.n_bursts == 0
        assert loaded.nranks == 2


class TestErrors:
    def test_missing_prv(self, tmp_path):
        with pytest.raises(TraceFormatError, match="missing"):
            load_prv(tmp_path / "nope.prv")

    def test_missing_pcf(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        prv.with_suffix(".pcf").unlink()
        with pytest.raises(TraceFormatError, match="configuration"):
            load_prv(prv)

    def test_not_a_paraver_file(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        prv.write_text("garbage\n")
        with pytest.raises(TraceFormatError, match="not a Paraver"):
            load_prv(prv)

    def test_malformed_record(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        content = prv.read_text() + "1:x:y\n"
        prv.write_text(content)
        with pytest.raises(TraceFormatError, match="malformed"):
            load_prv(prv)

    def test_event_without_state(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        content = prv.read_text() + f"2:1:1:1:1:999999999:{CALLER_EVENT_TYPE}:1\n"
        prv.write_text(content)
        with pytest.raises(TraceFormatError, match="no matching state"):
            load_prv(prv)

    def test_missing_meta(self, trace, tmp_path):
        prv = save_prv(trace, tmp_path / "run.prv")
        pcf = prv.with_suffix(".pcf")
        text = "\n".join(
            line for line in pcf.read_text().splitlines()
            if "repro-meta" not in line
        )
        pcf.write_text(text)
        with pytest.raises(TraceFormatError, match="repro-meta"):
            load_prv(prv)


class TestPipelineCompatibility:
    def test_prv_traces_track_identically(self, tmp_path):
        from repro import quick_track

        traces = [
            build_two_region_trace(seed=0, scenario={"run": 0}),
            build_two_region_trace(seed=1, scenario={"run": 1}),
        ]
        reloaded = [
            load_prv(save_prv(trace, tmp_path / f"t{i}.prv"))
            for i, trace in enumerate(traces)
        ]
        direct = quick_track(traces)
        via_prv = quick_track(reloaded)
        assert direct.coverage == via_prv.coverage
        assert len(direct.regions) == len(via_prv.regions)
