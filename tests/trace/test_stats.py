"""Unit tests for trace summary statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.counters import CYCLES, INSTRUCTIONS
from repro.trace.stats import per_callpath_totals, per_rank_totals, summarize
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=3, iterations=4)


class TestSummarize:
    def test_totals(self, trace):
        summary = summarize(trace)
        assert summary.n_bursts == trace.n_bursts
        assert summary.total_duration == pytest.approx(trace.total_time)
        assert summary.total_instructions == pytest.approx(
            float(trace.counter(INSTRUCTIONS).sum())
        )

    def test_mean_ipc_is_weighted(self, trace):
        summary = summarize(trace)
        expected = trace.counter(INSTRUCTIONS).sum() / trace.counter(CYCLES).sum()
        assert summary.mean_ipc == pytest.approx(expected)

    def test_empty_trace(self):
        from repro.trace.trace import TraceBuilder

        summary = summarize(TraceBuilder(nranks=1).build())
        assert summary.n_bursts == 0
        assert summary.mean_ipc == 0.0

    def test_per_callpath_keys(self, trace):
        summary = summarize(trace)
        assert set(summary.per_callpath_duration) == {"10 (main.c)", "20 (main.c)"}


class TestPerRank:
    def test_shape_covers_all_ranks(self, trace):
        totals = per_rank_totals(trace)
        assert totals.shape == (trace.nranks,)

    def test_sums_match(self, trace):
        totals = per_rank_totals(trace, "duration")
        assert totals.sum() == pytest.approx(trace.total_time)

    def test_metric_choice(self, trace):
        instr = per_rank_totals(trace, "instructions")
        assert instr.sum() == pytest.approx(float(trace.counter(INSTRUCTIONS).sum()))


class TestPerCallpath:
    def test_sums_match(self, trace):
        totals = per_callpath_totals(trace)
        assert sum(totals.values()) == pytest.approx(trace.total_time)

    def test_region_b_dominates(self, trace):
        # Region b has 4x the instructions at half the IPC: 8x duration.
        totals = per_callpath_totals(trace)
        assert totals["20 (main.c)"] > 4 * totals["10 (main.c)"]
