"""Unit tests for the Trace container and TraceBuilder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.burst import CPUBurst
from repro.trace.callstack import CallPath, CallstackTable
from repro.trace.counters import INSTRUCTIONS, STANDARD_COUNTERS
from repro.trace.trace import Trace, TraceBuilder
from tests.conftest import build_two_region_trace


class TestTraceBasics:
    def test_n_bursts(self, toy_trace):
        assert toy_trace.n_bursts == 4 * 5 * 2
        assert len(toy_trace) == toy_trace.n_bursts

    def test_columns_read_only(self, toy_trace):
        with pytest.raises(ValueError):
            toy_trace.rank[0] = 3
        with pytest.raises(ValueError):
            toy_trace.duration[0] = 0.0

    def test_total_time_positive(self, toy_trace):
        assert toy_trace.total_time > 0
        assert toy_trace.makespan > 0

    def test_makespan_at_most_total(self, toy_trace):
        # With 4 ranks running concurrently, CPU time exceeds makespan.
        assert toy_trace.makespan < toy_trace.total_time

    def test_counter_unknown_raises(self, toy_trace):
        with pytest.raises(KeyError):
            toy_trace.counter("NOPE")

    def test_metric_delegates(self, toy_trace):
        np.testing.assert_allclose(
            toy_trace.metric("instructions"), toy_trace.counter(INSTRUCTIONS)
        )

    def test_label_includes_scenario(self):
        trace = build_two_region_trace(scenario={"tasks": 4}, app="X")
        assert trace.label() == "X(tasks=4)"

    def test_label_no_scenario(self, toy_trace):
        assert toy_trace.label() == "toy"

    def test_repr(self, toy_trace):
        assert "n_bursts=40" in repr(toy_trace)

    def test_empty_trace_allowed(self):
        trace = TraceBuilder(nranks=1).build()
        assert trace.n_bursts == 0
        assert trace.makespan == 0.0


class TestTraceValidation:
    def test_mismatched_columns(self):
        table = CallstackTable([CallPath.single("f", "a.c", 1)])
        with pytest.raises(TraceError, match="column"):
            Trace(
                rank=np.zeros(3, dtype=np.int32),
                begin=np.zeros(2),
                duration=np.zeros(3),
                callpath_id=np.zeros(3, dtype=np.int32),
                counters=np.zeros((3, 5)),
                callstacks=table,
                nranks=1,
            )

    def test_bad_counter_shape(self):
        table = CallstackTable([CallPath.single("f", "a.c", 1)])
        with pytest.raises(TraceError, match="counters"):
            Trace(
                rank=np.zeros(3, dtype=np.int32),
                begin=np.zeros(3),
                duration=np.zeros(3),
                callpath_id=np.zeros(3, dtype=np.int32),
                counters=np.zeros((3, 2)),
                callstacks=table,
                nranks=1,
            )

    def test_rank_out_of_range(self):
        table = CallstackTable([CallPath.single("f", "a.c", 1)])
        with pytest.raises(TraceError, match="ranks"):
            Trace(
                rank=np.asarray([0, 5], dtype=np.int32),
                begin=np.zeros(2),
                duration=np.zeros(2),
                callpath_id=np.zeros(2, dtype=np.int32),
                counters=np.zeros((2, 5)),
                callstacks=table,
                nranks=2,
            )

    def test_bad_callpath_id(self):
        table = CallstackTable([CallPath.single("f", "a.c", 1)])
        with pytest.raises(TraceError, match="callpath"):
            Trace(
                rank=np.zeros(1, dtype=np.int32),
                begin=np.zeros(1),
                duration=np.zeros(1),
                callpath_id=np.asarray([7], dtype=np.int32),
                counters=np.zeros((1, 5)),
                callstacks=table,
                nranks=1,
            )

    def test_nonpositive_nranks(self):
        with pytest.raises(TraceError):
            TraceBuilder(nranks=0)

    def test_negative_duration(self):
        table = CallstackTable([CallPath.single("f", "a.c", 1)])
        with pytest.raises(TraceError, match="durations"):
            Trace(
                rank=np.zeros(1, dtype=np.int32),
                begin=np.zeros(1),
                duration=np.asarray([-1.0]),
                callpath_id=np.zeros(1, dtype=np.int32),
                counters=np.zeros((1, 5)),
                callstacks=table,
                nranks=1,
            )


class TestSelection:
    def test_select_mask(self, toy_trace):
        sub = toy_trace.select(toy_trace.rank == 0)
        assert sub.n_bursts == 10
        assert (sub.rank == 0).all()
        assert sub.nranks == toy_trace.nranks

    def test_select_preserves_metadata(self, toy_trace):
        sub = toy_trace.select(toy_trace.duration > 0)
        assert sub.app == toy_trace.app
        assert sub.counter_names == toy_trace.counter_names

    def test_select_wrong_mask_shape(self, toy_trace):
        with pytest.raises(TraceError):
            toy_trace.select(np.ones(3, dtype=bool))

    def test_bursts_of_rank_ordered(self, toy_trace):
        sub = toy_trace.bursts_of_rank(2)
        assert (np.diff(sub.begin) >= 0).all()

    def test_sorted_by_time(self, toy_trace):
        ordered = toy_trace.sorted_by_time()
        assert (np.diff(ordered.begin) >= 0).all()
        assert ordered.n_bursts == toy_trace.n_bursts

    def test_ranks_present(self, toy_trace):
        np.testing.assert_array_equal(toy_trace.ranks_present(), [0, 1, 2, 3])


class TestBurstMaterialisation:
    def test_burst_roundtrip(self, toy_trace):
        burst = toy_trace.burst(0)
        assert isinstance(burst, CPUBurst)
        assert burst.rank == toy_trace.rank[0]
        assert burst.counters[INSTRUCTIONS] == toy_trace.counter(INSTRUCTIONS)[0]

    def test_burst_out_of_range(self, toy_trace):
        with pytest.raises(IndexError):
            toy_trace.burst(10**6)

    def test_bursts_iterator_length(self, toy_trace):
        assert sum(1 for _ in toy_trace.bursts()) == toy_trace.n_bursts

    def test_from_bursts_roundtrip(self, toy_trace):
        rebuilt = Trace.from_bursts(
            toy_trace.bursts(),
            nranks=toy_trace.nranks,
            app=toy_trace.app,
            scenario=toy_trace.scenario,
        )
        assert rebuilt == toy_trace


class TestTraceBuilder:
    def test_add_block_matches_individual_adds(self):
        path = CallPath.single("f", "a.c", 1)
        b1 = TraceBuilder(nranks=3)
        b2 = TraceBuilder(nranks=3)
        ranks = np.arange(3)
        begin = np.asarray([0.0, 0.1, 0.2])
        duration = np.asarray([1.0, 1.1, 1.2])
        counters = np.arange(15, dtype=np.float64).reshape(3, 5)
        b1.add_block(rank=ranks, begin=begin, duration=duration, callpath=path,
                     counters=counters)
        for i in range(3):
            b2.add(rank=i, begin=begin[i], duration=duration[i], callpath=path,
                   counters=counters[i])
        assert b1.build() == b2.build()

    def test_add_wrong_counter_count(self):
        builder = TraceBuilder(nranks=1)
        with pytest.raises(TraceError):
            builder.add(
                rank=0, begin=0, duration=0,
                callpath=CallPath.single("f", "a.c", 1), counters=[1.0],
            )

    def test_add_block_wrong_shape(self):
        builder = TraceBuilder(nranks=2)
        with pytest.raises(TraceError):
            builder.add_block(
                rank=np.arange(2),
                begin=np.zeros(2),
                duration=np.zeros(2),
                callpath=CallPath.single("f", "a.c", 1),
                counters=np.zeros((2, 3)),
            )

    def test_len_tracks_appends(self):
        builder = TraceBuilder(nranks=1)
        assert len(builder) == 0
        builder.add(rank=0, begin=0, duration=0,
                    callpath=CallPath.single("f", "a.c", 1),
                    counters=[0.0] * len(STANDARD_COUNTERS))
        assert len(builder) == 1

    def test_equality_detects_differences(self, toy_trace):
        other = build_two_region_trace(seed=99)
        assert toy_trace != other
        assert toy_trace == build_two_region_trace()
