"""Unit tests for counter definitions and derived metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import counters as C
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=2, iterations=2)


class TestDerivedMetrics:
    def test_ipc_matches_ratio(self, trace):
        ipc = C.metric_values(trace, "ipc")
        expected = trace.counter(C.INSTRUCTIONS) / trace.counter(C.CYCLES)
        np.testing.assert_allclose(ipc, expected)

    def test_duration_metric(self, trace):
        np.testing.assert_allclose(C.metric_values(trace, "duration"), trace.duration)

    def test_raw_counter_passthrough(self, trace):
        np.testing.assert_allclose(
            C.metric_values(trace, C.L1_DCM), trace.counter(C.L1_DCM)
        )

    def test_mpki(self, trace):
        mpki = C.metric_values(trace, "l1_mpki")
        expected = 1000 * trace.counter(C.L1_DCM) / trace.counter(C.INSTRUCTIONS)
        np.testing.assert_allclose(mpki, expected)

    def test_mips(self, trace):
        mips = C.metric_values(trace, "mips")
        expected = 1e-6 * trace.counter(C.INSTRUCTIONS) / trace.duration
        np.testing.assert_allclose(mips, expected)

    def test_unknown_metric_raises(self, trace):
        with pytest.raises(KeyError, match="unknown metric"):
            C.metric_values(trace, "flops")

    def test_metric_returns_copy(self, trace):
        values = C.metric_values(trace, "instructions")
        values[:] = 0.0
        assert trace.counter(C.INSTRUCTIONS).sum() > 0

    def test_all_registered_metrics_evaluate(self, trace):
        for name in C.derived_metric_names():
            values = C.metric_values(trace, name)
            assert values.shape == (trace.n_bursts,)
            assert np.isfinite(values).all()


class TestExtensiveness:
    def test_instructions_extensive(self):
        assert C.is_extensive_metric("instructions")

    def test_ipc_intensive(self):
        assert not C.is_extensive_metric("ipc")

    def test_mpki_intensive(self):
        assert not C.is_extensive_metric("l2_mpki")

    def test_raw_counters_extensive(self):
        assert C.is_extensive_metric(C.INSTRUCTIONS)
        assert C.is_extensive_metric("SOME_UNKNOWN_COUNTER")


class TestRegistry:
    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            C.register_metric("ipc", lambda t: t.duration)

    def test_register_and_use_custom_metric(self, trace):
        name = "test_custom_metric"
        if name not in C.DERIVED_METRICS:
            C.register_metric(name, lambda t: 2.0 * t.duration, extensive=True)
        try:
            np.testing.assert_allclose(
                C.metric_values(trace, name), 2.0 * trace.duration
            )
            assert C.is_extensive_metric(name)
        finally:
            C.DERIVED_METRICS.pop(name, None)

    def test_standard_counter_index(self):
        assert C.standard_counter_index(C.INSTRUCTIONS) == 0
        with pytest.raises(KeyError):
            C.standard_counter_index("NOPE")

    def test_safe_division_zero_cycles(self):
        trace = build_two_region_trace(nranks=1, iterations=1)
        # Zero the cycle counter via a rebuilt trace.
        import numpy as np

        from repro.trace.trace import Trace

        counters = trace.counters_matrix.copy()
        counters[:, 1] = 0.0
        zeroed = Trace(
            rank=trace.rank.copy(),
            begin=trace.begin.copy(),
            duration=trace.duration.copy(),
            callpath_id=trace.callpath_id.copy(),
            counters=counters,
            counter_names=trace.counter_names,
            callstacks=trace.callstacks,
            nranks=trace.nranks,
        )
        assert (C.metric_values(zeroed, "ipc") == 0).all()
