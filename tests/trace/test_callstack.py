"""Unit tests for the call-path model and interning table."""

from __future__ import annotations

import pytest

from repro.trace.callstack import CallPath, CallstackTable, StackFrame


class TestStackFrame:
    def test_str_roundtrip(self):
        frame = StackFrame("solve", "solver.f90", 128)
        assert StackFrame.parse(str(frame)) == frame

    def test_str_format(self):
        assert str(StackFrame("f", "a.c", 3)) == "f@a.c:3"

    def test_parse_with_colons_in_file(self):
        frame = StackFrame.parse("fn@C:/path/file.c:12")
        assert frame.file == "C:/path/file.c"
        assert frame.line == 12

    def test_negative_line_rejected(self):
        with pytest.raises(ValueError):
            StackFrame("f", "a.c", -1)

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            StackFrame.parse("not-a-frame")

    def test_frozen(self):
        frame = StackFrame("f", "a.c", 1)
        with pytest.raises(AttributeError):
            frame.line = 2  # type: ignore[misc]


class TestCallPath:
    def test_single(self):
        path = CallPath.single("main", "main.c", 5)
        assert path.depth == 1
        assert path.leaf.function == "main"

    def test_leaf_is_innermost(self):
        path = CallPath.of(
            StackFrame("main", "main.c", 1),
            StackFrame("solve", "solve.c", 2),
        )
        assert path.leaf.function == "solve"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CallPath(frames=())

    def test_str_roundtrip_multiframe(self):
        path = CallPath.of(
            StackFrame("main", "main.c", 1),
            StackFrame("solve", "solve.c", 22),
            StackFrame("kernel", "kernel.c", 333),
        )
        assert CallPath.parse(str(path)) == path

    def test_short_form(self):
        path = CallPath.single("f", "module_comm_dm.f90", 6474)
        assert path.short() == "6474 (module_comm_dm.f90)"

    def test_iteration_order(self):
        frames = (StackFrame("a", "a.c", 1), StackFrame("b", "b.c", 2))
        assert tuple(CallPath(frames)) == frames

    def test_hashable_and_equal(self):
        p1 = CallPath.single("f", "a.c", 1)
        p2 = CallPath.single("f", "a.c", 1)
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestCallstackTable:
    def test_intern_dedupes(self):
        table = CallstackTable()
        p = CallPath.single("f", "a.c", 1)
        assert table.intern(p) == table.intern(CallPath.single("f", "a.c", 1))
        assert len(table) == 1

    def test_ids_are_dense(self):
        table = CallstackTable()
        ids = [table.intern(CallPath.single("f", "a.c", i)) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_path_lookup(self):
        table = CallstackTable()
        p = CallPath.single("f", "a.c", 9)
        pid = table.intern(p)
        assert table.path(pid) == p

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            CallstackTable().path(0)

    def test_id_of_uninterned_raises(self):
        with pytest.raises(KeyError):
            CallstackTable().id_of(CallPath.single("f", "a.c", 1))

    def test_contains(self):
        table = CallstackTable()
        p = CallPath.single("f", "a.c", 1)
        assert p not in table
        table.intern(p)
        assert p in table

    def test_string_roundtrip(self):
        table = CallstackTable(
            [
                CallPath.single("f", "a.c", 1),
                CallPath.of(StackFrame("m", "m.c", 2), StackFrame("g", "g.c", 3)),
            ]
        )
        rebuilt = CallstackTable.from_strings(table.to_strings())
        assert rebuilt == table

    def test_constructor_interns_iterable(self):
        paths = [CallPath.single("f", "a.c", i) for i in range(3)]
        table = CallstackTable(paths)
        assert list(table) == paths
