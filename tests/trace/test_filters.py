"""Unit tests for burst selection filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.filters import (
    filter_min_duration,
    filter_ranks,
    filter_time_window,
    filter_top_duration_fraction,
)
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace()


class TestMinDuration:
    def test_removes_short_bursts(self, trace):
        threshold = float(np.median(trace.duration))
        filtered = filter_min_duration(trace, threshold)
        assert filtered.n_bursts < trace.n_bursts
        assert (filtered.duration >= threshold).all()

    def test_zero_threshold_keeps_all(self, trace):
        assert filter_min_duration(trace, 0.0).n_bursts == trace.n_bursts

    def test_negative_threshold_rejected(self, trace):
        with pytest.raises(ValueError):
            filter_min_duration(trace, -1.0)


class TestTopDurationFraction:
    def test_full_fraction_keeps_all(self, trace):
        assert filter_top_duration_fraction(trace, 1.0).n_bursts == trace.n_bursts

    def test_coverage_at_least_requested(self, trace):
        for fraction in (0.2, 0.5, 0.9):
            kept = filter_top_duration_fraction(trace, fraction)
            assert kept.total_time >= fraction * trace.total_time

    def test_keeps_longest_bursts(self, trace):
        kept = filter_top_duration_fraction(trace, 0.3)
        # The filter takes bursts from the top of the duration ranking,
        # so the shortest kept burst must be at least as long as the
        # (n_kept)-th longest burst overall.
        ranked = np.sort(trace.duration)[::-1]
        assert kept.duration.min() >= ranked[kept.n_bursts - 1] - 1e-15

    def test_bad_fraction_rejected(self, trace):
        with pytest.raises(ValueError):
            filter_top_duration_fraction(trace, 0.0)
        with pytest.raises(ValueError):
            filter_top_duration_fraction(trace, 1.5)

    def test_empty_trace(self):
        from repro.trace.trace import TraceBuilder

        empty = TraceBuilder(nranks=1).build()
        assert filter_top_duration_fraction(empty, 0.5).n_bursts == 0


class TestRankFilter:
    def test_keeps_only_requested(self, trace):
        filtered = filter_ranks(trace, [0, 2])
        assert set(filtered.rank.tolist()) == {0, 2}

    def test_empty_selection(self, trace):
        assert filter_ranks(trace, []).n_bursts == 0


class TestTimeWindow:
    def test_window_bounds(self, trace):
        mid = trace.makespan / 2
        first = filter_time_window(trace, 0.0, mid)
        second = filter_time_window(trace, mid, trace.makespan + 1)
        assert first.n_bursts + second.n_bursts == trace.n_bursts
        assert (first.begin < mid).all()
        assert (second.begin >= mid).all()

    def test_empty_window_rejected(self, trace):
        with pytest.raises(ValueError):
            filter_time_window(trace, 1.0, 1.0)
