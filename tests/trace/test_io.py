"""Unit tests for trace persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceFormatError
from repro.trace.io import load_trace, save_trace, trace_from_json, trace_to_json
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=2, iterations=3, scenario={"tasks": 2})


class TestJsonRoundtrip:
    def test_dict_roundtrip(self, trace):
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_file_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.json")
        assert load_trace(path) == trace

    def test_gzip_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.json.gz")
        assert path.name.endswith(".json.gz")
        assert load_trace(path) == trace

    def test_empty_trace_roundtrip(self, tmp_path):
        from repro.trace.trace import TraceBuilder

        trace = TraceBuilder(nranks=1).build()
        path = save_trace(trace, tmp_path / "empty.json")
        assert load_trace(path).n_bursts == 0

    def test_scenario_preserved(self, trace, tmp_path):
        loaded = load_trace(save_trace(trace, tmp_path / "t.json"))
        assert loaded.scenario == {"tasks": 2}


class TestCsvRoundtrip:
    def test_file_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        assert load_trace(path) == trace

    def test_gzip_roundtrip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv.gz")
        assert load_trace(path) == trace

    def test_csv_is_humanly_structured(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# repro-trace-csv")
        assert lines[2].split(",")[:4] == ["rank", "begin", "duration", "callpath_id"]


class TestErrors:
    def test_unknown_extension(self, trace, tmp_path):
        with pytest.raises(TraceFormatError, match="extension"):
            save_trace(trace, tmp_path / "t.bin")
        with pytest.raises(TraceFormatError, match="extension"):
            load_trace(tmp_path / "t.bin")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(TraceFormatError, match="format"):
            load_trace(path)

    def test_wrong_version(self, trace, tmp_path):
        doc = trace_to_json(trace)
        doc["version"] = 99
        with pytest.raises(TraceFormatError, match="version"):
            trace_from_json(doc)

    def test_missing_columns(self, trace):
        doc = trace_to_json(trace)
        del doc["columns"]
        with pytest.raises(TraceFormatError, match="malformed"):
            trace_from_json(doc)

    def test_csv_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("rank,begin\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_csv_bad_row(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        content = path.read_text() + "not,a,valid,row\n"
        path.write_text(content)
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_creates_parent_directories(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "deep" / "dir" / "t.json")
        assert path.exists()
