"""Unit tests for the CPUBurst record."""

from __future__ import annotations

import pytest

from repro.trace.burst import CPUBurst
from repro.trace.callstack import CallPath
from repro.trace.counters import CYCLES, INSTRUCTIONS

PATH = CallPath.single("f", "a.c", 1)


def make_burst(**overrides):
    base = dict(
        rank=0,
        begin=1.0,
        duration=0.5,
        callpath=PATH,
        counters={INSTRUCTIONS: 100.0, CYCLES: 200.0},
    )
    base.update(overrides)
    return CPUBurst(**base)


class TestCPUBurst:
    def test_end(self):
        assert make_burst().end == 1.5

    def test_ipc(self):
        assert make_burst().ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert make_burst(counters={INSTRUCTIONS: 5.0}).ipc == 0.0

    def test_counter_access(self):
        assert make_burst().counter(INSTRUCTIONS) == 100.0

    def test_missing_counter_raises_with_context(self):
        with pytest.raises(KeyError, match="available"):
            make_burst().counter("PAPI_BR_MSP")

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            make_burst(rank=-1)

    def test_negative_begin_rejected(self):
        with pytest.raises(ValueError):
            make_burst(begin=-0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_burst(duration=-0.1)

    def test_counters_are_immutable(self):
        burst = make_burst()
        with pytest.raises(TypeError):
            burst.counters[INSTRUCTIONS] = 0.0  # type: ignore[index]

    def test_repr_contains_key_fields(self):
        text = repr(make_burst())
        assert "rank=0" in text and "ipc=0.500" in text
