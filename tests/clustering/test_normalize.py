"""Unit tests for axis normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.normalize import MinMaxScaler, normalize_columns
from repro.errors import ClusteringError


class TestMinMaxScaler:
    def test_maps_to_unit_box(self):
        values = np.asarray([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled, scaler = normalize_columns(values)
        np.testing.assert_allclose(scaled.min(axis=0), [0.0, 0.0])
        np.testing.assert_allclose(scaled.max(axis=0), [1.0, 1.0])

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(40, 3)) * [1.0, 100.0, 1e-6]
        scaled, scaler = normalize_columns(values)
        np.testing.assert_allclose(scaler.inverse(scaled), values, atol=1e-12)

    def test_degenerate_column_maps_to_half(self):
        values = np.asarray([[1.0, 5.0], [2.0, 5.0]])
        scaled, _ = normalize_columns(values)
        np.testing.assert_allclose(scaled[:, 1], [0.5, 0.5])

    def test_transform_out_of_range(self):
        scaler = MinMaxScaler.fit(np.asarray([[0.0], [10.0]]))
        assert scaler.transform(np.asarray([[20.0]]))[0, 0] == pytest.approx(2.0)

    def test_fit_union(self):
        a = np.asarray([[0.0, 0.0]])
        b = np.asarray([[10.0, 1.0]])
        scaler = MinMaxScaler.fit_union([a, b])
        np.testing.assert_allclose(scaler.lo, [0.0, 0.0])
        np.testing.assert_allclose(scaler.hi, [10.0, 1.0])

    def test_fit_union_empty_rejected(self):
        with pytest.raises(ClusteringError):
            MinMaxScaler.fit_union([])

    def test_fit_empty_rejected(self):
        with pytest.raises(ClusteringError):
            MinMaxScaler.fit(np.empty((0, 2)))

    def test_fit_1d_rejected(self):
        with pytest.raises(ClusteringError):
            MinMaxScaler.fit(np.zeros(5))

    def test_fit_nan_rejected(self):
        with pytest.raises(ClusteringError):
            MinMaxScaler.fit(np.asarray([[np.nan, 1.0]]))

    def test_span_never_zero(self):
        scaler = MinMaxScaler.fit(np.asarray([[3.0], [3.0]]))
        assert scaler.span[0] == 1.0
