"""Unit tests for frame construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import Frame, FrameSettings, make_frame, make_frames
from repro.errors import ClusteringError
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=6, iterations=6)


class TestFrameSettings:
    def test_defaults_are_paper_axes(self):
        settings = FrameSettings()
        assert settings.x_metric == "ipc"
        assert settings.y_metric == "instructions"

    def test_validation(self):
        with pytest.raises(ClusteringError):
            FrameSettings(eps=0.0)
        with pytest.raises(ClusteringError):
            FrameSettings(min_pts=0)
        with pytest.raises(ClusteringError):
            FrameSettings(relevance=0.0)
        with pytest.raises(ClusteringError):
            FrameSettings(min_duration=-1.0)


class TestMakeFrame:
    def test_finds_two_regions(self, trace):
        frame = make_frame(trace)
        assert frame.n_clusters == 2

    def test_cluster_one_is_longest(self, trace):
        frame = make_frame(trace)
        durations = [frame.cluster(cid).total_duration for cid in frame.cluster_ids]
        assert durations == sorted(durations, reverse=True)

    def test_points_are_raw_metrics(self, trace):
        frame = make_frame(trace)
        np.testing.assert_allclose(frame.points[:, 0], trace.metric("ipc"))
        np.testing.assert_allclose(frame.points[:, 1], trace.metric("instructions"))

    def test_custom_axes(self, trace):
        frame = make_frame(trace, FrameSettings(x_metric="ipc", y_metric="duration"))
        np.testing.assert_allclose(frame.points[:, 1], trace.duration)

    def test_callpaths_attached(self, trace):
        frame = make_frame(trace)
        paths = set()
        for cid in frame.cluster_ids:
            paths |= frame.cluster(cid).callpaths
        assert paths == {"region_a@main.c:10", "region_b@main.c:20"}

    def test_ranks_attached(self, trace):
        frame = make_frame(trace)
        for cid in frame.cluster_ids:
            assert frame.cluster(cid).ranks == frozenset(range(6))

    def test_rank_sequences_alternate(self, trace):
        frame = make_frame(trace)
        sequences = frame.rank_sequences
        assert set(sequences) == set(range(6))
        for seq in sequences.values():
            assert len(seq) == 12  # 6 iterations x 2 regions
            assert len(set(seq.tolist())) == 2

    def test_min_duration_filters(self, trace):
        cutoff = float(np.median(trace.duration))
        frame = make_frame(trace, FrameSettings(min_duration=cutoff))
        assert frame.n_points < trace.n_bursts

    def test_empty_trace_rejected(self):
        from repro.trace.trace import TraceBuilder

        with pytest.raises(ClusteringError, match="no bursts"):
            make_frame(TraceBuilder(nranks=1).build())

    def test_log_y_requires_positive(self, trace):
        frame = make_frame(trace, FrameSettings(log_y=True))
        assert frame.n_clusters == 2

    def test_relevance_filter_drops_small_cluster(self):
        # Region a is ~1/9 of total time; a 0.85 relevance keeps only b.
        trace = build_two_region_trace(nranks=6, iterations=6)
        frame = make_frame(trace, FrameSettings(relevance=0.85))
        assert frame.n_clusters == 1

    def test_relevance_relabels_dropped_to_zero(self):
        trace = build_two_region_trace(nranks=6, iterations=6)
        frame = make_frame(trace, FrameSettings(relevance=0.85))
        # Dense renumbering: the surviving cluster is id 1.
        assert frame.cluster_ids == (1,)
        assert (frame.labels <= 1).all()

    def test_cluster_metric_weighted_ipc(self, trace):
        frame = make_frame(trace)
        indices = frame.cluster(1).indices
        expected = (
            trace.metric("instructions")[indices].sum()
            / trace.metric("cycles")[indices].sum()
        )
        assert frame.cluster_metric(1, "ipc") == pytest.approx(expected)

    def test_cluster_metric_unweighted(self, trace):
        frame = make_frame(trace)
        weighted = frame.cluster_metric(1, "ipc", weighted=True)
        unweighted = frame.cluster_metric(1, "ipc", weighted=False)
        assert weighted == pytest.approx(unweighted, rel=0.05)

    def test_cluster_total(self, trace):
        frame = make_frame(trace)
        total = sum(frame.cluster_total(cid, "duration") for cid in frame.cluster_ids)
        noise_total = trace.duration[frame.cluster_set.noise_indices].sum()
        assert total + noise_total == pytest.approx(trace.total_time)

    def test_make_frames_shares_settings(self, trace):
        other = build_two_region_trace(seed=5, nranks=6, iterations=6)
        frames = make_frames([trace, other], FrameSettings(eps=0.05))
        assert all(f.settings.eps == 0.05 for f in frames)
        assert len(frames) == 2

    def test_repr(self, trace):
        assert "n_clusters=2" in repr(make_frame(trace))
