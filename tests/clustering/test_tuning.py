"""Unit tests for automatic DBSCAN parameter selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import FrameSettings, make_frame
from repro.clustering.tuning import auto_settings, kdist_eps, tune_eps
from repro.errors import ClusteringError
from tests.conftest import build_two_region_trace


@pytest.fixture
def trace():
    return build_two_region_trace(nranks=8, iterations=8)


class TestKDistEps:
    def test_separates_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = 0.01 * rng.standard_normal((100, 2))
        blob_b = [0.5, 0.5] + 0.01 * rng.standard_normal((100, 2))
        points = np.vstack([blob_a, blob_b])
        eps = kdist_eps(points, k=5)
        # Large enough to hold a blob together, far smaller than the
        # inter-blob distance.
        assert 0.005 < eps < 0.3

    def test_needs_enough_points(self):
        with pytest.raises(ClusteringError):
            kdist_eps(np.zeros((3, 2)), k=5)

    def test_degenerate_points(self):
        points = np.zeros((50, 2))
        eps = kdist_eps(points, k=5)
        assert eps > 0

    def test_subsampling(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(6000, 2))
        eps = kdist_eps(points, k=5, max_points=500)
        assert np.isfinite(eps) and eps > 0


class TestTuneEps:
    def test_finds_two_regions(self, trace):
        result = tune_eps(trace)
        assert result.best.n_clusters == 2
        frame = make_frame(trace, FrameSettings(eps=result.eps))
        assert frame.n_clusters == 2

    def test_candidates_reported_in_order(self, trace):
        result = tune_eps(trace)
        eps_values = [c.eps for c in result.candidates]
        assert eps_values == sorted(eps_values)

    def test_custom_ladder(self, trace):
        result = tune_eps(trace, candidates=np.asarray([0.02, 0.04, 0.08]))
        assert result.eps in (0.02, 0.04, 0.08)

    def test_bad_candidates(self, trace):
        with pytest.raises(ClusteringError):
            tune_eps(trace, candidates=np.asarray([-0.1, 0.05]))

    def test_all_noise_ladder_rejected(self, trace):
        with pytest.raises(ClusteringError, match="widen"):
            tune_eps(trace, candidates=np.asarray([1e-7, 2e-7]))


class TestAutoSettings:
    def test_plateau_method(self, trace):
        settings = auto_settings(trace)
        frame = make_frame(trace, settings)
        assert frame.n_clusters == 2

    def test_kdist_method(self, trace):
        settings = auto_settings(trace, method="kdist")
        assert settings.eps > 0
        frame = make_frame(trace, settings)
        assert frame.n_clusters >= 1

    def test_unknown_method(self, trace):
        with pytest.raises(ClusteringError):
            auto_settings(trace, method="magic")

    def test_preserves_other_settings(self, trace):
        base = FrameSettings(relevance=0.99, x_metric="ipc")
        tuned = auto_settings(trace, settings=base)
        assert tuned.relevance == 0.99
        assert tuned.eps != base.eps or True  # eps replaced, rest kept
