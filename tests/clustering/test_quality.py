"""Unit tests for clustering quality measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.quality import cluster_quality, silhouette_samples, silhouette_score
from repro.errors import ClusteringError


def blobs(seed=0):
    rng = np.random.default_rng(seed)
    a = 0.05 * rng.standard_normal((40, 2))
    b = [4.0, 4.0] + 0.05 * rng.standard_normal((40, 2))
    points = np.vstack([a, b])
    labels = np.asarray([1] * 40 + [2] * 40)
    return points, labels


class TestSilhouette:
    def test_well_separated_high_score(self):
        points, labels = blobs()
        assert silhouette_score(points, labels) > 0.9

    def test_shuffled_labels_low_score(self):
        points, labels = blobs()
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        assert silhouette_score(points, shuffled) < 0.2

    def test_single_cluster_zero(self):
        points, _ = blobs()
        labels = np.ones(points.shape[0], dtype=int)
        assert silhouette_score(points, labels) == 0.0

    def test_noise_excluded(self):
        points, labels = blobs()
        labels = labels.copy()
        labels[:5] = 0
        samples = silhouette_samples(points, labels)
        assert samples.shape[0] == 75

    def test_empty_after_noise(self):
        points = np.zeros((3, 2))
        labels = np.zeros(3, dtype=int)
        assert silhouette_samples(points, labels).size == 0

    def test_subsampling_cap(self):
        points, labels = blobs()
        samples = silhouette_samples(points, labels, max_points=10)
        assert samples.shape[0] == 10

    def test_length_mismatch(self):
        with pytest.raises(ClusteringError):
            silhouette_samples(np.zeros((3, 2)), np.zeros(2, dtype=int))


class TestQualityReport:
    def test_report_fields(self):
        points, labels = blobs()
        labels = labels.copy()
        labels[0] = 0
        report = cluster_quality(points, labels)
        assert report.n_clusters == 2
        assert report.noise_fraction == pytest.approx(1 / 80)
        assert report.smallest == 39
        assert report.largest == 40
        assert report.silhouette > 0.8

    def test_empty_labels(self):
        report = cluster_quality(np.zeros((0, 2)), np.zeros(0, dtype=int))
        assert report.n_clusters == 0
        assert report.noise_fraction == 0.0
