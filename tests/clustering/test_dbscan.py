"""Unit tests for the from-scratch DBSCAN implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import DBSCAN, NOISE
from repro.errors import ClusteringError


def blobs(centers, n=50, scale=0.01, seed=0):
    rng = np.random.default_rng(seed)
    parts = [
        center + scale * rng.standard_normal((n, len(center)))
        for center in centers
    ]
    return np.vstack(parts)


class TestDBSCAN:
    def test_two_blobs(self):
        points = blobs([(0.0, 0.0), (1.0, 1.0)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.n_clusters == 2
        # The first 50 points share one label, the rest the other.
        assert len(set(result.labels[:50])) == 1
        assert len(set(result.labels[50:])) == 1
        assert result.labels[0] != result.labels[50]

    def test_noise_detection(self):
        points = np.vstack([blobs([(0.0, 0.0)]), [[5.0, 5.0]]])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.labels[-1] == NOISE
        assert result.noise_indices.tolist() == [100 - 50]  # the lone point

    def test_all_noise_when_sparse(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, size=(30, 2))
        result = DBSCAN(eps=0.01, min_pts=5).fit(points)
        assert result.n_clusters == 0
        assert (result.labels == NOISE).all()

    def test_single_cluster_when_eps_huge(self):
        points = blobs([(0, 0), (1, 1), (2, 2)])
        result = DBSCAN(eps=10.0, min_pts=3).fit(points)
        assert result.n_clusters == 1

    def test_core_mask(self):
        points = blobs([(0.0, 0.0)], n=20)
        result = DBSCAN(eps=0.5, min_pts=3).fit(points)
        assert result.core_mask.all()

    def test_border_points_claimed(self):
        # A dense line of points plus one outlier within eps of the
        # line's endpoint: the outlier joins the cluster as a border
        # point (reached by a core point) without being core itself.
        line = np.column_stack([np.arange(21) * 0.001, np.zeros(21)])
        border = np.asarray([[0.03, 0.0]])
        points = np.vstack([line, border])
        result = DBSCAN(eps=0.0105, min_pts=10).fit(points)
        assert result.labels[-1] == result.labels[0]
        assert not result.core_mask[-1]

    def test_empty_input(self):
        result = DBSCAN(eps=0.1, min_pts=3).fit(np.empty((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)

    def test_labels_start_at_one(self):
        points = blobs([(0, 0)])
        result = DBSCAN(eps=0.5, min_pts=3).fit(points)
        assert set(result.labels) == {1}

    def test_cluster_indices(self):
        points = blobs([(0, 0), (3, 3)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        for label in (1, 2):
            indices = result.cluster_indices(label)
            assert (result.labels[indices] == label).all()

    def test_three_dimensional_points(self):
        points = blobs([(0, 0, 0), (1, 1, 1)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.n_clusters == 2

    def test_deterministic(self):
        points = blobs([(0, 0), (0.5, 0.5), (1, 1)], seed=3)
        r1 = DBSCAN(eps=0.08, min_pts=4).fit(points)
        r2 = DBSCAN(eps=0.08, min_pts=4).fit(points)
        np.testing.assert_array_equal(r1.labels, r2.labels)


class TestValidation:
    def test_bad_eps(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.0, min_pts=3)

    def test_bad_min_pts(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.1, min_pts=0)

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.1, min_pts=3).fit(np.zeros(5))

    def test_nan_rejected(self):
        points = np.asarray([[0.0, 0.0], [np.nan, 1.0]])
        with pytest.raises(ClusteringError, match="NaN"):
            DBSCAN(eps=0.1, min_pts=1).fit(points)
