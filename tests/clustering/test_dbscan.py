"""Unit tests for the from-scratch DBSCAN implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import DBSCAN, NOISE
from repro.errors import ClusteringError


def blobs(centers, n=50, scale=0.01, seed=0):
    rng = np.random.default_rng(seed)
    parts = [
        center + scale * rng.standard_normal((n, len(center)))
        for center in centers
    ]
    return np.vstack(parts)


class TestDBSCAN:
    def test_two_blobs(self):
        points = blobs([(0.0, 0.0), (1.0, 1.0)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.n_clusters == 2
        # The first 50 points share one label, the rest the other.
        assert len(set(result.labels[:50])) == 1
        assert len(set(result.labels[50:])) == 1
        assert result.labels[0] != result.labels[50]

    def test_noise_detection(self):
        points = np.vstack([blobs([(0.0, 0.0)]), [[5.0, 5.0]]])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.labels[-1] == NOISE
        assert result.noise_indices.tolist() == [100 - 50]  # the lone point

    def test_all_noise_when_sparse(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 100, size=(30, 2))
        result = DBSCAN(eps=0.01, min_pts=5).fit(points)
        assert result.n_clusters == 0
        assert (result.labels == NOISE).all()

    def test_single_cluster_when_eps_huge(self):
        points = blobs([(0, 0), (1, 1), (2, 2)])
        result = DBSCAN(eps=10.0, min_pts=3).fit(points)
        assert result.n_clusters == 1

    def test_core_mask(self):
        points = blobs([(0.0, 0.0)], n=20)
        result = DBSCAN(eps=0.5, min_pts=3).fit(points)
        assert result.core_mask.all()

    def test_border_points_claimed(self):
        # A dense line of points plus one outlier within eps of the
        # line's endpoint: the outlier joins the cluster as a border
        # point (reached by a core point) without being core itself.
        line = np.column_stack([np.arange(21) * 0.001, np.zeros(21)])
        border = np.asarray([[0.03, 0.0]])
        points = np.vstack([line, border])
        result = DBSCAN(eps=0.0105, min_pts=10).fit(points)
        assert result.labels[-1] == result.labels[0]
        assert not result.core_mask[-1]

    def test_empty_input(self):
        result = DBSCAN(eps=0.1, min_pts=3).fit(np.empty((0, 2)))
        assert result.n_clusters == 0
        assert result.labels.shape == (0,)

    def test_labels_start_at_one(self):
        points = blobs([(0, 0)])
        result = DBSCAN(eps=0.5, min_pts=3).fit(points)
        assert set(result.labels) == {1}

    def test_cluster_indices(self):
        points = blobs([(0, 0), (3, 3)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        for label in (1, 2):
            indices = result.cluster_indices(label)
            assert (result.labels[indices] == label).all()

    def test_three_dimensional_points(self):
        points = blobs([(0, 0, 0), (1, 1, 1)])
        result = DBSCAN(eps=0.1, min_pts=5).fit(points)
        assert result.n_clusters == 2

    def test_deterministic(self):
        points = blobs([(0, 0), (0.5, 0.5), (1, 1)], seed=3)
        r1 = DBSCAN(eps=0.08, min_pts=4).fit(points)
        r2 = DBSCAN(eps=0.08, min_pts=4).fit(points)
        np.testing.assert_array_equal(r1.labels, r2.labels)


class TestValidation:
    def test_bad_eps(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.0, min_pts=3)

    def test_bad_min_pts(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.1, min_pts=0)

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ClusteringError):
            DBSCAN(eps=0.1, min_pts=3).fit(np.zeros(5))

    def test_nan_rejected(self):
        points = np.asarray([[0.0, 0.0], [np.nan, 1.0]])
        with pytest.raises(ClusteringError, match="NaN"):
            DBSCAN(eps=0.1, min_pts=1).fit(points)


def _reference_dfs_labels(points: np.ndarray, eps: float, min_pts: int) -> np.ndarray:
    """Depth-first reference expansion (the pre-deque `queue.pop()` form).

    DBSCAN grows each core-connected component to exhaustion before the
    next seed starts, so the traversal discipline inside one expansion
    (FIFO vs LIFO) must not change the labelling.  This mirrors the
    production loop with only the queue discipline flipped.
    """
    from scipy.spatial import cKDTree

    n = points.shape[0]
    tree = cKDTree(points)
    neighborhoods = tree.query_ball_point(points, eps, workers=-1)
    core_mask = np.fromiter(
        (len(nb) >= min_pts for nb in neighborhoods), count=n, dtype=bool
    )
    labels = np.full(n, NOISE, dtype=np.int32)
    visited = np.zeros(n, dtype=bool)
    current_label = 0
    for seed in range(n):
        if visited[seed] or not core_mask[seed]:
            continue
        current_label += 1
        stack = [seed]
        visited[seed] = True
        labels[seed] = current_label
        while stack:
            point = stack.pop()  # LIFO: depth-first
            if not core_mask[point]:
                continue
            for neighbor in neighborhoods[point]:
                if labels[neighbor] == NOISE and not visited[neighbor]:
                    labels[neighbor] = current_label
                    visited[neighbor] = True
                    if core_mask[neighbor]:
                        stack.append(neighbor)
    return labels


class TestTraversalOrderInvariance:
    """Regression for the breadth-first/depth-first comment mismatch."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bfs_labels_match_dfs_reference(self, seed):
        points = blobs([(0, 0), (0.06, 0.06), (1, 1), (2, 0)], n=80, seed=seed)
        eps, min_pts = 0.08, 4
        result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
        np.testing.assert_array_equal(
            result.labels, _reference_dfs_labels(points, eps, min_pts)
        )

    def test_overlapping_chain_same_membership(self):
        # A dense chain where border points are reachable from several
        # cores of the same cluster: order-dependent claims must agree.
        line = np.column_stack([np.arange(40) * 0.004, np.zeros(40)])
        points = np.vstack([line, [[0.2, 0.5]]])
        eps, min_pts = 0.01, 3
        result = DBSCAN(eps=eps, min_pts=min_pts).fit(points)
        np.testing.assert_array_equal(
            result.labels, _reference_dfs_labels(points, eps, min_pts)
        )
