"""Unit tests for cluster containers and duration ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.cluster import Cluster, ClusterSet, rank_labels_by_duration
from repro.errors import ClusteringError


def make_cluster(cid: int, size: int = 3, duration: float = 1.0) -> Cluster:
    return Cluster(
        cluster_id=cid,
        indices=np.arange(size),
        centroid=np.asarray([0.0, 0.0]),
        total_duration=duration,
        callpaths=frozenset({"f@a.c:1"}),
        ranks=frozenset({0}),
    )


class TestRankByDuration:
    def test_largest_becomes_one(self):
        labels = np.asarray([1, 1, 2, 2, 2])
        durations = np.asarray([1.0, 1.0, 5.0, 5.0, 5.0])
        ranked = rank_labels_by_duration(labels, durations)
        np.testing.assert_array_equal(ranked, [2, 2, 1, 1, 1])

    def test_noise_preserved(self):
        labels = np.asarray([0, 1, 0, 2])
        durations = np.asarray([9.0, 1.0, 9.0, 5.0])
        ranked = rank_labels_by_duration(labels, durations)
        assert ranked[0] == 0 and ranked[2] == 0
        assert ranked[3] == 1  # larger duration

    def test_all_noise(self):
        labels = np.zeros(4, dtype=int)
        ranked = rank_labels_by_duration(labels, np.ones(4))
        np.testing.assert_array_equal(ranked, labels)

    def test_already_ranked_unchanged(self):
        labels = np.asarray([1, 2, 3])
        durations = np.asarray([3.0, 2.0, 1.0])
        np.testing.assert_array_equal(
            rank_labels_by_duration(labels, durations), labels
        )

    def test_shape_mismatch(self):
        with pytest.raises(ClusteringError):
            rank_labels_by_duration(np.zeros(3, dtype=int), np.zeros(2))

    def test_sparse_input_ids_renumbered_densely(self):
        labels = np.asarray([5, 5, 9])
        durations = np.asarray([1.0, 1.0, 10.0])
        ranked = rank_labels_by_duration(labels, durations)
        assert set(ranked) == {1, 2}


class TestClusterSet:
    def test_lookup(self):
        cs = ClusterSet(
            labels=np.asarray([1, 2]),
            clusters=(make_cluster(1), make_cluster(2)),
        )
        assert cs.cluster(2).cluster_id == 2
        with pytest.raises(KeyError):
            cs.cluster(3)

    def test_ids_must_be_sorted_unique(self):
        with pytest.raises(ClusteringError):
            ClusterSet(labels=np.asarray([2, 1]),
                       clusters=(make_cluster(2), make_cluster(1)))
        with pytest.raises(ClusteringError):
            ClusterSet(labels=np.asarray([1, 1]),
                       clusters=(make_cluster(1), make_cluster(1)))

    def test_ids_start_at_one(self):
        with pytest.raises(ClusteringError):
            ClusterSet(labels=np.asarray([0]), clusters=(make_cluster(0),))

    def test_duration_coverage(self):
        cs = ClusterSet(
            labels=np.asarray([1, 2]),
            clusters=(make_cluster(1, duration=3.0), make_cluster(2, duration=1.0)),
        )
        assert cs.duration_coverage(8.0) == pytest.approx(0.5)
        assert cs.duration_coverage(0.0) == 0.0

    def test_noise_indices(self):
        cs = ClusterSet(labels=np.asarray([0, 1, 0]), clusters=(make_cluster(1),))
        np.testing.assert_array_equal(cs.noise_indices, [0, 2])

    def test_iteration_and_len(self):
        clusters = (make_cluster(1), make_cluster(2))
        cs = ClusterSet(labels=np.asarray([1, 2]), clusters=clusters)
        assert len(cs) == 2
        assert tuple(cs) == clusters
        assert cs.cluster_ids == (1, 2)

    def test_cluster_size_property(self):
        assert make_cluster(1, size=7).size == 7
