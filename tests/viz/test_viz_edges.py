"""Edge-case tests for the visualisation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import make_frames
from repro.tracking.tracker import Tracker
from repro.tracking.trends import TrendSeries
from repro.viz.ascii_plot import ascii_trend
from repro.viz.trend_plot import render_trends_svg
from tests.conftest import build_two_region_trace


def make_series(values, region_id=1):
    values = np.asarray(values, dtype=np.float64)
    return TrendSeries(
        region_id=region_id,
        metric="ipc",
        aggregate="mean",
        frame_labels=tuple(f"frame-{i}" for i in range(len(values))),
        values=values,
    )


class TestTrendPlotEdges:
    def test_nan_series_rendered(self, tmp_path):
        series = [make_series([1.0, np.nan, 3.0]), make_series([np.nan] * 3, 2)]
        path = render_trends_svg(series, tmp_path / "t.svg")
        content = path.read_text()
        assert "<polyline" in content  # the finite series still draws

    def test_single_frame_series(self, tmp_path):
        path = render_trends_svg([make_series([1.0])], tmp_path / "t.svg")
        # One point: no polyline, but the marker circle is there.
        assert "<circle" in path.read_text()

    def test_many_frames_abbreviate_labels(self, tmp_path):
        series = [make_series(np.linspace(1, 2, 40))]
        path = render_trends_svg(series, tmp_path / "t.svg")
        content = path.read_text()
        # Only a subset of the 40 labels is printed.
        assert content.count("frame-") < 40


class TestAsciiTrendEdges:
    def test_long_x_labels_summarised(self):
        values = np.linspace(0, 1, 30)
        labels = tuple(f"scenario-number-{i}" for i in range(30))
        text = ascii_trend([("a", values)], x_labels=labels, width=40)
        assert "30 frames" in text

    def test_single_point_series(self):
        text = ascii_trend([("a", np.asarray([2.0]))])
        assert "y: [2 .. 2]" in text

    def test_constant_series(self):
        text = ascii_trend([("a", np.full(5, 3.0))])
        assert "y: [3 .. 3]" in text


class TestReportEdges:
    def test_partial_region_summary(self):
        """Regions absent from some frame render a '-' chain entry and
        skip the IPC annotation gracefully."""
        from repro.tracking.report import region_summary
        from repro.trace.callstack import CallPath
        from repro.trace.trace import TraceBuilder

        # Frame 2's bursts use different code: nothing is tracked.
        a = build_two_region_trace(seed=0, scenario={"run": 0})
        builder = TraceBuilder(nranks=4, app="toy", scenario={"run": 1})
        for burst in build_two_region_trace(seed=1).bursts():
            builder.add(
                rank=burst.rank, begin=burst.begin, duration=burst.duration,
                callpath=CallPath.single("other", "z.c", 9),
                counters=[burst.counters[n] for n in a.counter_names],
            )
        b = builder.build()
        result = Tracker(make_frames([a, b])).run()
        lines = region_summary(result)
        assert any("-" in line for line in lines)

    def test_insights_empty_when_nothing_spans(self):
        from repro.analysis.insights import diagnose

        a = build_two_region_trace(seed=0, scenario={"run": 0})
        from repro.trace.callstack import CallPath
        from repro.trace.trace import TraceBuilder

        builder = TraceBuilder(nranks=4, app="toy", scenario={"run": 1})
        for burst in build_two_region_trace(seed=1).bursts():
            builder.add(
                rank=burst.rank, begin=burst.begin, duration=burst.duration,
                callpath=CallPath.single("other", "z.c", 9),
                counters=[burst.counters[n] for n in a.counter_names],
            )
        result = Tracker(make_frames([a, builder.build()])).run()
        assert diagnose(result) == []
