"""Unit tests for the HTML animation writer."""

from __future__ import annotations

import pytest

from repro.clustering.frames import make_frames
from repro.tracking.relabel import relabel_frames
from repro.tracking.tracker import Tracker
from repro.viz.animate import render_animation_html
from tests.conftest import build_two_region_trace


@pytest.fixture(scope="module")
def relabeled():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}),
        build_two_region_trace(seed=2, scenario={"run": 2}),
    ]
    result = Tracker(make_frames(traces)).run()
    return relabel_frames(result)


class TestAnimation:
    def test_writes_self_contained_html(self, relabeled, tmp_path):
        path = render_animation_html(relabeled, tmp_path / "anim.html")
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert content.count('<div class="frame') == 3
        assert content.count("<svg") == 3
        assert "toy(run=1)" in content

    def test_interval_embedded(self, relabeled, tmp_path):
        path = render_animation_html(
            relabeled, tmp_path / "anim.html", interval_ms=1234
        )
        assert "1234" in path.read_text()

    def test_title_escaped(self, relabeled, tmp_path):
        path = render_animation_html(
            relabeled, tmp_path / "anim.html", title="a < b & c"
        )
        assert "a &lt; b &amp; c" in path.read_text()

    def test_independent_axes_mode(self, relabeled, tmp_path):
        shared = render_animation_html(
            relabeled, tmp_path / "shared.html", shared_axes=True
        ).read_text()
        free = render_animation_html(
            relabeled, tmp_path / "free.html", shared_axes=False
        ).read_text()
        assert shared != free

    def test_validation(self, relabeled, tmp_path):
        with pytest.raises(ValueError):
            render_animation_html([], tmp_path / "x.html")
        with pytest.raises(ValueError):
            render_animation_html(relabeled, tmp_path / "x.html", interval_ms=0)
