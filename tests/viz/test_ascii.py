"""Unit tests for ASCII renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz.ascii_plot import ascii_scatter, ascii_trend, glyph_for


class TestGlyph:
    def test_noise_dot(self):
        assert glyph_for(0) == "."
        assert glyph_for(-1) == "."

    def test_digits_then_letters(self):
        assert glyph_for(1) == "1"
        assert glyph_for(9) == "9"
        assert glyph_for(10) == "A"

    def test_overflow(self):
        assert glyph_for(1000) == "#"


class TestScatter:
    def test_renders_clusters(self):
        points = np.asarray([[0.0, 0.0], [1.0, 1.0], [1.0, 0.9]])
        labels = np.asarray([1, 2, 2])
        text = ascii_scatter(points, labels, width=20, height=5, title="t")
        assert text.startswith("t")
        assert "1" in text and "2" in text

    def test_axis_ranges_reported(self):
        points = np.asarray([[0.5, 10.0], [1.5, 30.0]])
        labels = np.asarray([1, 1])
        text = ascii_scatter(points, labels, x_label="ipc", y_label="instr")
        assert "ipc: [0.5 .. 1.5]" in text
        assert "instr: [10 .. 30]" in text

    def test_noise_hidden_by_default(self):
        points = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        labels = np.asarray([0, 1])
        hidden = ascii_scatter(points, labels, width=10, height=3)
        shown = ascii_scatter(points, labels, width=10, height=3, show_noise=True)
        assert "." not in hidden.split("\n")[0]
        assert "." in shown

    def test_empty(self):
        text = ascii_scatter(np.zeros((0, 2)), np.zeros(0, dtype=int))
        assert "(no points)" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((2, 3)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((2, 2)), np.zeros(3, dtype=int))


class TestTrend:
    def test_renders_series(self):
        text = ascii_trend(
            [("a", np.asarray([1.0, 2.0, 3.0])), ("b", np.asarray([3.0, 2.0, 1.0]))],
            width=24,
            height=6,
            title="trends",
        )
        assert text.startswith("trends")
        assert "1=a" in text and "2=b" in text
        assert "y: [1 .. 3]" in text

    def test_nan_skipped(self):
        text = ascii_trend([("a", np.asarray([1.0, np.nan, 3.0]))])
        assert "y: [1 .. 3]" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_trend([("a", np.ones(2)), ("b", np.ones(3))])

    def test_empty(self):
        assert "(no series)" in ascii_trend([], title="(no series)")

    def test_x_labels(self):
        text = ascii_trend(
            [("a", np.asarray([1.0, 2.0]))], x_labels=("W", "A")
        )
        assert "x: W, A" in text
