"""Unit tests for the SVG canvas and renderers."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.clustering.frames import make_frame, make_frames
from repro.tracking.relabel import relabel_frames
from repro.tracking.tracker import Tracker
from repro.tracking.trends import compute_trends
from repro.viz.frames_plot import render_frame_svg, render_sequence_svg
from repro.viz.svg import Axes, SVGCanvas, color_for
from repro.viz.timeline import ascii_timeline, render_timeline_svg
from repro.viz.trend_plot import render_trends_svg
from tests.conftest import build_two_region_trace


def parse(path):
    return ET.parse(path).getroot()


@pytest.fixture
def result():
    traces = [
        build_two_region_trace(seed=0, scenario={"run": 0}),
        build_two_region_trace(seed=1, scenario={"run": 1}),
    ]
    return Tracker(make_frames(traces)).run()


class TestCanvas:
    def test_valid_xml(self, tmp_path):
        canvas = SVGCanvas(width=100, height=50)
        canvas.rect(0, 0, 10, 10)
        canvas.circle(5, 5, 2)
        canvas.line(0, 0, 10, 10)
        canvas.polyline([(0, 0), (5, 5), (10, 0)])
        canvas.text(1, 1, "hello <&> world")
        root = ET.fromstring(canvas.to_string())
        assert root.tag.endswith("svg")

    def test_save(self, tmp_path):
        canvas = SVGCanvas()
        path = canvas.save(tmp_path / "out" / "x.svg")
        assert path.exists()
        parse(path)

    def test_color_cycle(self):
        assert color_for(0) == "#cccccc"
        assert color_for(1) != color_for(2)
        assert color_for(1) == color_for(1 + 15)  # cycle length


class TestAxes:
    def test_px_py_mapping(self):
        canvas = SVGCanvas(width=200, height=100)
        axes = Axes(x0=0, y0=0, width=200, height=100,
                    x_lo=0, x_hi=10, y_lo=0, y_hi=5)
        assert axes.px(0) == pytest.approx(0)
        assert axes.px(10) == pytest.approx(200)
        assert axes.py(0) == pytest.approx(100)  # y flipped
        assert axes.py(5) == pytest.approx(0)

    def test_fit_covers_data(self):
        canvas = SVGCanvas()
        axes = Axes.fit(canvas, np.asarray([1.0, 3.0]), np.asarray([10.0, 20.0]))
        assert axes.x_lo < 1.0 < 3.0 < axes.x_hi
        assert axes.y_lo < 10.0 < 20.0 < axes.y_hi

    def test_fit_handles_empty(self):
        canvas = SVGCanvas()
        axes = Axes.fit(canvas, np.asarray([]), np.asarray([]))
        assert axes.x_hi > axes.x_lo


class TestRenderers:
    def test_frame_svg(self, tmp_path, result):
        path = render_frame_svg(result.frames[0], tmp_path / "frame.svg")
        root = parse(path)
        assert len(root.findall(".//{http://www.w3.org/2000/svg}circle")) > 10

    def test_sequence_svg(self, tmp_path, result):
        relabeled = relabel_frames(result)
        path = render_sequence_svg(relabeled, tmp_path / "seq.svg")
        parse(path)

    def test_sequence_needs_frames(self, tmp_path):
        with pytest.raises(ValueError):
            render_sequence_svg([], tmp_path / "x.svg")

    def test_trends_svg(self, tmp_path, result):
        series = compute_trends(result, "ipc")
        path = render_trends_svg(series, tmp_path / "trend.svg", title="IPC")
        root = parse(path)
        assert len(root.findall(".//{http://www.w3.org/2000/svg}polyline")) >= 2

    def test_trends_needs_series(self, tmp_path):
        with pytest.raises(ValueError):
            render_trends_svg([], tmp_path / "x.svg")

    def test_timeline_svg(self, tmp_path, result):
        path = render_timeline_svg(result.frames[0], tmp_path / "tl.svg")
        root = parse(path)
        assert len(root.findall(".//{http://www.w3.org/2000/svg}rect")) > 10

    def test_ascii_timeline(self, result):
        text = ascii_timeline(result.frames[0], width=40, max_ranks=2)
        lines = text.split("\n")
        assert len(lines) == 3  # header + 2 ranks
        assert "1" in text and "2" in text

    def test_ascii_timeline_window(self, result):
        frame = result.frames[0]
        full = ascii_timeline(frame, width=40)
        half = ascii_timeline(frame, width=40, t_end=frame.trace.makespan / 2)
        assert full != half
