"""CLI observability tests: --ledger-dir, --serve, the obs subcommand."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import obs
from repro.cli import _expand_run_id, main
from repro.obs import ledger as obsledger
from repro.obs import runtime as obsruntime
from repro.obs.ledger import LEDGER_ENV, RunLedger
from repro.obs.runtime import SAMPLE_ENV


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    monkeypatch.delenv(LEDGER_ENV, raising=False)
    monkeypatch.delenv(SAMPLE_ENV, raising=False)
    obsledger._ACTIVE.clear()
    obs.reset()
    yield
    obsledger._ACTIVE.clear()
    obsruntime.set_active_sampler(None)
    obs.disable()
    obs.reset()


@pytest.fixture()
def wrf_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "wrf.json"
    assert main([
        "simulate", "wrf", "ranks=16", "iterations=6",
        "-o", str(path), "--seed", "3",
    ]) == 0
    return str(path)


def _watch(trace: str, *extra: str) -> int:
    return main(["watch", trace, "--windows", "4", *extra])


class TestExpandRunId:
    def test_plain_path_untouched(self):
        assert _expand_run_id("/tmp/profile.json") == "/tmp/profile.json"

    def test_placeholder_expands_to_run_id(self):
        expanded = _expand_run_id("/tmp/prof-{run_id}.json")
        assert "{run_id}" not in expanded
        assert obs.run_id() in expanded

    def test_stable_within_a_process(self):
        assert _expand_run_id("{run_id}") == _expand_run_id("{run_id}")


class TestLedgerRecording:
    def test_watch_records_run(self, tmp_path, wrf_trace, capsys):
        ledger_dir = tmp_path / "ledger"
        code = _watch(wrf_trace, "--ledger-dir", str(ledger_dir))
        assert code == 0
        runs = RunLedger(ledger_dir).runs()
        assert [run.entry for run in runs] == ["cli.watch"]
        run = runs[0]
        assert run.exit_code == 0
        assert not run.open
        assert "--windows" in run.argv
        # The end event carries the run's QualityReport headline numbers.
        assert run.quality["n_frames"] == 4
        assert run.quality["coverage_pct"] == run.end_meta["coverage"]
        assert run.quality["n_regions"] >= 1

    def test_ledger_env_fallback(self, tmp_path, wrf_trace, monkeypatch, capsys):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env-ledger"))
        assert _watch(wrf_trace) == 0
        assert RunLedger(tmp_path / "env-ledger").runs()[0].entry == "cli.watch"

    def test_pipeline_failure_records_exit_2(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        code = main([
            "watch", str(tmp_path / "missing.json"), "--windows", "4",
            "--ledger-dir", str(ledger_dir),
        ])
        assert code == 2
        run = RunLedger(ledger_dir).runs()[0]
        assert run.exit_code == 2
        assert run.error

    def test_readonly_commands_not_recorded(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        ledger = RunLedger(ledger_dir)
        ledger.append({"event": "start", "run_id": "r0", "entry": "cli.watch"})
        assert main(["obs", "runs", "--ledger-dir", str(ledger_dir)]) == 0
        assert main(["info", "--ledger-dir", str(ledger_dir)]) == 0
        entries = [e["entry"] for e in ledger.read_events()]
        assert entries == ["cli.watch"]  # no obs/info noise

    def test_sampler_summary_in_ledger(
        self, tmp_path, wrf_trace, monkeypatch, capsys
    ):
        monkeypatch.setenv(SAMPLE_ENV, "0.005")
        ledger_dir = tmp_path / "ledger"
        assert _watch(wrf_trace, "--ledger-dir", str(ledger_dir)) == 0
        run = RunLedger(ledger_dir).runs()[0]
        assert run.sampler is not None
        assert run.sampler["n_samples"] >= 1
        assert run.sampler["period_s"] == pytest.approx(0.005)


class TestWatchServe:
    def test_serve_scrapes_and_closes(self, tmp_path, wrf_trace, capsys):
        scraped: dict[str, str] = {}

        def spy_url():
            err = capsys.readouterr().err
            for line in err.splitlines():
                if line.startswith("serving /metrics"):
                    return line.rsplit(" ", 1)[-1]
            raise AssertionError(f"no serving line in: {err!r}")

        # --serve-grace keeps the endpoints up after the run so the
        # test can scrape deterministically post-completion.
        import threading

        def scrape_late(url_holder):
            url = url_holder["url"]
            with urllib.request.urlopen(f"{url}/metrics", timeout=5) as r:
                scraped["metrics"] = r.read().decode()
            with urllib.request.urlopen(f"{url}/healthz", timeout=5) as r:
                scraped["healthz"] = r.read().decode()

        holder: dict[str, str] = {}
        thread = None

        import repro.cli as cli_mod

        original = cli_mod._annotate_watch_quality

        def hooked(result, failures, telemetry):
            # Runs post-tracking, pre-close: the server is still up.
            holder["url"] = spy_url()
            nonlocal thread
            thread = threading.Thread(target=scrape_late, args=(holder,))
            thread.start()
            thread.join(timeout=10)
            return original(result, failures, telemetry)

        cli_mod._annotate_watch_quality = hooked
        try:
            code = _watch(wrf_trace, "--serve", "0")
        finally:
            cli_mod._annotate_watch_quality = original
        assert code == 0
        from tests.obs.test_serve import parse_prometheus

        series = parse_prometheus(scraped["metrics"])
        assert series["repro_stream_last_window"] == 3
        assert any(
            key.startswith("repro_runtime_rss_kib") for key in series
        )  # --serve implies the sampler
        health = json.loads(scraped["healthz"])
        assert health["status"] == "ok"
        assert health["windows"]["total"] == 4
        assert health["sampler"]["n_samples"] >= 1

    def test_port_in_use_exits_1(self, wrf_trace, capsys):
        from repro.obs.serve import start_metrics_server

        blocker = start_metrics_server(0)
        try:
            code = _watch(wrf_trace, "--serve", str(blocker.port))
        finally:
            blocker.close()
        assert code == 1
        assert "cannot serve telemetry" in capsys.readouterr().err

    def test_serve_output_identical_to_plain(
        self, tmp_path, wrf_trace, capsys
    ):
        """--serve (obs + sampler + HTTP) never changes tracking output."""
        assert _watch(wrf_trace) == 0
        plain = capsys.readouterr().out
        obs.disable()
        obs.reset()
        obsruntime.set_active_sampler(None)
        assert _watch(wrf_trace, "--serve", "0") == 0
        served = capsys.readouterr().out
        assert served == plain


class TestObsCommand:
    def test_no_ledger_configured(self, capsys):
        assert main(["obs", "runs"]) == 2
        assert "no ledger directory" in capsys.readouterr().err

    def test_runs_tail_summary_export(self, tmp_path, wrf_trace, capsys):
        ledger_dir = tmp_path / "ledger"
        assert _watch(wrf_trace, "--ledger-dir", str(ledger_dir)) == 0
        capsys.readouterr()

        assert main(["obs", "runs", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "cli.watch" in out
        assert "run id" in out

        assert main([
            "obs", "tail", "-n", "2", "--ledger-dir", str(ledger_dir),
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events] == ["start", "end"]
        assert all(e["schema"] == "repro.ledger/1" for e in events)

        assert main(["obs", "summary", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "entry cli.watch" in out
        assert "quality:" in out
        assert "coverage_pct" in out

        export = tmp_path / "bench.json"
        assert main([
            "obs", "export", "-o", str(export),
            "--ledger-dir", str(ledger_dir),
        ]) == 0
        from repro.obs.bench import load_bench_results

        benches = load_bench_results(export)
        assert "ledger:cli.watch" in benches
        assert benches["ledger:cli.watch"]["wall_time_s"] > 0

    def test_summary_by_run_id_prefix(self, tmp_path, wrf_trace, capsys):
        ledger_dir = tmp_path / "ledger"
        assert _watch(wrf_trace, "--ledger-dir", str(ledger_dir)) == 0
        run = RunLedger(ledger_dir).runs()[0]
        capsys.readouterr()
        assert main([
            "obs", "summary", run.run_id[:12],
            "--ledger-dir", str(ledger_dir),
        ]) == 0
        assert run.run_id in capsys.readouterr().out

    def test_summary_unknown_run(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        RunLedger(ledger_dir)  # empty but existing
        assert main([
            "obs", "summary", "r-nope", "--ledger-dir", str(ledger_dir),
        ]) == 2

    def test_export_without_completed_runs(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        RunLedger(ledger_dir)
        assert main(["obs", "export", "--ledger-dir", str(ledger_dir)]) == 2
        assert "no completed runs" in capsys.readouterr().err
