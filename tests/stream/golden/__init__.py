"""Golden regression fixtures for the streaming pipeline."""
