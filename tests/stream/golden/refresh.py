"""Regenerate the golden windowed-WRF report fixture.

The fixture pins the full ``repro.report/1`` JSON payload of a seeded,
windowed WRF tracking run.  ``test_golden.py`` rebuilds the payload and
compares it field by field, so any behavioural drift in windowing,
clustering, tracking or report assembly shows up as a diff.

To refresh after an *intentional* behaviour change, run from the repo
root and commit the result:

    PYTHONPATH=src python tests/stream/golden/refresh.py
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

GOLDEN = Path(__file__).with_name("wrf_windowed_report.json")

SEED = 0
N_WINDOWS = 4


def build_payload() -> dict[str, Any]:
    """The normalised report payload of the pinned windowed WRF run."""
    from repro.apps import wrf
    from repro.obs.report import report_payload
    from repro.stream import track_windows

    trace = wrf.build(ranks=16, iterations=6, base_ranks=16).run(seed=SEED)
    result = track_windows(trace, n_windows=N_WINDOWS)
    payload = report_payload(
        [("watch", result, ())], title="golden windowed WRF run"
    )
    return normalize(payload)


def normalize(payload: dict[str, Any]) -> dict[str, Any]:
    """Pin the volatile fields (timestamp, version, obs state)."""
    payload = dict(payload)
    payload["generated_at"] = "GOLDEN"
    payload["version"] = "GOLDEN"
    payload["observability"] = "GOLDEN"
    return payload


if __name__ == "__main__":
    GOLDEN.write_text(
        json.dumps(build_payload(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {GOLDEN}")
