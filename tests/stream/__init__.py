"""Differential and behavioural tests for :mod:`repro.stream`."""
