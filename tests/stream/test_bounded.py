"""Memory-bounded streaming: hold k frames, keep the answers.

``max_live_windows=k`` condenses evicted frames into
:class:`~repro.tracking.digest.FrameDigest` aggregates.  The contract:

- regions, coverage and pair relations are **bit-identical** to the
  unbounded run (pairs are always evaluated on live frames);
- trend series and automated insights still compute over the digested
  result — ``total`` aggregates exactly, ``mean`` up to float
  summation order (``allclose``);
- the bound is enforced: at most k live frames at any point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.frames import Frame
from repro.errors import StreamError
from repro.stream import IncrementalTracker, track_windows
from repro.stream.incremental import SpaceBounds
from repro.tracking.digest import FrameDigest
from repro.tracking.trends import compute_trends
from tests.stream.test_differential import (
    APPS,
    SETTINGS,
    _build_trace,
    _window_frames,
)


def _bounded_pair(app: str, k: int = 2):
    trace = _build_trace(app)
    plain = track_windows(trace, n_windows=4, settings=SETTINGS)
    bounded = track_windows(
        trace, n_windows=4, settings=SETTINGS, max_live_windows=k
    )
    return plain, bounded


class TestEquivalence:
    @pytest.mark.parametrize("app", APPS)
    def test_regions_and_relations_bit_identical(self, app):
        plain, bounded = _bounded_pair(app)
        assert bounded.regions == plain.regions
        assert bounded.coverage == plain.coverage
        assert len(bounded.pair_relations) == len(plain.pair_relations)
        for left, right in zip(plain.pair_relations, bounded.pair_relations):
            assert left.relations == right.relations
            assert left.sequence_ab == right.sequence_ab

    @pytest.mark.parametrize("app", ["wrf", "hydroc"])
    def test_trends_match_within_float_tolerance(self, app):
        plain, bounded = _bounded_pair(app)
        for metric, aggregate in (
            ("ipc", "mean"),
            ("instructions", "total"),
            ("duration", "mean"),
            ("l2_mpki", "mean"),
        ):
            reference = compute_trends(plain, metric, aggregate=aggregate)
            digested = compute_trends(bounded, metric, aggregate=aggregate)
            assert len(reference) == len(digested)
            for series_a, series_b in zip(reference, digested):
                assert series_a.region_id == series_b.region_id
                assert series_a.frame_labels == series_b.frame_labels
                np.testing.assert_allclose(
                    series_b.values, series_a.values, rtol=1e-9, equal_nan=True
                )

    def test_insights_still_diagnose(self):
        from repro.analysis.insights import diagnose

        plain, bounded = _bounded_pair("wrf")
        reference = diagnose(plain)
        digested = diagnose(bounded)
        assert [(i.region_id, i.kind) for i in digested] == [
            (i.region_id, i.kind) for i in reference
        ]

    def test_quality_report_works_on_digested_result(self):
        from repro.obs.quality import quality_report

        plain, bounded = _bounded_pair("wrf")
        report = quality_report(bounded)
        assert report is not None
        assert quality_report(plain).coverage == report.coverage


class TestBoundEnforcement:
    def test_evicted_frames_are_digests(self):
        _, bounded = _bounded_pair("wrf", k=2)
        kinds = [type(frame) for frame in bounded.frames]
        assert all(k is FrameDigest for k in kinds[:-2])
        assert all(k is Frame for k in kinds[-2:])

    def test_live_frame_count_never_exceeds_k(self):
        frames = _window_frames("wrf")
        bounds = SpaceBounds.from_frames(frames)
        tracker = IncrementalTracker(bounds=bounds, max_live_frames=2)
        for frame in frames:
            tracker.push(frame)
            live = sum(
                isinstance(f, Frame) for f in tracker._frames
            )
            assert live <= 2
        result = tracker.result()
        assert result.n_frames == len(frames)

    def test_digest_frames_expose_cluster_aggregates(self):
        frames = _window_frames("wrf")
        digest = FrameDigest.from_frame(frames[0])
        assert digest.cluster_ids == frames[0].cluster_ids
        assert digest.n_clusters == frames[0].n_clusters
        assert digest.n_points == frames[0].n_points
        assert digest.label == frames[0].label
        for cid in frames[0].cluster_ids:
            assert (
                digest.cluster(cid).total_duration
                == frames[0].cluster(cid).total_duration
            )


class TestValidation:
    def test_k_below_one_rejected(self):
        frames = _window_frames("wrf")
        bounds = SpaceBounds.from_frames(frames)
        with pytest.raises(StreamError, match="max_live_frames"):
            IncrementalTracker(bounds=bounds, max_live_frames=0)

    def test_adaptive_mode_rejected(self):
        with pytest.raises(StreamError, match="SpaceBounds"):
            IncrementalTracker(max_live_frames=2)

    def test_unknown_metric_on_digest_raises(self):
        from repro.errors import TrackingError

        frames = _window_frames("wrf")
        digest = FrameDigest.from_frame(frames[0])
        members = set(digest.cluster_ids[:1])
        with pytest.raises(TrackingError, match="not captured"):
            digest.region_metric(members, "no_such_metric")
