"""Unit tests for :mod:`repro.stream.incremental`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make_frames, track_stream
from repro.clustering.frames import FrameSettings
from repro.errors import StreamError, TrackingError
from repro.robust.partial import ItemFailure, PartialResult
from repro.stream import IncrementalTracker, SpaceBounds, slice_trace
from repro.tracking.tracker import Tracker, TrackerConfig
from tests.conftest import build_two_region_trace


@pytest.fixture()
def window_frames(toy_trace):
    _, windows = slice_trace(toy_trace, n_windows=3)
    return make_frames([w for w in windows if w.n_bursts], FrameSettings())


class TestSpaceBounds:
    def test_from_frames_equals_from_raw_points(self, window_frames):
        from_frames = SpaceBounds.from_frames(window_frames)
        from_raw = SpaceBounds.from_raw_points(
            [f.points for f in window_frames],
            [f.trace.nranks for f in window_frames],
            window_frames[0].settings.metric_names,
        )
        assert from_frames == from_raw

    def test_scaler_matches_batch_space(self, window_frames):
        bounds = SpaceBounds.from_frames(window_frames)
        batch = Tracker(window_frames, TrackerConfig()).run()
        assert np.array_equal(bounds.scaler().lo, batch.space.scaler.lo)
        assert np.array_equal(bounds.scaler().hi, batch.space.scaler.hi)

    def test_expanded_covers_new_points(self, window_frames):
        bounds = SpaceBounds.from_frames(window_frames[:1])
        grown = bounds.expanded(np.array([[-5.0, 0.0], [5.0, 1e12]]))
        assert grown.lo[0] == -5.0
        assert grown.hi[1] == 1e12
        assert grown.ref_ranks == bounds.ref_ranks

    def test_empty_and_bad_reference_rejected(self, window_frames):
        with pytest.raises(TrackingError, match="at least one"):
            SpaceBounds.from_raw_points([], [], ("ipc", "instructions"))
        with pytest.raises(TrackingError, match="out of range"):
            SpaceBounds.from_frames(window_frames, reference=99)


class TestConstruction:
    def test_adaptive_requires_reference_zero(self):
        with pytest.raises(StreamError, match="reference == 0"):
            IncrementalTracker(TrackerConfig(reference=1))

    def test_log_extensive_must_agree_with_bounds(self, window_frames):
        bounds = SpaceBounds.from_frames(window_frames, log_extensive=True)
        with pytest.raises(StreamError, match="log_extensive"):
            IncrementalTracker(TrackerConfig(log_extensive=False), bounds=bounds)


class TestPush:
    def test_first_push_has_no_pair(self, window_frames):
        tracker = IncrementalTracker(
            bounds=SpaceBounds.from_frames(window_frames)
        )
        update = tracker.push(window_frames[0])
        assert update.step == 0
        assert update.pair is None
        assert update.failure is None
        assert tracker.n_frames == 1

    def test_each_push_evaluates_one_pair(self, window_frames):
        tracker = IncrementalTracker(
            bounds=SpaceBounds.from_frames(window_frames)
        )
        for step, frame in enumerate(window_frames):
            update = tracker.push(frame)
            assert update.step == step
            if step:
                assert update.pair is not None
                assert update.regions  # regions exist from the first pair on

    def test_mixed_metric_spaces_rejected(self, toy_trace):
        frames = make_frames(
            [toy_trace, toy_trace], FrameSettings(), jobs=1
        )
        other = make_frames(
            [toy_trace], FrameSettings(y_metric="cycles"), jobs=1
        )[0]
        tracker = IncrementalTracker(bounds=SpaceBounds.from_frames(frames))
        tracker.push(frames[0])
        with pytest.raises(TrackingError, match="metric space"):
            tracker.push(other)

    def test_result_needs_two_frames(self, window_frames):
        tracker = IncrementalTracker(
            bounds=SpaceBounds.from_frames(window_frames)
        )
        with pytest.raises(TrackingError, match="two frames"):
            tracker.result()
        tracker.push(window_frames[0])
        with pytest.raises(TrackingError, match="two frames"):
            tracker.result()


class TestAdaptiveMode:
    def test_adaptive_stream_tracks(self, window_frames):
        tracker = IncrementalTracker()  # no bounds: adaptive
        for frame in window_frames:
            tracker.push(frame)
        result = tracker.result()
        assert len(result.regions) > 0
        assert len(result.frames) == len(window_frames)
        assert len(result.pair_relations) == len(window_frames) - 1
        # The final space covers every frame's weighted points.
        for points in result.space.points:
            assert points.min() >= 0.0 and points.max() <= 1.0


class TestQuarantine:
    def test_strict_push_raises_on_pair_failure(self, window_frames, monkeypatch):
        import repro.stream.incremental as incremental

        def boom(task):
            raise TrackingError("synthetic pair failure")

        monkeypatch.setattr(incremental, "_combine_task", boom)
        tracker = IncrementalTracker(
            bounds=SpaceBounds.from_frames(window_frames), strict=True
        )
        tracker.push(window_frames[0])
        with pytest.raises(TrackingError, match="synthetic"):
            tracker.push(window_frames[1])

    def test_non_strict_push_quarantines_pair(self, window_frames, monkeypatch):
        import repro.tracking.tracker as tracker_mod

        def boom(task):
            raise TrackingError("synthetic pair failure")

        monkeypatch.setattr(tracker_mod, "_combine_task", boom)
        tracker = IncrementalTracker(
            bounds=SpaceBounds.from_frames(window_frames), strict=False
        )
        tracker.push(window_frames[0])
        update = tracker.push(window_frames[1])
        assert update.failure is not None
        assert update.failure.stage == "pair"
        assert update.pair is not None  # empty placeholder pair
        assert update.pair.relations == ()
        assert tracker.failures == (update.failure,)
        result = tracker.result()  # still produces a result
        assert len(result.pair_relations) == 1

    def test_precomputed_pair_replayed_verbatim(self, window_frames):
        bounds = SpaceBounds.from_frames(window_frames)
        live = IncrementalTracker(bounds=bounds)
        updates = [live.push(frame) for frame in window_frames]

        replayed = IncrementalTracker(bounds=bounds)
        replayed.push(window_frames[0])
        for frame, update in zip(window_frames[1:], updates[1:]):
            replay = replayed.push(frame, precomputed=(update.pair, None))
            assert replay.pair is update.pair
        assert replayed.result().regions == live.result().regions


class TestTrackStreamShim:
    def test_matches_batch(self, window_frames):
        batch = Tracker(window_frames, TrackerConfig()).run()
        incremental = track_stream(window_frames)
        assert batch.regions == incremental.regions
        assert batch.coverage == incremental.coverage

    def test_non_strict_returns_partial_result(self, window_frames):
        outcome = track_stream(window_frames, strict=False)
        assert isinstance(outcome, PartialResult)
        assert outcome.failures == ()
        assert outcome.value.regions
