"""Batch-vs-incremental differential suite.

The core guarantee of :mod:`repro.stream`: an
:class:`~repro.stream.IncrementalTracker` fed frame-by-frame (with
fixed :class:`~repro.stream.SpaceBounds`) produces *exactly* the batch
:class:`~repro.tracking.Tracker` output — same region equivalences,
same pairwise relations, same renamed labels — for every bundled
application generator, serial and parallel, cold and warm cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make_frames, track_stream
from repro.clustering.frames import FrameSettings
from repro.parallel.cache import PipelineCache
from repro.stream import slice_trace
from repro.tracking.relabel import relabel_frames
from repro.tracking.tracker import Tracker, TrackerConfig


def _build_trace(app: str):
    """One small-but-clusterable trace per bundled app generator."""
    if app == "wrf":
        from repro.apps import wrf

        return wrf.build(ranks=16, iterations=6, base_ranks=16).run(seed=5)
    if app == "nasbt":
        from repro.apps import nasbt

        return nasbt.build("A", ranks=16, iterations=6).run(seed=5)
    if app == "cgpop":
        from repro.apps import cgpop

        return cgpop.build("MareNostrum", ranks=16, iterations=6).run(seed=5)
    if app == "hydroc":
        from repro.apps import hydroc

        return hydroc.build(block_size=64, ranks=8, iterations=6).run(seed=5)
    if app == "mrgenesis":
        from repro.apps import mrgenesis

        return mrgenesis.build(tasks_per_node=1, ranks=12, iterations=8).run(
            seed=5
        )
    raise AssertionError(app)


SETTINGS = FrameSettings(relevance=0.995)
APPS = ["wrf", "nasbt", "cgpop", "hydroc", "mrgenesis"]

_frame_cache: dict[str, list] = {}


def _window_frames(app: str) -> list:
    """Frames from a 4-window slicing of the app's trace (memoised)."""
    if app not in _frame_cache:
        trace = _build_trace(app)
        _, windows = slice_trace(trace, n_windows=4)
        alive = [w for w in windows if w.n_bursts > 0]
        assert len(alive) >= 2, f"{app}: too few non-empty windows"
        _frame_cache[app] = make_frames(alive, SETTINGS)
    return _frame_cache[app]


def _assert_equal_results(batch, incremental) -> None:
    """Field-by-field equality of a batch and an incremental result."""
    # Region equivalences: identical region ids, members and durations.
    assert batch.regions == incremental.regions
    assert batch.coverage == incremental.coverage
    # Pairwise relation sets (including split/merge directions).
    assert len(batch.pair_relations) == len(incremental.pair_relations)
    for left, right in zip(batch.pair_relations, incremental.pair_relations):
        assert left.relations == right.relations
        assert left.sequence_ab == right.sequence_ab
    # The normalised tracking space itself is bit-identical.
    assert len(batch.space.points) == len(incremental.space.points)
    for pts_a, pts_b in zip(batch.space.points, incremental.space.points):
        assert np.array_equal(pts_a, pts_b)
    assert np.array_equal(batch.space.scaler.lo, incremental.space.scaler.lo)
    assert np.array_equal(batch.space.scaler.hi, incremental.space.scaler.hi)
    # Renamed labels (the paper's Figure 6 view) agree point-for-point.
    for re_a, re_b in zip(relabel_frames(batch), relabel_frames(incremental)):
        assert re_a.mapping == re_b.mapping
        assert np.array_equal(re_a.labels, re_b.labels)


@pytest.mark.parametrize("app", APPS)
def test_incremental_matches_batch(app):
    frames = _window_frames(app)
    batch = Tracker(frames, TrackerConfig()).run()
    incremental = track_stream(frames, TrackerConfig())
    _assert_equal_results(batch, incremental)


@pytest.mark.parametrize("app", APPS)
def test_incremental_matches_parallel_batch(app):
    """jobs>1 batch runs are bit-identical too (pmap determinism)."""
    frames = _window_frames(app)
    batch = Tracker(frames, TrackerConfig()).run(jobs=2)
    incremental = track_stream(frames, TrackerConfig())
    _assert_equal_results(batch, incremental)


@pytest.mark.parametrize("app", ["hydroc", "wrf"])
def test_incremental_matches_batch_with_warm_cache(app, tmp_path):
    """Cache-served frame labels do not perturb the equivalence."""
    trace = _build_trace(app)
    cache = PipelineCache(tmp_path / "cache")
    _, windows = slice_trace(trace, n_windows=4)
    alive = [w for w in windows if w.n_bursts > 0]
    cold = make_frames(alive, SETTINGS, cache=cache)
    warm = make_frames(alive, SETTINGS, cache=cache)
    for frame_a, frame_b in zip(cold, warm):
        assert np.array_equal(frame_a.labels, frame_b.labels)
    batch = Tracker(cold, TrackerConfig()).run()
    incremental = track_stream(warm, TrackerConfig())
    _assert_equal_results(batch, incremental)


@pytest.mark.parametrize("app", APPS)
def test_alerting_monitor_is_a_pure_observer(app):
    """Alerts on vs off: regions/relations/labels stay bit-identical.

    The hard correctness requirement of the live-alerting layer — the
    monitor reads every TrackUpdate but never feeds anything back, so
    an alerting run is indistinguishable from a plain one (and both
    from the batch tracker) on every bundled app generator.
    """
    from repro.obs.alerts import AlertConfig
    from repro.stream import WatchTelemetry

    frames = _window_frames(app)
    plain = track_stream(frames, TrackerConfig())
    telemetry = WatchTelemetry(alerts=AlertConfig())
    monitored = track_stream(
        frames, TrackerConfig(), telemetry=telemetry
    )
    assert telemetry.n_updates == len(frames) - 1
    _assert_equal_results(plain, monitored)


@pytest.mark.parametrize("app", APPS)
def test_alerting_track_windows_matches_plain(app):
    """track_windows with a monitor matches its unmonitored output."""
    from repro.obs.alerts import AlertConfig
    from repro.stream import WatchTelemetry, track_windows

    trace = _build_trace(app)
    plain = track_windows(trace, n_windows=4, settings=SETTINGS)
    monitored = track_windows(
        trace, n_windows=4, settings=SETTINGS,
        telemetry=WatchTelemetry(alerts=AlertConfig()),
    )
    _assert_equal_results(plain, monitored)
