"""Golden regression test: seeded windowed WRF run vs committed report.

The committed fixture is ``golden/wrf_windowed_report.json``; refresh it
with ``PYTHONPATH=src python tests/stream/golden/refresh.py`` after an
intentional behaviour change (see that script's docstring).
"""

from __future__ import annotations

import json

from tests.stream.golden.refresh import GOLDEN, build_payload


def _diff_paths(expected, actual, path=""):
    """Every leaf path where the two JSON-like values disagree."""
    if type(expected) is not type(actual):
        return [f"{path or '$'}: type {type(expected).__name__} != "
                f"{type(actual).__name__}"]
    if isinstance(expected, dict):
        diffs = []
        for key in sorted(set(expected) | set(actual)):
            here = f"{path}.{key}" if path else key
            if key not in expected:
                diffs.append(f"{here}: unexpected key")
            elif key not in actual:
                diffs.append(f"{here}: missing key")
            else:
                diffs.extend(_diff_paths(expected[key], actual[key], here))
        return diffs
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return [f"{path}: length {len(expected)} != {len(actual)}"]
        diffs = []
        for index, (exp, act) in enumerate(zip(expected, actual)):
            diffs.extend(_diff_paths(exp, act, f"{path}[{index}]"))
        return diffs
    if expected != actual:
        return [f"{path}: {expected!r} != {actual!r}"]
    return []


def test_windowed_wrf_report_matches_golden():
    expected = json.loads(GOLDEN.read_text())
    # Round-trip through JSON so tuples/ints normalise like the fixture.
    actual = json.loads(json.dumps(build_payload(), sort_keys=True))
    diffs = _diff_paths(expected, actual)
    assert not diffs, (
        "golden report drifted (refresh with "
        "`PYTHONPATH=src python tests/stream/golden/refresh.py` if the "
        "change is intentional):\n  " + "\n  ".join(diffs[:40])
    )
