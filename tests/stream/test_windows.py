"""Unit tests for the time-windowing layer (:mod:`repro.stream.window`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.robust.validate import validate_trace
from repro.stream import WINDOW_KEY, concat_windows, slice_trace
from repro.trace.trace import Trace
from tests.conftest import build_two_region_trace


def _instant_trace() -> Trace:
    """A trace whose time span is exactly zero: every burst begins at
    the same instant and has zero duration."""
    base = build_two_region_trace(nranks=2, iterations=1)
    sel = base.select(base.begin == base.begin.min())
    return Trace(
        rank=sel.rank,
        begin=np.full_like(sel.begin, sel.begin.min()),
        duration=np.zeros_like(sel.duration),
        callpath_id=sel.callpath_id,
        counters=sel.counters_matrix,
        counter_names=sel.counter_names,
        callstacks=sel.callstacks,
        nranks=sel.nranks,
        app=sel.app,
        scenario=sel.scenario,
        clock_hz=sel.clock_hz,
    )


class TestSliceTrace:
    def test_partition_every_burst_exactly_once(self, toy_trace):
        spec, windows = slice_trace(toy_trace, n_windows=4)
        assert spec.n_windows == len(windows) == 4
        assert sum(w.n_bursts for w in windows) == toy_trace.n_bursts
        # Recomputing the assignment agrees with the split.
        idx = spec.window_of(toy_trace.begin)
        for i, window in enumerate(windows):
            assert window.n_bursts == int((idx == i).sum())

    def test_concat_round_trips(self, toy_trace):
        _, windows = slice_trace(toy_trace, n_windows=5)
        rebuilt = concat_windows(windows)
        assert rebuilt.sorted_by_time() == toy_trace.sorted_by_time()

    def test_window_scenario_key(self, toy_trace):
        _, windows = slice_trace(toy_trace, n_windows=3)
        for i, window in enumerate(windows):
            assert window.scenario[WINDOW_KEY] == i
        # Tagging the sub-traces does not leak into the parent.
        assert WINDOW_KEY not in toy_trace.scenario

    def test_per_rank_order_preserved(self, toy_trace):
        trace = toy_trace.sorted_by_time()
        _, windows = slice_trace(trace, n_windows=4)
        for window in windows:
            for rank in range(window.nranks):
                begins = window.begin[window.rank == rank]
                assert np.all(np.diff(begins) >= 0)

    def test_nonempty_windows_validate(self, toy_trace):
        validate_trace(toy_trace, strict=True)
        _, windows = slice_trace(toy_trace, n_windows=4)
        for window in windows:
            if window.n_bursts:
                validate_trace(window, strict=True)

    def test_single_window_is_identity(self, toy_trace):
        spec, windows = slice_trace(toy_trace, n_windows=1)
        assert spec.n_windows == 1
        assert len(windows) == 1
        assert windows[0].n_bursts == toy_trace.n_bursts
        # concat strips the window scenario key, recovering the original.
        rebuilt = concat_windows(windows)
        assert rebuilt.sorted_by_time() == toy_trace.sorted_by_time()

    def test_more_windows_than_bursts_keeps_stable_indices(self):
        trace = build_two_region_trace(nranks=1, iterations=1)  # 2 bursts
        spec, windows = slice_trace(trace, n_windows=10)
        assert len(windows) == 10
        assert sum(w.n_bursts for w in windows) == trace.n_bursts
        assert any(w.n_bursts == 0 for w in windows)
        for i, window in enumerate(windows):
            assert window.scenario[WINDOW_KEY] == i

    def test_width_mode_window_count(self, toy_trace):
        span = float(toy_trace.end.max() - toy_trace.begin.min())
        ns = span / 4 * 1e9
        spec, windows = slice_trace(toy_trace, window_ns=ns)
        assert spec.mode == "width"
        assert spec.n_windows == len(windows)
        assert spec.n_windows in (4, 5)  # last window may be shorter
        assert sum(w.n_bursts for w in windows) == toy_trace.n_bursts

    def test_zero_span_collapses_to_window_zero(self):
        trace = build_two_region_trace(nranks=2, iterations=1)
        instant = trace.select(trace.begin == trace.begin.min())
        spec, windows = slice_trace(instant, n_windows=3)
        assert windows[0].n_bursts == instant.n_bursts
        assert all(w.n_bursts == 0 for w in windows[1:])
        assert spec.width == 0.0 or spec.width > 0.0  # well-defined

    def test_zero_width_span_collapses_to_single_window(self):
        """All bursts share one instant (zero durations too): the count
        mode must collapse to the explicit single-window case instead of
        emitting n zero-width windows."""
        trace = _instant_trace()
        spec, windows = slice_trace(trace, n_windows=4)
        assert spec.mode == "count"
        assert spec.n_windows == len(windows) == 1
        assert spec.width == 0.0
        assert windows[0].n_bursts == trace.n_bursts
        rebuilt = concat_windows(windows)
        assert rebuilt.sorted_by_time() == trace.sorted_by_time()

    def test_zero_width_span_in_width_mode(self):
        trace = _instant_trace()
        spec, windows = slice_trace(trace, window_ns=1e6)
        assert spec.n_windows == len(windows) == 1
        assert windows[0].n_bursts == trace.n_bursts

    def test_window_of_zero_width_sends_everything_to_window_zero(self):
        trace = _instant_trace()
        spec, _ = slice_trace(trace, n_windows=7)
        idx = spec.window_of(trace.begin)
        assert idx.dtype == np.int64
        assert (idx == 0).all()

    def test_spec_as_dict_round_trip_fields(self, toy_trace):
        spec, _ = slice_trace(toy_trace, n_windows=2)
        as_dict = spec.as_dict()
        assert as_dict["mode"] == "count"
        assert as_dict["n_windows"] == 2
        assert as_dict["t0"] == spec.t0
        assert as_dict["t_end"] == spec.t_end


class TestSliceErrors:
    def test_both_modes_rejected(self, toy_trace):
        with pytest.raises(StreamError, match="exactly one"):
            slice_trace(toy_trace, n_windows=2, window_ns=1e9)

    def test_neither_mode_rejected(self, toy_trace):
        with pytest.raises(StreamError, match="exactly one"):
            slice_trace(toy_trace)

    def test_empty_trace_rejected(self, toy_trace):
        empty = toy_trace.select(np.zeros(toy_trace.n_bursts, dtype=bool))
        with pytest.raises(StreamError, match="no bursts"):
            slice_trace(empty, n_windows=2)

    def test_nonpositive_window_count_rejected(self, toy_trace):
        with pytest.raises(StreamError, match=">= 1"):
            slice_trace(toy_trace, n_windows=0)

    def test_nonpositive_width_rejected(self, toy_trace):
        with pytest.raises(StreamError, match="> 0"):
            slice_trace(toy_trace, window_ns=0.0)


class TestConcatErrors:
    def test_empty_list_rejected(self):
        with pytest.raises(StreamError, match="at least one"):
            concat_windows([])

    def test_mismatched_metadata_rejected(self, toy_trace):
        other = build_two_region_trace(app="other")
        _, windows_a = slice_trace(toy_trace, n_windows=2)
        _, windows_b = slice_trace(other, n_windows=2)
        with pytest.raises(StreamError, match="metadata"):
            concat_windows([windows_a[0], windows_b[1]])
