"""Behaviour of the streaming pipeline and the ``repro-track watch`` CLI.

Covers the acceptance criteria of the streaming PR: per-window metrics
(``stream.update_seconds`` observed once per live pair), checkpointed
resume that recomputes nothing, quarantined-window semantics and the
CLI exit codes (0 strict-clean, 3 partial).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.errors import ReproError
from repro.parallel.cache import PipelineCache
from repro.robust.partial import PartialResult
from repro.stream import track_windows
from repro.stream.checkpoint import load_checkpoint, save_checkpoint, stream_key
from repro.stream.window import slice_trace
from repro.clustering.frames import FrameSettings
from repro.tracking.tracker import TrackerConfig
from repro.trace.callstack import CallPath
from repro.trace.io import save_trace
from repro.trace.trace import TraceBuilder
from tests.conftest import build_two_region_trace


@pytest.fixture()
def metrics():
    """Enabled, clean obs state; returns snapshot helpers."""
    obs.enable()
    obs.reset()

    def counter(name):
        snap = obs.metrics_snapshot()
        return sum(c["value"] for c in snap["counters"] if c["name"] == name)

    def histogram_count(name):
        snap = obs.metrics_snapshot()
        return sum(h["count"] for h in snap["histograms"] if h["name"] == name)

    yield counter, histogram_count
    obs.reset()
    obs.disable()


def build_gappy_trace(*, nranks: int = 4, iterations: int = 4):
    """A two-region trace plus one isolated late burst.

    Sliced into 4 windows, the late burst lands alone in the last
    window; a one-point window cannot cluster and is quarantined,
    exercising the corrupt-window path.
    """
    rng = np.random.default_rng(7)
    builder = TraceBuilder(nranks=nranks, app="toy", scenario={})
    path_a = CallPath.single("region_a", "main.c", 10)
    path_b = CallPath.single("region_b", "main.c", 20)
    clock = 1e9
    t = np.zeros(nranks)
    for _ in range(iterations):
        for path, instr, ipc in ((path_a, 1e6, 1.0), (path_b, 4e6, 0.5)):
            for rank in range(nranks):
                instructions = instr * (1.0 + 0.01 * rng.standard_normal())
                duration = instructions / ipc / clock
                builder.add(
                    rank=rank,
                    begin=float(t[rank]),
                    duration=duration,
                    callpath=path,
                    counters=[instructions, instructions / ipc,
                              instructions * 0.01, instructions * 0.001,
                              instructions * 0.0001],
                )
                t[rank] += duration
            t[:] = t.max()
    # One lone burst after a gap: with 4 windows the main activity
    # spans windows 0-2 and the lone burst sits alone in window 3.
    builder.add(
        rank=0,
        begin=float(t.max()) * 1.4,
        duration=1e-3,
        callpath=path_a,
        counters=[1e6, 1e6, 1e4, 1e3, 1e2],
    )
    return builder.build()


class TestTrackWindowsMetrics:
    def test_update_seconds_observed_once_per_pair(self, toy_trace, metrics):
        counter, histogram_count = metrics
        updates = []
        track_windows(toy_trace, n_windows=5, on_update=updates.append)
        n_alive = sum(
            1 for w in slice_trace(toy_trace, n_windows=5)[1] if w.n_bursts
        )
        # One update per live frame push; one pair per push after the first.
        assert len(updates) == n_alive
        assert histogram_count("stream.update_seconds") == n_alive - 1
        assert counter("stream.updates_total") == n_alive - 1
        assert counter("stream.windows_total") == 5
        assert counter("stream.windows_resumed") == 0

    def test_updates_carry_running_state(self, toy_trace):
        updates = []
        result = track_windows(toy_trace, n_windows=4, on_update=updates.append)
        assert updates[0].pair is None
        assert all(u.pair is not None for u in updates[1:])
        # The final update's running regions equal the result's regions.
        assert updates[-1].regions == result.regions
        assert updates[-1].coverage == result.coverage


class TestResume:
    def test_warm_rerun_replays_everything(self, toy_trace, tmp_path, metrics):
        counter, histogram_count = metrics
        cache = PipelineCache(tmp_path / "cache")
        first = track_windows(toy_trace, n_windows=5, cache=cache)
        obs.reset()
        replayed = []
        second = track_windows(
            toy_trace, n_windows=5, cache=cache, on_update=replayed.append
        )
        n_alive = sum(
            1 for w in slice_trace(toy_trace, n_windows=5)[1] if w.n_bursts
        )
        assert counter("stream.windows_resumed") == 5
        assert counter("stream.updates_total") == 0
        assert histogram_count("stream.update_seconds") == 0
        assert counter("cache.miss") == 0  # no frame rebuilt
        assert replayed == []  # on_update only fires for live pushes
        assert first.regions == second.regions
        assert [p.relations for p in first.pair_relations] == [
            p.relations for p in second.pair_relations
        ]
        assert n_alive >= 2

    def test_partial_checkpoint_resumes_midstream(
        self, toy_trace, tmp_path, metrics
    ):
        counter, histogram_count = metrics
        cache = PipelineCache(tmp_path / "cache")
        full = track_windows(toy_trace, n_windows=5, cache=cache)
        # Truncate the checkpoint to its first three windows, simulating
        # a watch killed mid-stream.
        key = stream_key(
            toy_trace,
            slice_trace(toy_trace, n_windows=5)[0].as_dict(),
            FrameSettings(),
            TrackerConfig(),
            strict=True,
        )
        records = load_checkpoint(cache, key)
        assert records is not None and len(records) == 5
        save_checkpoint(cache, key, records[:3])
        obs.reset()
        resumed = track_windows(toy_trace, n_windows=5, cache=cache)
        alive_resumed = sum(1 for r in records[:3] if r.status == "ok")
        alive_live = sum(1 for r in records[3:] if r.status == "ok")
        assert counter("stream.windows_resumed") == alive_resumed
        assert counter("stream.updates_total") == alive_live
        assert resumed.regions == full.regions

    def test_corrupt_checkpoint_starts_cold(self, toy_trace, tmp_path, metrics):
        counter, _ = metrics
        cache = PipelineCache(tmp_path / "cache")
        key = stream_key(
            toy_trace,
            slice_trace(toy_trace, n_windows=4)[0].as_dict(),
            FrameSettings(),
            TrackerConfig(),
            strict=True,
        )
        cache.put(key, {"format": 999, "windows": "garbage"})
        result = track_windows(toy_trace, n_windows=4, cache=cache)
        assert counter("stream.windows_resumed") == 0
        assert result.regions


class TestQuarantinedWindows:
    def test_strict_raises_on_bad_window(self):
        trace = build_gappy_trace()
        with pytest.raises(ReproError):
            track_windows(trace, n_windows=4)

    def test_non_strict_quarantines_bad_window(self, metrics):
        counter, _ = metrics
        trace = build_gappy_trace()
        outcome = track_windows(trace, n_windows=4, strict=False)
        assert isinstance(outcome, PartialResult)
        stages = [f.stage for f in outcome.failures]
        assert "window" in stages
        assert counter("robust.quarantined_total") >= 1
        assert outcome.value.regions


class TestWatchCli:
    def _simulate(self, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main([
            "simulate", "hydroc", "block_size=64", "ranks=8",
            "iterations=6", "--seed", "3", "-o", str(trace_file),
        ]) == 0
        return trace_file

    def test_watch_strict_exit_zero_and_report(self, tmp_path, capsys):
        trace_file = self._simulate(tmp_path)
        report = tmp_path / "out.json"
        code = main([
            "watch", str(trace_file), "--windows", "4",
            "--report", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "window 0: stream opened" in out
        assert "regions" in out
        payload = json.loads(report.read_text())
        assert payload["schema"] == "repro.report/1"
        assert payload["runs"][0]["name"] == "watch"

    def test_watch_quarantined_window_exits_three(self, tmp_path, capsys):
        trace = build_gappy_trace()
        trace_file = tmp_path / "gappy.json"
        save_trace(trace, trace_file)
        report = tmp_path / "out.json"
        code = main([
            "watch", str(trace_file), "--windows", "4", "--no-strict",
            "--report", str(report),
        ])
        assert code == 3
        out = capsys.readouterr().out + capsys.readouterr().err
        assert report.exists()

    def test_watch_resumes_from_cache_dir(self, tmp_path, capsys):
        trace_file = self._simulate(tmp_path)
        cache_dir = tmp_path / "cache"
        args = [
            "watch", str(trace_file), "--windows", "4",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "window 0" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        # All windows replay from the checkpoint: no live update lines.
        assert "window 0" not in second
        assert "Tracked regions" in second or "regions" in second

    def test_watch_sharded_output_matches_plain(self, tmp_path, capsys):
        trace_file = self._simulate(tmp_path)
        capsys.readouterr()
        assert main(["watch", str(trace_file), "--windows", "4"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "watch", str(trace_file), "--windows", "4", "--shards", "3",
        ]) == 0
        sharded = capsys.readouterr().out
        # Sharding is a throughput knob: every window line, region and
        # trend figure comes out identical.
        assert sharded == plain

    def test_watch_jobs_prefetch_matches_serial(self, tmp_path, capsys):
        trace_file = self._simulate(tmp_path)
        capsys.readouterr()
        assert main(["watch", str(trace_file), "--windows", "4"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "watch", str(trace_file), "--windows", "4",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        fanned = capsys.readouterr().out
        assert fanned == plain

    def test_watch_bounded_writes_tables_only_report(self, tmp_path, capsys):
        trace_file = self._simulate(tmp_path)
        report = tmp_path / "bounded.json"
        code = main([
            "watch", str(trace_file), "--windows", "4",
            "--max-live-windows", "2", "--report", str(report),
        ])
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["runs"][0]["name"] == "watch"
        # Condensed windows carry no burst scatter; the report must not
        # try to render them.
        assert not payload["runs"][0].get("viz")

    def test_watch_rejects_missing_window_mode(self, tmp_path):
        trace_file = self._simulate(tmp_path)
        with pytest.raises(SystemExit):
            main(["watch", str(trace_file)])

    def test_watch_mutually_exclusive_modes(self, tmp_path):
        trace_file = self._simulate(tmp_path)
        with pytest.raises(SystemExit):
            main([
                "watch", str(trace_file),
                "--windows", "4", "--window-ns", "1e6",
            ])


class TestWatchAlertsCli:
    """``watch --alerts``: exit codes, stderr stream, JSONL, summary."""

    def _drift_file(self, tmp_path, *, drift: bool):
        from tests.stream.test_alerts import build_drift_trace

        trace_file = tmp_path / ("drift.json" if drift else "steady.json")
        save_trace(build_drift_trace(drift=drift), trace_file)
        return trace_file

    _WINDOW_NS = "20000000"  # one iteration slot of build_drift_trace

    def test_drifting_run_exits_four_with_alert_lines(
        self, tmp_path, capsys
    ):
        trace_file = self._drift_file(tmp_path, drift=True)
        code = main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts",
        ])
        assert code == 4
        captured = capsys.readouterr()
        assert "ALERT [divergence]" in captured.err
        assert "watch summary:" in captured.err
        assert "alerts:" in captured.err
        # Alert lines go to stderr only; stdout keeps the stream lines.
        assert "ALERT" not in captured.out

    def test_steady_run_exits_zero_with_empty_summary(
        self, tmp_path, capsys
    ):
        trace_file = self._drift_file(tmp_path, drift=False)
        code = main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "ALERT" not in err
        assert "alerts: none" in err

    def test_alerts_jsonl_implies_alerts_and_validates(
        self, tmp_path, capsys
    ):
        trace_file = self._drift_file(tmp_path, drift=True)
        jsonl = tmp_path / "alerts.jsonl"
        code = main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts-jsonl", str(jsonl),
        ])
        assert code == 4
        lines = jsonl.read_text().splitlines()
        assert lines
        from repro.obs.alerts import AlertRecord

        records = [AlertRecord.from_dict(json.loads(line)) for line in lines]
        assert any(r.kind == "divergence" for r in records)
        assert all(r.track for r in records)

    def test_alert_threshold_is_honoured(self, tmp_path, capsys):
        # An absurdly wide tolerance silences the drift's divergences
        # (the regression check still fires — it has its own knob).
        trace_file = self._drift_file(tmp_path, drift=True)
        main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts", "--alert-threshold", "100",
        ])
        err = capsys.readouterr().err
        assert "ALERT [divergence]" not in err

    def test_summary_line_appears_without_alerts_flag(
        self, tmp_path, capsys
    ):
        trace_file = self._drift_file(tmp_path, drift=False)
        code = main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "watch summary:" in err
        assert "alerts: disabled" in err

    def test_quarantine_exit_code_beats_alerts(self, tmp_path, capsys):
        # Quarantined windows (exit 3) take precedence over exit 4.
        trace = build_gappy_trace()
        trace_file = tmp_path / "gappy.json"
        save_trace(trace, trace_file)
        code = main([
            "watch", str(trace_file), "--windows", "4", "--no-strict",
            "--alerts",
        ])
        assert code == 3

    def test_html_report_carries_stream_section(self, tmp_path, capsys):
        trace_file = self._drift_file(tmp_path, drift=True)
        report = tmp_path / "report.html"
        main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts", "--report", str(report),
        ])
        html = report.read_text()
        assert "Live watch telemetry" in html
        assert "stroke-dasharray" in html  # forecast sparkline
        assert "ALERT" not in html  # table, not raw stderr lines
        assert "divergence" in html

    def test_json_report_carries_stream_payload(self, tmp_path, capsys):
        trace_file = self._drift_file(tmp_path, drift=True)
        report = tmp_path / "report.json"
        main([
            "watch", str(trace_file), "--window-ns", self._WINDOW_NS,
            "--alerts", "--report", str(report),
        ])
        payload = json.loads(report.read_text())
        stream = payload["stream"]
        assert stream["alerts_enabled"] is True
        assert stream["windows"] == 10
        assert stream["alerts"]
        assert stream["series"]
        quality = payload["runs"][0]["quality"]
        assert quality["alerts"]["total"] == len(stream["alerts"])

    def test_plain_report_payload_has_no_stream_key(self, tmp_path, capsys):
        # Non-watch reports keep the pre-alerting payload shape.
        trace_file = self._drift_file(tmp_path, drift=False)
        report = tmp_path / "report.json"
        main([
            "track", str(trace_file), str(trace_file),
            "--report", str(report),
        ])
        payload = json.loads(report.read_text())
        assert "stream" not in payload
        assert "alerts" not in payload["runs"][0]["quality"]
