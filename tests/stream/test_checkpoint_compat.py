"""Checkpoint format compatibility: format-1 payloads keep loading.

Format 2 added the per-window ``alerts`` list.  These tests pin the
contract: format-1 checkpoints (written before alerting existed) load
with empty alerts and resume cleanly — including into an alerting run,
which recomputes alerts from the replayed frames — while unknown
formats are dropped wholesale.
"""

from __future__ import annotations

from repro.clustering.frames import FrameSettings
from repro.obs.alerts import AlertConfig
from repro.parallel.cache import PipelineCache
from repro.stream import WatchTelemetry, slice_trace, track_windows
from repro.stream.checkpoint import (
    _ACCEPTED_FORMATS,
    _CHECKPOINT_FORMAT,
    load_checkpoint,
    stream_key,
)
from repro.tracking.tracker import TrackerConfig
from tests.stream.test_alerts import DRIFT_WINDOW_NS, build_drift_trace


def _checkpointed_run(tmp_path, *, alerts=None):
    """One full watch over the drift trace; returns (trace, cache, key)."""
    trace = build_drift_trace(drift=True)
    cache = PipelineCache(tmp_path / "cache")
    telemetry = WatchTelemetry(alerts=alerts)
    track_windows(
        trace, window_ns=DRIFT_WINDOW_NS, cache=cache, telemetry=telemetry
    )
    spec, _ = slice_trace(trace, window_ns=DRIFT_WINDOW_NS)
    key = stream_key(
        trace, spec.as_dict(), FrameSettings(), TrackerConfig(), strict=True
    )
    return trace, cache, key, telemetry


def _downgrade_to_format1(cache, key):
    """Rewrite the stored checkpoint as a faithful format-1 payload."""
    payload = cache.get(key)
    assert payload is not None and payload["format"] == _CHECKPOINT_FORMAT
    payload["format"] = 1
    for window in payload["windows"]:
        window.pop("alerts", None)
    cache.put(key, payload)


class TestFormatConstants:
    def test_current_format_is_accepted(self):
        assert _CHECKPOINT_FORMAT in _ACCEPTED_FORMATS

    def test_format_one_still_accepted(self):
        assert 1 in _ACCEPTED_FORMATS


class TestFormatOne:
    def test_loads_with_empty_alerts(self, tmp_path):
        _, cache, key, _ = _checkpointed_run(
            tmp_path, alerts=AlertConfig()
        )
        _downgrade_to_format1(cache, key)
        records = load_checkpoint(cache, key)
        assert records is not None
        assert all(record.alerts == () for record in records)

    def test_resumes_a_plain_run(self, tmp_path):
        trace, cache, key, _ = _checkpointed_run(tmp_path)
        _downgrade_to_format1(cache, key)
        reference = track_windows(trace, window_ns=DRIFT_WINDOW_NS)
        telemetry = WatchTelemetry()
        resumed = track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=telemetry,
        )
        assert telemetry.n_resumed > 0
        assert resumed.regions == reference.regions

    def test_resumes_into_alerting_run_with_recomputed_alerts(
        self, tmp_path
    ):
        trace, cache, key, _ = _checkpointed_run(tmp_path)
        _downgrade_to_format1(cache, key)
        reference = WatchTelemetry(alerts=AlertConfig())
        track_windows(
            build_drift_trace(drift=True), window_ns=DRIFT_WINDOW_NS,
            telemetry=reference,
        )
        telemetry = WatchTelemetry(alerts=AlertConfig())
        track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=telemetry,
        )
        assert telemetry.n_resumed > 0
        assert telemetry.alerts == reference.alerts


class TestFormatTwo:
    def test_alerts_round_trip_through_the_checkpoint(self, tmp_path):
        _, cache, key, telemetry = _checkpointed_run(
            tmp_path, alerts=AlertConfig()
        )
        assert telemetry.alerts
        records = load_checkpoint(cache, key)
        stored = [
            alert for record in records for alert in record.alerts
        ]
        assert stored == telemetry.alerts

    def test_unknown_future_format_is_dropped(self, tmp_path):
        _, cache, key, _ = _checkpointed_run(tmp_path)
        payload = cache.get(key)
        payload["format"] = 99
        cache.put(key, payload)
        assert load_checkpoint(cache, key) is None

    def test_malformed_alert_entry_drops_the_checkpoint(self, tmp_path):
        _, cache, key, _ = _checkpointed_run(
            tmp_path, alerts=AlertConfig()
        )
        payload = cache.get(key)
        tainted = next(
            w for w in payload["windows"] if w.get("alerts")
        )
        tainted["alerts"][0]["kind"] = "meltdown"
        cache.put(key, payload)
        assert load_checkpoint(cache, key) is None


class TestKeyMismatch:
    """Sharding / memory-bound knobs participate in the stream key.

    A checkpoint written under one (shards, max_live) configuration
    must not be adopted by a run under another — the regression test
    for the key that silently omitted them.
    """

    def _key(self, trace, **kwargs):
        spec, _ = slice_trace(trace, window_ns=DRIFT_WINDOW_NS)
        return stream_key(
            trace, spec.as_dict(), FrameSettings(), TrackerConfig(),
            strict=True, **kwargs,
        )

    def test_default_key_unchanged_by_default_knobs(self, tmp_path):
        trace, cache, key, _ = _checkpointed_run(tmp_path)
        explicit = self._key(trace, shards=1, max_live=None)
        assert explicit == key
        assert load_checkpoint(cache, explicit) is not None

    def test_shard_count_mismatch_misses(self, tmp_path):
        trace, cache, _, _ = _checkpointed_run(tmp_path)
        sharded = self._key(trace, shards=2)
        assert cache.get(sharded) is None
        assert load_checkpoint(cache, sharded) is None

    def test_max_live_mismatch_misses(self, tmp_path):
        trace, cache, _, _ = _checkpointed_run(tmp_path)
        bounded = self._key(trace, max_live=3)
        assert cache.get(bounded) is None
        assert load_checkpoint(cache, bounded) is None
