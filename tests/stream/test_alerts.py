"""Live-watch alerting: divergence onset, purity, determinism, serde.

The acceptance scenarios of the alerting PR: an injected linear IPC
drift raises a divergence alert within two windows of onset, a steady
run raises none, alert emission never perturbs the tracking result,
and a checkpointed resume re-emits identical alerts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.alerts import (
    ALERT_KINDS,
    AlertConfig,
    AlertRecord,
    format_alert,
    summarize_alerts,
)
from repro.parallel.cache import PipelineCache
from repro.stream import WatchTelemetry, track_windows
from repro.stream.forecast import StreamMonitor
from repro.trace.callstack import CallPath
from repro.trace.trace import TraceBuilder

#: Window width matching one iteration slot of :func:`build_drift_trace`.
DRIFT_WINDOW_NS = 0.02 * 1e9

#: First iteration of the injected drift.
DRIFT_ONSET = 6


def build_drift_trace(*, drift: bool, nranks: int = 6, iterations: int = 10):
    """Two-region trace; region_a's IPC decays geometrically from
    iteration :data:`DRIFT_ONSET` when *drift* is set.

    Each iteration occupies one fixed 0.02 s slot, so slicing with
    ``window_ns=DRIFT_WINDOW_NS`` yields exactly one window per
    iteration (also used by the CI watch-with-alerts smoke job).
    """
    builder = TraceBuilder(
        nranks=nranks, app="driftcase", scenario={"ranks": nranks}
    )
    path_a = CallPath.single("region_a", "main.c", 10)
    path_b = CallPath.single("region_b", "main.c", 20)
    slot = 0.02
    for k in range(iterations):
        ipc_a = 1.0
        if drift and k >= DRIFT_ONSET:
            ipc_a = 0.75 ** (k - DRIFT_ONSET + 1)
        for rank in range(nranks):
            t = k * slot
            for path, ipc, instr in (
                (path_a, ipc_a, 8e6), (path_b, 0.5, 4e6),
            ):
                instructions = instr * (1 + 0.001 * rank)
                cycles = instructions / ipc
                builder.add(
                    rank=rank, begin=t, duration=0.004, callpath=path,
                    counters=[instructions, cycles, instructions * 0.01,
                              instructions * 0.001, instructions * 0.0001],
                )
                t += 0.004
    return builder.build()


def _watch(trace, **telemetry_kwargs):
    telemetry = WatchTelemetry(**telemetry_kwargs)
    result = track_windows(
        trace, window_ns=DRIFT_WINDOW_NS, telemetry=telemetry
    )
    return result, telemetry


class TestDriftScenario:
    def test_divergence_within_two_windows_of_onset(self):
        _, telemetry = _watch(
            build_drift_trace(drift=True), alerts=AlertConfig()
        )
        divergences = [
            a for a in telemetry.alerts if a.kind == "divergence"
        ]
        assert divergences, "drift raised no divergence alert"
        first = min(a.window for a in divergences)
        assert DRIFT_ONSET <= first <= DRIFT_ONSET + 1
        assert divergences[0].metric == "ipc"
        assert divergences[0].observed < divergences[0].forecast

    def test_drift_also_flags_ipc_regression(self):
        _, telemetry = _watch(
            build_drift_trace(drift=True), alerts=AlertConfig()
        )
        kinds = {a.kind for a in telemetry.alerts}
        assert "regression" in kinds

    def test_steady_run_raises_no_alerts(self):
        _, telemetry = _watch(
            build_drift_trace(drift=False), alerts=AlertConfig()
        )
        assert telemetry.alerts == []
        assert "alerts: none" in telemetry.summary_line()

    def test_alerts_deterministic_across_worker_counts(self, monkeypatch):
        trace = build_drift_trace(drift=True)
        _, serial = _watch(trace, alerts=AlertConfig())
        monkeypatch.setenv("REPRO_JOBS", "2")
        _, parallel = _watch(trace, alerts=AlertConfig())
        assert serial.alerts == parallel.alerts


class TestPurity:
    def test_monitoring_never_perturbs_tracking(self):
        trace = build_drift_trace(drift=True)
        plain = track_windows(trace, window_ns=DRIFT_WINDOW_NS)
        monitored, telemetry = _watch(trace, alerts=AlertConfig())
        assert telemetry.alerts  # the monitor did real work
        assert plain.regions == monitored.regions
        assert plain.coverage == monitored.coverage
        for left, right in zip(
            plain.pair_relations, monitored.pair_relations
        ):
            assert left.relations == right.relations

    def test_health_surface_without_alerts_is_pure_too(self):
        trace = build_drift_trace(drift=False)
        plain = track_windows(trace, window_ns=DRIFT_WINDOW_NS)
        watched, telemetry = _watch(trace)
        assert not telemetry.alerts_enabled
        assert "alerts: disabled" in telemetry.summary_line()
        assert plain.regions == watched.regions


class TestResume:
    def test_replay_reemits_identical_alerts(self, tmp_path):
        trace = build_drift_trace(drift=True)
        cache = PipelineCache(tmp_path / "cache")
        telemetry_cold = WatchTelemetry(alerts=AlertConfig())
        track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=telemetry_cold,
        )
        assert telemetry_cold.n_resumed == 0
        telemetry_warm = WatchTelemetry(alerts=AlertConfig())
        track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=telemetry_warm,
        )
        assert telemetry_warm.n_resumed > 0
        assert telemetry_warm.alerts == telemetry_cold.alerts

    def test_alerts_off_checkpoint_resumes_into_alerting_run(self, tmp_path):
        trace = build_drift_trace(drift=True)
        cache = PipelineCache(tmp_path / "cache")
        # First run never forecast anything...
        track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=WatchTelemetry(),
        )
        # ...yet the resumed alerting run recomputes the full alert set.
        _, reference = _watch(build_drift_trace(drift=True),
                              alerts=AlertConfig())
        telemetry = WatchTelemetry(alerts=AlertConfig())
        track_windows(
            trace, window_ns=DRIFT_WINDOW_NS, cache=cache,
            telemetry=telemetry,
        )
        assert telemetry.n_resumed > 0
        assert telemetry.alerts == reference.alerts


# ----------------------------------------------------------------------
# Structural alerts, exercised through duck-typed updates: the monitor
# only reads frame/step/regions, so tiny fakes drive the exact presence
# histories that are awkward to provoke through DBSCAN.
# ----------------------------------------------------------------------
class _FakeCluster:
    def __init__(self, indices):
        self.indices = np.asarray(indices, dtype=int)


class _FakeTrace:
    def __init__(self, metrics, scenario):
        self._metrics = metrics
        self.scenario = scenario

    def metric(self, name):
        return self._metrics[name]


class _FakeFrame:
    def __init__(self, trace, clusters):
        self.trace = trace
        self._clusters = clusters

    def cluster(self, cid):
        return self._clusters[cid]


class _FakeRegion:
    def __init__(self, region_id, members):
        self.region_id = region_id
        self.members = members


class _FakeUpdate:
    def __init__(self, frame, step, regions):
        self.frame = frame
        self.step = step
        self.regions = regions


def _fake_update(step: int, ipc_by_cluster: dict[int, float]):
    """One update whose region holds the given clusters at *step*."""
    cids = sorted(ipc_by_cluster)
    instructions = np.full(len(cids), 1e6)
    cycles = np.asarray(
        [1e6 / ipc_by_cluster[cid] for cid in cids], dtype=float
    )
    frame = _FakeFrame(
        _FakeTrace(
            {"instructions": instructions, "cycles": cycles},
            scenario={"window": step},
        ),
        {cid: _FakeCluster([index]) for index, cid in enumerate(cids)},
    )
    if step == 0:
        members = [frozenset(cids)]
    else:
        # The eldest node (f0:c1) anchors the stable track key.
        members = (
            [frozenset({1})]
            + [frozenset()] * (step - 1)
            + [frozenset(cids)]
        )
    region = _FakeRegion(1, members)
    return _FakeUpdate(frame, step, [region])


#: Thresholds that silence divergence/regression, isolating the
#: structural kinds.
_QUIET = AlertConfig(
    metrics=("ipc",), threshold=1e9, sigma=1e9, regression_threshold=1e9
)


class TestStructuralAlerts:
    def test_death_fires_once_after_min_history(self):
        monitor = StreamMonitor(_QUIET)
        for step in range(4):
            assert monitor.observe(_fake_update(step, {1: 1.0})) == ()
        dead = monitor.observe(_fake_update(4, {}))
        assert [a.kind for a in dead] == ["death"]
        assert dead[0].track == "f0:c1"
        # Still absent next step: no repeat.
        assert monitor.observe(_fake_update(5, {})) == ()

    def test_young_track_death_is_silent(self):
        monitor = StreamMonitor(_QUIET)
        monitor.observe(_fake_update(0, {1: 1.0}))
        assert monitor.observe(_fake_update(1, {})) == ()

    def test_split_fires_when_single_cluster_multiplies(self):
        monitor = StreamMonitor(_QUIET)
        for step in range(4):
            monitor.observe(_fake_update(step, {1: 1.0}))
        split = monitor.observe(_fake_update(4, {1: 1.2, 2: 0.8}))
        assert [a.kind for a in split] == ["split"]
        # Splitting again stays silent (flagged once per track).
        assert monitor.observe(_fake_update(5, {1: 1.2, 2: 0.8})) == ()

    def test_plateau_fires_when_growth_stalls(self):
        monitor = StreamMonitor(_QUIET)
        series = [1.0, 2.0, 3.0, 4.0, 5.0, 5.05, 5.1, 5.1, 5.1, 5.1, 5.1]
        alerts = []
        for step, ipc in enumerate(series):
            alerts.extend(monitor.observe(_fake_update(step, {1: ipc})))
        assert "plateau" in {a.kind for a in alerts}


class TestAlertSerde:
    def test_round_trip(self):
        record = AlertRecord(
            window=6, step=6, region_id=1, track="f0:c1",
            kind="divergence", metric="ipc", observed=0.75, forecast=1.0,
            threshold=0.15, deviation=0.25, model="ConstantModel",
            message="observed 0.75, forecast 1",
        )
        assert AlertRecord.from_dict(record.to_dict()) == record

    def test_structural_record_round_trips_nones(self):
        record = AlertRecord(
            window=3, step=3, region_id=2, track="f0:c2", kind="death",
        )
        rebuilt = AlertRecord.from_dict(record.to_dict())
        assert rebuilt == record
        assert rebuilt.metric is None and rebuilt.observed is None

    def test_unknown_kind_rejected(self):
        payload = AlertRecord(
            window=0, step=0, region_id=1, track="f0:c1", kind="death",
        ).to_dict()
        payload["kind"] = "meltdown"
        with pytest.raises(ValueError):
            AlertRecord.from_dict(payload)

    def test_every_kind_is_serialisable(self):
        for kind in ALERT_KINDS:
            record = AlertRecord(
                window=1, step=1, region_id=1, track="f0:c1", kind=kind,
            )
            assert AlertRecord.from_dict(record.to_dict()).kind == kind


class TestSummaries:
    def test_totals_by_kind_and_region(self):
        alerts = [
            AlertRecord(window=1, step=1, region_id=1, track="f0:c1",
                        kind="divergence", metric="ipc"),
            AlertRecord(window=2, step=2, region_id=1, track="f0:c1",
                        kind="divergence", metric="ipc"),
            AlertRecord(window=2, step=2, region_id=2, track="f0:c2",
                        kind="death"),
        ]
        totals = summarize_alerts(alerts)
        assert totals.total == 3
        assert dict(totals.by_kind) == {"divergence": 2, "death": 1}
        assert dict(totals.by_region) == {"1": 2, "2": 1}
        payload = totals.to_dict()
        assert payload["by_kind"]["divergence"] == 2

    def test_format_alert_carries_kind_window_metric(self):
        line = format_alert(AlertRecord(
            window=6, step=6, region_id=1, track="f0:c1",
            kind="divergence", metric="ipc", message="deviated",
        ))
        assert line == "ALERT [divergence] window 6 region 1 ipc: deviated"
