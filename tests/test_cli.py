"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.trace.io import load_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestInfo:
    def test_lists_everything(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "wrf" in out
        assert "MareNostrum" in out
        assert "CGPOP: 4 images" in out


class TestSimulate:
    def test_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        code = main([
            "simulate", "hydroc", "block_size=32", "ranks=4", "iterations=2",
            "-o", str(out_file),
        ])
        assert code == 0
        trace = load_trace(out_file)
        assert trace.app == "HydroC"
        assert trace.scenario["block_size"] == 32

    def test_bad_scenario_argument(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "hydroc", "blocksize", "-o", str(tmp_path / "t.json")])

    def test_scenario_type_coercion(self, tmp_path):
        out_file = tmp_path / "t.json"
        main(["simulate", "cgpop", "machine=MinoTauro", "ranks=4",
              "iterations=2", "-o", str(out_file)])
        trace = load_trace(out_file)
        assert trace.scenario["machine"] == "MinoTauro"


class TestTrack:
    def test_end_to_end(self, tmp_path, capsys):
        for index, block in enumerate((32, 64)):
            main([
                "simulate", "hydroc", f"block_size={block}", "ranks=8",
                "iterations=4", "--seed", str(index),
                "-o", str(tmp_path / f"t{index}.json"),
            ])
        capsys.readouterr()
        code = main([
            "track", str(tmp_path / "t0.json"), str(tmp_path / "t1.json"),
            "--render", str(tmp_path / "render"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage: 100%" in out
        assert "ipc evolution" in out
        assert (tmp_path / "render" / "frames.svg").exists()
        assert (tmp_path / "render" / "trend_ipc.svg").exists()

    def test_trend_metric_selection(self, tmp_path, capsys):
        for index, block in enumerate((32, 64)):
            main([
                "simulate", "hydroc", f"block_size={block}", "ranks=4",
                "iterations=3", "--seed", str(index),
                "-o", str(tmp_path / f"t{index}.json"),
            ])
        capsys.readouterr()
        main([
            "track", str(tmp_path / "t0.json"), str(tmp_path / "t1.json"),
            "--trend-metric", "l1_misses",
        ])
        out = capsys.readouterr().out
        assert "l1_misses evolution" in out


class TestStudy:
    def test_runs_cgpop(self, capsys):
        assert main(["study", "cgpop"]) == 0
        out = capsys.readouterr().out
        assert "case study: CGPOP" in out
        assert "coverage: 66%" in out

    def test_unknown_study(self, capsys):
        assert main(["study", "nope"]) == 2
        assert "unknown case study" in capsys.readouterr().err


class TestCache:
    def test_no_dir_is_an_error(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["cache", "info"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_info_and_clear(self, tmp_path, capsys):
        for index, ranks in enumerate((8, 16)):
            main([
                "simulate", "wrf", f"ranks={ranks}", "iterations=2",
                "base_ranks=8", "--seed", str(index),
                "-o", str(tmp_path / f"t{index}.json"),
            ])
        main([
            "track", str(tmp_path / "t0.json"), str(tmp_path / "t1.json"),
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
        ])
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert "frame: 2" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_env_variable_configures_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envcache"))
        assert main(["cache", "info"]) == 0
        assert "entries: 0" in capsys.readouterr().out
