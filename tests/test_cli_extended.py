"""Tests for the report/animate CLI subcommands and .prv CLI flow."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def trace_files(tmp_path):
    paths = []
    for index, block in enumerate((32, 64)):
        path = tmp_path / f"t{index}.json"
        main([
            "simulate", "hydroc", f"block_size={block}", "ranks=8",
            "iterations=4", "--seed", str(index), "-o", str(path),
        ])
        paths.append(str(path))
    return paths


class TestReportCommand:
    def test_prints_who_is_who(self, trace_files, capsys):
        capsys.readouterr()
        assert main(["report", *trace_files]) == 0
        out = capsys.readouterr().out
        assert "Tracked 2 regions" in out
        assert "Pairwise relations" in out
        assert "displacement" in out

    def test_no_evidence_flag(self, trace_files, capsys):
        capsys.readouterr()
        main(["report", *trace_files, "--no-evidence"])
        out = capsys.readouterr().out
        assert "Tracked 2 regions" in out
        # The per-link evidence lines are omitted; the relation lines
        # (with their "by <evaluator>" attribution) remain.
        assert "displacement 10" not in out
        assert "reciprocal" not in out
        assert "by displacement" in out


class TestAnimateCommand:
    def test_writes_html(self, trace_files, tmp_path, capsys):
        out_file = tmp_path / "anim.html"
        capsys.readouterr()
        assert main([
            "animate", *trace_files, "-o", str(out_file), "--interval", "500",
        ]) == 0
        content = out_file.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert "500" in content


class TestTuneCommand:
    def test_suggests_eps(self, trace_files, capsys):
        capsys.readouterr()
        assert main(["tune", trace_files[0]]) == 0
        out = capsys.readouterr().out
        assert "suggested eps:" in out
        assert "<- selected" in out
        assert "2 clusters" in out


class TestPrvCliFlow:
    def test_simulate_to_prv_and_track(self, tmp_path, capsys):
        paths = []
        for index, block in enumerate((32, 64)):
            path = tmp_path / f"t{index}.prv"
            main([
                "simulate", "hydroc", f"block_size={block}", "ranks=8",
                "iterations=4", "--seed", str(index), "-o", str(path),
            ])
            paths.append(str(path))
        assert (tmp_path / "t0.pcf").exists()
        capsys.readouterr()
        assert main(["track", *paths]) == 0
        out = capsys.readouterr().out
        assert "coverage: 100%" in out
