"""Shared fixtures for the test suite.

Fixtures are deliberately small (few ranks, few iterations) so the full
suite stays fast; the heavyweight paper-scale runs live in benchmarks/.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.callstack import CallPath
from repro.trace.counters import CYCLES, INSTRUCTIONS, L1_DCM, L2_DCM, TLB_DM
from repro.trace.trace import Trace, TraceBuilder


def build_two_region_trace(
    *,
    nranks: int = 4,
    iterations: int = 5,
    app: str = "toy",
    scenario: dict | None = None,
    ipc_a: float = 1.0,
    ipc_b: float = 0.5,
    instr_a: float = 1e6,
    instr_b: float = 4e6,
    jitter: float = 0.01,
    seed: int = 0,
) -> Trace:
    """A deterministic SPMD toy trace with two well-separated regions."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(nranks=nranks, app=app, scenario=scenario or {})
    path_a = CallPath.single("region_a", "main.c", 10)
    path_b = CallPath.single("region_b", "main.c", 20)
    clock = 1e9
    t = np.zeros(nranks)
    for _ in range(iterations):
        for path, instr, ipc in ((path_a, instr_a, ipc_a), (path_b, instr_b, ipc_b)):
            for rank in range(nranks):
                noise = 1.0 + jitter * rng.standard_normal()
                instructions = instr * noise
                cycles = instructions / ipc
                duration = cycles / clock
                builder.add(
                    rank=rank,
                    begin=float(t[rank]),
                    duration=duration,
                    callpath=path,
                    counters=[
                        instructions,
                        cycles,
                        instructions * 0.01,
                        instructions * 0.001,
                        instructions * 0.0001,
                    ],
                )
                t[rank] += duration
            t[:] = t.max()
    return builder.build()


@pytest.fixture
def toy_trace() -> Trace:
    """Two-region SPMD trace, 4 ranks x 5 iterations."""
    return build_two_region_trace()

@pytest.fixture
def toy_trace_pair() -> tuple[Trace, Trace]:
    """Two scenarios of the toy app with a mild IPC change in region b."""
    first = build_two_region_trace(scenario={"run": 0}, seed=1)
    second = build_two_region_trace(
        scenario={"run": 1}, ipc_b=0.4, ipc_a=1.1, seed=2
    )
    return first, second


@pytest.fixture
def empty_counters() -> list[str]:
    """The standard counter name list."""
    return [INSTRUCTIONS, CYCLES, L1_DCM, L2_DCM, TLB_DM]


@pytest.fixture
def live_server():
    """Factory for race-free test HTTP servers, closed at teardown.

    Grabbing a "free" port number first and binding it later is a
    latent race: another process can claim the port in between.  The
    safe pattern — bind port 0, let the OS assign, read the bound port
    back off the server — lives here so every server-based test uses
    it identically::

        server = live_server(MetricsServer, registry=...)
        url = server.url          # http://127.0.0.1:<os-assigned>

    Works with any factory taking a ``port`` keyword and exposing
    ``close()`` (``MetricsServer``, ``JobServer``); the forced
    ``port=0`` also means parallel test runs never collide.
    """
    started = []

    def _start(factory, *args, **kwargs):
        kwargs["port"] = 0
        server = factory(*args, **kwargs)
        started.append(server)
        return server

    yield _start
    for server in reversed(started):
        server.close()


@pytest.fixture(scope="session")
def hydroc_traces():
    """Session-cached small HydroC scenario pair (blocks 64 and 128)."""
    from repro.apps import hydroc

    return (
        hydroc.build(block_size=64, ranks=8, iterations=4).run(seed=11),
        hydroc.build(block_size=128, ranks=8, iterations=4).run(seed=12),
    )


@pytest.fixture(scope="session")
def wrf_small_result():
    """Session-cached small WRF tracking result (32 vs 64 ranks)."""
    from repro import quick_track
    from repro.apps import wrf
    from repro.clustering.frames import FrameSettings

    traces = [
        wrf.build(ranks=32, iterations=4, base_ranks=32).run(seed=21),
        wrf.build(ranks=64, iterations=4, base_ranks=32).run(seed=22),
    ]
    return quick_track(traces, settings=FrameSettings(relevance=0.995))
