"""Tests of the repro.parallel execution and caching layer."""

from __future__ import annotations

import numpy as np


def assert_clusters_equal(first, second) -> None:
    """Field-wise equality of two cluster tuples (ndarray-safe)."""
    assert len(first) == len(second)
    for cluster_a, cluster_b in zip(first, second):
        assert cluster_a.cluster_id == cluster_b.cluster_id
        np.testing.assert_array_equal(cluster_a.indices, cluster_b.indices)
        np.testing.assert_array_equal(cluster_a.centroid, cluster_b.centroid)
        assert cluster_a.total_duration == cluster_b.total_duration
        assert cluster_a.callpaths == cluster_b.callpaths
        assert cluster_a.ranks == cluster_b.ranks


def assert_frames_equal(first, second) -> None:
    """Bit-identical frame comparison: labels, points and clusters."""
    np.testing.assert_array_equal(first.labels, second.labels)
    np.testing.assert_array_equal(first.points, second.points)
    assert_clusters_equal(
        first.cluster_set.clusters, second.cluster_set.clusters
    )
