"""Tests of the content-addressed trace/frame cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.apps import wrf
from repro.clustering.frames import FrameSettings, frame_from_labels, make_frame, make_frames
from repro.errors import ClusteringError
from repro.parallel.cache import (
    CACHE_ENV,
    PipelineCache,
    frame_key,
    resolve_cache,
    stable_hash,
    trace_digest,
    trace_key,
)
from tests.parallel import assert_frames_equal


@pytest.fixture(scope="module")
def small_trace():
    return wrf.build(ranks=16, iterations=2, base_ranks=16).run(seed=3)


@pytest.fixture
def cache(tmp_path):
    return PipelineCache(tmp_path / "cache")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash({"a": 1, "b": [1, 2]}) == stable_hash({"a": 1, "b": [1, 2]})

    def test_mapping_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_tuple_and_list_agree(self):
        assert stable_hash((1, 2)) == stable_hash([1, 2])

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash({"a": object()})


class TestKeys:
    def test_trace_key_changes_with_every_input(self):
        base = trace_key("wrf", {"ranks": 16}, 0, version="1.0.0")
        variants = [
            trace_key("cgpop", {"ranks": 16}, 0, version="1.0.0"),
            trace_key("wrf", {"ranks": 32}, 0, version="1.0.0"),
            trace_key("wrf", {"ranks": 16}, 1, version="1.0.0"),
            trace_key("wrf", {"ranks": 16}, 0, version="1.0.1"),
        ]
        hashes = {stable_hash(base)} | {stable_hash(v) for v in variants}
        assert len(hashes) == 5

    def test_frame_key_changes_with_settings_and_version(self, small_trace):
        base = frame_key(small_trace, FrameSettings(), version="1.0.0")
        changed_settings = frame_key(
            small_trace, FrameSettings(eps=0.05), version="1.0.0"
        )
        changed_version = frame_key(small_trace, FrameSettings(), version="1.0.1")
        assert stable_hash(base) != stable_hash(changed_settings)
        assert stable_hash(base) != stable_hash(changed_version)

    def test_frame_key_changes_with_trace_content(self, small_trace):
        other = wrf.build(ranks=16, iterations=2, base_ranks=16).run(seed=4)
        assert trace_digest(small_trace) != trace_digest(other)
        assert stable_hash(frame_key(small_trace, FrameSettings())) != stable_hash(
            frame_key(other, FrameSettings())
        )

    def test_trace_digest_deterministic(self, small_trace):
        assert trace_digest(small_trace) == trace_digest(small_trace)


class TestTraceRoundTrip:
    def test_miss_then_hit(self, cache, small_trace):
        key = trace_key("wrf", {"ranks": 16}, 3)
        assert cache.get_trace(key) is None
        cache.put_trace(key, small_trace)
        loaded = cache.get_trace(key)
        assert loaded == small_trace

    def test_corrupt_json_recovers(self, cache, small_trace):
        key = trace_key("wrf", {"ranks": 16}, 3)
        path = cache.put_trace(key, small_trace)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get_trace(key) is None
        assert not path.exists()  # dropped, so the next put recomputes
        cache.put_trace(key, small_trace)
        assert cache.get_trace(key) == small_trace

    def test_key_mismatch_is_discarded(self, cache, small_trace):
        key = trace_key("wrf", {"ranks": 16}, 3)
        path = cache.put_trace(key, small_trace)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["key"]["seed"] = 99  # entry no longer matches its address
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get_trace(key) is None

    def test_malformed_trace_payload_recovers(self, cache, small_trace):
        key = trace_key("wrf", {"ranks": 16}, 3)
        cache.put(key, {"format": "repro-trace", "version": 999})
        assert cache.get_trace(key) is None


class TestLabelsRoundTrip:
    def test_roundtrip(self, cache, small_trace):
        settings = FrameSettings()
        frame = make_frame(small_trace, settings)
        key = frame_key(small_trace, settings)
        assert cache.get_labels(key) is None
        cache.put_labels(key, frame.labels)
        np.testing.assert_array_equal(cache.get_labels(key), frame.labels)

    def test_non_array_payload_recovers(self, cache, small_trace):
        key = frame_key(small_trace, FrameSettings())
        cache.put(key, {"labels": "zebra"})
        assert cache.get_labels(key) is None


class TestFrameFromLabels:
    def test_rebuild_matches_fresh_build(self, small_trace):
        settings = FrameSettings()
        fresh = make_frame(small_trace, settings)
        rebuilt = frame_from_labels(small_trace, settings, fresh.labels)
        assert_frames_equal(rebuilt, fresh)

    def test_wrong_length_rejected(self, small_trace):
        with pytest.raises(ClusteringError):
            frame_from_labels(small_trace, FrameSettings(), np.zeros(3, dtype=np.int32))


class TestMakeFramesWithCache:
    def test_cold_then_warm_identical(self, cache, small_trace):
        settings = FrameSettings()
        cold = make_frames([small_trace], settings, cache=cache)
        warm = make_frames([small_trace], settings, cache=cache)
        assert_frames_equal(cold[0], warm[0])

    def test_truncated_labels_entry_is_recomputed(self, cache, small_trace):
        settings = FrameSettings()
        reference = make_frames([small_trace], settings, cache=cache)[0]
        key = frame_key(small_trace, settings)
        # Poison the entry with a labelling of the wrong length.
        cache.put_labels(key, reference.labels[:-5])
        recovered = make_frames([small_trace], settings, cache=cache)[0]
        np.testing.assert_array_equal(recovered.labels, reference.labels)
        # The poisoned entry was replaced by a valid one.
        np.testing.assert_array_equal(cache.get_labels(key), reference.labels)


class TestMaintenance:
    def test_info_and_clear(self, cache, small_trace):
        cache.put_trace(trace_key("wrf", {"ranks": 16}, 0), small_trace)
        cache.put_labels(frame_key(small_trace, FrameSettings()), np.zeros(5))
        info = cache.info()
        assert info.n_entries == 2
        assert info.by_kind == {"frame": 1, "trace": 1}
        assert info.total_bytes > 0
        assert cache.clear() == 2
        assert cache.info().n_entries == 0

    def test_info_on_missing_root(self, tmp_path):
        empty = PipelineCache(tmp_path / "never-created")
        assert empty.info().n_entries == 0
        assert empty.clear() == 0


class TestResolveCache:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert resolve_cache() is None

    def test_explicit_dir(self, tmp_path):
        cache = resolve_cache(tmp_path)
        assert cache is not None and cache.root == tmp_path

    def test_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        cache = resolve_cache()
        assert cache is not None and str(cache.root) == str(tmp_path)
