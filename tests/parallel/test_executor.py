"""Tests of the executor abstraction (ordered pmap, backends, fallback)."""

from __future__ import annotations

import os

import pytest

from repro.parallel.executor import (
    JOBS_ENV,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    pmap,
    resolve_jobs,
)


def _square(x: int) -> int:
    return x * x


def _raise_value_error(x: int) -> int:
    raise ValueError(f"boom on {x}")


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs() == 5

    def test_env_auto_is_cpu_count(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_zero_and_negative_mean_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_malformed_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_jobs() == 1


class TestBackendSelection:
    def test_one_job_is_serial(self):
        assert isinstance(get_executor(1, n_tasks=100), SerialExecutor)

    def test_many_jobs_is_process(self):
        executor = get_executor(4, n_tasks=100)
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 4

    def test_tiny_batch_stays_serial(self):
        assert isinstance(get_executor(4, n_tasks=1), SerialExecutor)

    def test_process_backend_needs_two_jobs(self):
        with pytest.raises(ValueError):
            ProcessExecutor(1)


class TestPmap:
    def test_empty(self):
        assert pmap(_square, [], jobs=4) == []

    def test_serial_order(self):
        assert pmap(_square, range(10), jobs=1) == [x * x for x in range(10)]

    def test_process_order_matches_serial(self):
        items = list(range(20))
        assert pmap(_square, items, jobs=4) == [x * x for x in items]

    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom"):
            pmap(_raise_value_error, [1, 2], jobs=1)

    def test_task_exception_propagates_process(self):
        with pytest.raises(ValueError, match="boom"):
            pmap(_raise_value_error, [1, 2], jobs=2)

    def test_unpicklable_fn_falls_back_to_serial(self):
        # Lambdas cannot cross the process boundary; the pool failure
        # must degrade to a correct serial run instead of crashing.
        assert pmap(lambda x: x + 1, [1, 2, 3], jobs=2) == [2, 3, 4]

    def test_env_drives_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        assert pmap(_square, [1, 2, 3]) == [1, 4, 9]
