"""End-to-end guarantees: parallel and cached runs are bit-identical.

These are the acceptance tests of the parallel layer: `Tracker.run`
and `ParametricStudy.run` must produce exactly the same output with
``jobs=1`` and ``jobs=4``, and a warm-cache run must equal a cold one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.study import ParametricStudy
from repro.api import quick_track
from repro.apps import wrf
from repro.clustering.frames import FrameSettings, make_frames
from repro.parallel.cache import PipelineCache
from repro.tracking.tracker import Tracker
from tests.parallel import assert_frames_equal

SETTINGS = FrameSettings(relevance=0.995)


@pytest.fixture(scope="module")
def traces():
    return [
        wrf.build(ranks=16, iterations=2, base_ranks=16).run(seed=seed)
        for seed in (1, 2, 3)
    ]


@pytest.fixture(scope="module")
def study():
    return ParametricStudy(
        app="wrf",
        scenarios=tuple(
            {"ranks": ranks, "iterations": 2, "base_ranks": 16}
            for ranks in (8, 16, 24, 32)
        ),
        settings=SETTINGS,
    )


def assert_results_identical(first, second):
    """Structural equality of two tracking results."""
    assert first.coverage == second.coverage
    assert first.regions == second.regions
    assert len(first.pair_relations) == len(second.pair_relations)
    for pair_a, pair_b in zip(first.pair_relations, second.pair_relations):
        assert pair_a.relations == pair_b.relations
    for frame_a, frame_b in zip(first.frames, second.frames):
        assert_frames_equal(frame_a, frame_b)


class TestBitIdenticalParallelism:
    def test_make_frames_jobs(self, traces):
        serial = make_frames(traces, SETTINGS, jobs=1)
        parallel = make_frames(traces, SETTINGS, jobs=4)
        for frame_s, frame_p in zip(serial, parallel):
            assert_frames_equal(frame_s, frame_p)

    def test_tracker_run_jobs(self, traces):
        frames = make_frames(traces, SETTINGS)
        serial = Tracker(frames).run(jobs=1)
        parallel = Tracker(frames).run(jobs=4)
        assert_results_identical(serial, parallel)

    def test_quick_track_jobs(self, traces):
        serial = quick_track(traces, settings=SETTINGS, jobs=1)
        parallel = quick_track(traces, settings=SETTINGS, jobs=4)
        assert_results_identical(serial, parallel)

    def test_study_run_jobs(self, study):
        serial = study.run(seed=0, jobs=1)
        parallel = study.run(seed=0, jobs=4)
        assert serial.traces == parallel.traces
        assert_results_identical(serial.result, parallel.result)


class TestWarmCacheEqualsCold:
    def test_study_cold_vs_warm(self, study, tmp_path):
        cache = PipelineCache(tmp_path / "cache")
        cold = study.run(seed=0, cache=cache)
        warm = study.run(seed=0, cache=cache)
        uncached = study.run(seed=0)
        assert cold.traces == warm.traces == uncached.traces
        assert_results_identical(cold.result, warm.result)
        assert_results_identical(cold.result, uncached.result)
        info = cache.info()
        assert info.by_kind == {"frame": 4, "trace": 4}

    def test_parallel_warm_cache(self, study, tmp_path):
        cache = PipelineCache(tmp_path / "cache")
        cold = study.run(seed=0, cache=cache, jobs=4)
        warm = study.run(seed=0, cache=cache, jobs=4)
        assert cold.traces == warm.traces
        assert_results_identical(cold.result, warm.result)

    def test_different_seed_misses(self, study, tmp_path):
        cache = PipelineCache(tmp_path / "cache")
        study.run(seed=0, cache=cache)
        study.run(seed=1, cache=cache)
        # Different seeds must not share trace entries.
        assert cache.info().by_kind["trace"] == 8
