"""Repository-wide determinism audit of RNG construction.

Everything under ``src/`` must create random generators with an explicit
seed — the golden fixtures, the differential stream suite and the
checkpoint/resume machinery all rely on runs being bit-reproducible.
An unseeded ``np.random.default_rng()`` / ``random.Random()`` (or any
use of the global RNG state) silently breaks that, so this test greps
for the patterns instead of hoping review catches them.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

# Unseeded generator constructions and global-RNG mutations/draws.
_FORBIDDEN = (
    re.compile(r"default_rng\(\s*\)"),
    re.compile(r"\bRandom\(\s*\)"),
    re.compile(r"np\.random\.seed\("),
    re.compile(r"\brandom\.seed\("),
    re.compile(r"np\.random\.(rand|randn|randint|random|choice|shuffle|"
               r"permutation|uniform|normal)\("),
)


def _violations() -> list[str]:
    found: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            for pattern in _FORBIDDEN:
                if pattern.search(stripped):
                    found.append(
                        f"{path.relative_to(SRC)}:{lineno}: {line.strip()}"
                    )
    return found


def test_source_tree_exists():
    assert SRC.is_dir()
    assert any(SRC.rglob("*.py"))


def test_all_rngs_are_explicitly_seeded():
    violations = _violations()
    assert not violations, (
        "unseeded or global RNG use in src/ (pass an explicit seed):\n  "
        + "\n  ".join(violations)
    )


def test_audit_catches_unseeded_rng(tmp_path, monkeypatch):
    """The audit itself flags an unseeded construction (self-check)."""
    bad = tmp_path / "bad.py"
    bad.write_text("rng = np.random.default_rng()\n")
    import tests.test_seed_audit as audit

    monkeypatch.setattr(audit, "SRC", tmp_path)
    assert audit._violations() == ["bad.py:1: rng = np.random.default_rng()"]
