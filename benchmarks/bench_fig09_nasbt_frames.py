"""Figure 9: the tracked NAS BT frames for classes W, A, B and C.

Regenerates the output images of the problem-size study with all
tracked regions renamed consistently.

Shape assertions:
- six clusters per frame, all six tracked at 100 % coverage;
- per-burst instructions grow by roughly two orders of magnitude from
  class W to class C (the paper's "large dynamic range");
- class W exhibits much higher IPC variability than the later classes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.relabel import relabel_frames
from repro.viz.ascii_plot import ascii_scatter
from repro.viz.frames_plot import render_sequence_svg


def test_fig09_nasbt_frames(benchmark, case_results, output_dir):
    study_result = run_once(benchmark, lambda: case_results["NAS BT"])
    result = study_result.result

    assert [frame.n_clusters for frame in result.frames] == [6, 6, 6, 6]
    assert len(result.tracked_regions) == 6
    assert result.coverage == 100

    relabeled = relabel_frames(result)
    for item in relabeled:
        print()
        print(
            ascii_scatter(
                item.frame.points,
                item.labels,
                title=f"Figure 9: {item.frame.label}",
                x_label="IPC",
                y_label="instructions",
                height=12,
            )
        )
    render_sequence_svg(relabeled, output_dir / "fig09_nasbt_tracked.svg")

    # Two orders of magnitude in instructions from W to C.
    mean_instr = [frame.points[:, 1].mean() for frame in result.frames]
    assert mean_instr[-1] / mean_instr[0] > 100
    assert all(b > a for a, b in zip(mean_instr, mean_instr[1:]))

    # Class W's IPC variability dwarfs class C's (paper: "Class W also
    # presents large variability in IPC").
    def ipc_spread(frame):
        spreads = []
        for cid in frame.cluster_ids:
            values = frame.points[frame.labels == cid, 0]
            spreads.append(values.std() / values.mean())
        return float(np.mean(spreads))

    assert ipc_spread(result.frames[0]) > 2.5 * ipc_spread(result.frames[3])
