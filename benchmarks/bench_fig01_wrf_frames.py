"""Figure 1: structure of WRF computing bursts at 128 and 256 tasks.

Regenerates the paper's Figures 1a-1c: the clustered performance-space
frames of WRF at both task counts, and the scale-normalised view where
the doubled run's clusters land back on the baseline's (Fig. 1c).

Shape assertions:
- twelve relevant clusters in both frames;
- per-burst instructions roughly halve when tasks double (Fig. 1b);
- after cross-frame scale normalisation, each tracked region's centroid
  moves only slightly between the frames (Fig. 1c: "relative distances
  are actually kept almost constant").
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.clustering.frames import make_frames
from repro.tracking.scaling import normalize_frames
from repro.viz.ascii_plot import ascii_scatter
from repro.viz.frames_plot import render_frame_svg


def test_fig01_wrf_frames(benchmark, wrf_traces, wrf_settings, output_dir):
    frames = run_once(benchmark, lambda: make_frames(wrf_traces, wrf_settings))

    for frame in frames:
        print()
        print(
            ascii_scatter(
                frame.points,
                frame.labels,
                title=f"Figure 1: {frame.label} ({frame.n_clusters} clusters)",
                x_label="IPC",
                y_label="instructions",
            )
        )
        render_frame_svg(frame, output_dir / f"fig01_{frame.trace.nranks}tasks.svg")

    assert [frame.n_clusters for frame in frames] == [12, 12]

    # Fig. 1b: doubling tasks halves per-burst instructions.
    mean_instr = [frame.points[:, 1].mean() for frame in frames]
    np.testing.assert_allclose(mean_instr[1], mean_instr[0] / 2, rtol=0.06)

    # Fig. 1c: in the normalised space the structures coincide.
    space = normalize_frames(frames)
    shifts = []
    for cid in frames[0].cluster_ids:
        centroid_a = space.points[0][frames[0].labels == cid].mean(axis=0)
        # Compare against the nearest centroid of frame B.
        centroids_b = [
            space.points[1][frames[1].labels == other].mean(axis=0)
            for other in frames[1].cluster_ids
        ]
        distance = min(np.linalg.norm(centroid_a - cb) for cb in centroids_b)
        shifts.append(distance)
    print(f"\nnormalised nearest-centroid shifts: mean={np.mean(shifts):.4f} "
          f"max={np.max(shifts):.4f} (unit box)")
    assert np.mean(shifts) < 0.05
