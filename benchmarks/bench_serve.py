"""Job-server benchmarks: the service tax over a direct pipeline run.

What an adopter of ``repro-track serve`` cares about: submitting a job
over HTTP and polling it to completion pays for a child process, the
JSON round trips and the artefact writes on top of the tracking work
itself.  This bench measures that tax on a small two-scenario HYDRO-C
study and asserts the served bytes stay identical to the direct run —
the differential guarantee, re-checked at benchmark scale.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SEED, run_once
from repro.serve import JobClient, JobServer, JobSpec, canonical_json, result_payload
from repro.serve.runner import execute_spec

SPEC = {
    "kind": "track",
    "app": "hydroc",
    "scenarios": [
        {"block_size": 64, "ranks": 8, "iterations": 4},
        {"block_size": 64, "ranks": 8, "iterations": 5},
    ],
    "seeds": [BENCH_SEED, BENCH_SEED + 1],
    "settings": {"relevance": 0.995},
}


def test_perf_serve_roundtrip(benchmark, tmp_path):
    """Direct pipeline run vs submit→poll→fetch over the job server."""
    spec = JobSpec.from_dict(SPEC)
    start = time.perf_counter()
    result, failures = execute_spec(spec)
    direct_s = time.perf_counter() - start
    want = canonical_json(result_payload(spec, result, failures)).encode()

    with JobServer(tmp_path / "srv", workers=1, job_timeout=600.0) as server:
        client = JobClient(server.url)

        def roundtrip() -> bytes:
            job_id = client.submit("bench", SPEC)["job_id"]
            final = client.wait(job_id, timeout=600.0)
            assert final["state"] == "done", final
            return client.result(job_id)

        start = time.perf_counter()
        got = run_once(benchmark, roundtrip)
        serve_s = time.perf_counter() - start

    assert got == want, "served result diverged from the direct run"
    benchmark.extra_info["direct_s"] = round(direct_s, 3)
    benchmark.extra_info["serve_s"] = round(serve_s, 3)
    print(
        f"\nserve round trip: direct {direct_s:.2f}s, "
        f"served {serve_s:.2f}s (tax x{serve_s / direct_s:.2f})"
    )
