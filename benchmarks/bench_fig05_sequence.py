"""Figure 5: correlations from the execution-sequence evaluator.

Regenerates the pivot-anchored alignment: the consensus execution
sequences of two experiments cannot be compared symbol-by-symbol
(cluster ids differ), but anchoring the alignment on the matchings
discovered by the earlier evaluators ("pivots") forces the in-between
symbols into correspondence — the paper's example infers 2->3 and 3->4
from the single known pivot 1->2.

Shape assertions on both the paper's toy example and the WRF frames.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.alignment.spmd import consensus_sequence
from repro.tracking.evaluators.sequence import align_with_pivots, sequence_matrix
from repro.tracking.evaluators.simultaneity import frame_alignment


def test_fig05_sequence_alignment_toy(benchmark):
    """The paper's illustrated example, literally."""
    consensus_a = np.asarray([1, 2, 3] * 8)
    consensus_b = np.asarray([2, 3, 4] * 8)

    pairs = run_once(
        benchmark, lambda: align_with_pivots(consensus_a, consensus_b, {1: 2})
    )

    print("\nFigure 5: pivot 1->2 propagates to", sorted(set(pairs)))
    assert set(pairs) == {(1, 2), (2, 3), (3, 4)}


def test_fig05_sequence_matrix_wrf(benchmark, wrf_frames, output_dir):
    """On WRF, anchoring 11 of 12 phases recovers the remaining one."""
    frame_a, frame_b = wrf_frames
    consensus_a = consensus_sequence(frame_alignment(frame_a))
    consensus_b = consensus_sequence(frame_alignment(frame_b))

    # Suppose all but one cluster were already matched identically.
    full_mapping = {cid: cid for cid in frame_a.cluster_ids}
    missing = frame_a.cluster_ids[-1]
    pivots = {a: b for a, b in full_mapping.items() if a != missing}

    matrix = run_once(
        benchmark,
        lambda: sequence_matrix(
            consensus_a, consensus_b, frame_a.cluster_ids, frame_b.cluster_ids,
            pivots,
        ),
    )
    text = matrix.drop_below(0.3).to_text()
    print("\nSequence-evaluator correlations (11 pivots, WRF):")
    print(text)
    (output_dir / "fig05_sequence_matrix.txt").write_text(text + "\n")

    best = matrix.best_match(missing)
    assert best is not None
    matched, confidence = best
    assert confidence >= 0.9
