"""Figure 4: SPMD computations in the WRF 128- and 256-task experiments.

Regenerates the temporal view of the cluster sequence at the start of
one iteration: all processes (rows) execute the same phases over time
(columns), with mild divergence where behaviour is bimodal.

Shape assertions:
- the global per-rank sequence alignments of both frames are strongly
  SPMD (score >= 0.9, near-lockstep phases);
- both experiments share the same consensus phase pattern per iteration
  (the paper: "the code phases and the order in which they get executed
  are the same in both experiments").
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.alignment.spmd import consensus_sequence, spmdiness_score
from repro.tracking.evaluators.simultaneity import frame_alignment
from repro.viz.timeline import ascii_timeline, render_timeline_svg


def test_fig04_spmd_timelines(benchmark, wrf_frames, output_dir):
    alignments = run_once(
        benchmark, lambda: [frame_alignment(frame) for frame in wrf_frames]
    )

    for frame in wrf_frames:
        iteration_span = frame.trace.makespan / 6  # six simulated iterations
        print()
        print(
            ascii_timeline(
                frame,
                width=96,
                max_ranks=16,
                t_end=iteration_span,
            )
        )
        render_timeline_svg(
            frame,
            output_dir / f"fig04_timeline_{frame.trace.nranks}tasks.svg",
            t_end=iteration_span,
        )

    scores = [spmdiness_score(alignment) for alignment in alignments]
    print(f"\nSPMDiness scores: {[round(s, 3) for s in scores]}")
    assert all(score >= 0.9 for score in scores)

    # One iteration of WRF visits its 12 phases in a fixed order; both
    # experiments repeat the same per-iteration pattern.
    consensus = [consensus_sequence(alignment) for alignment in alignments]
    for sequence in consensus:
        n_phases = len(np.unique(sequence))
        assert n_phases == 12
        period = sequence[:n_phases]
        repeats = len(sequence) // n_phases
        np.testing.assert_array_equal(
            sequence[: repeats * n_phases], np.tile(period, repeats)
        )
