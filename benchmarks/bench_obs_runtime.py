"""Observability-overhead benchmarks: the telemetry tax must stay flat.

The runtime subsystem promises a *pure observer*: ledger appends,
resource sampling and live exposition may cost a sliver of wall time
but can never change tracking output.  These benches measure that
sliver on a windowed WRF run so ``bench-compare`` catches a regression
where telemetry stops being nearly free:

- ``test_perf_watch_fully_observed`` — a watch run with the ledger
  recording, the sampler at its default period and a live ``/metrics``
  server attached, asserted bit-identical to the bare run it times
  against (the overhead gate in CI holds this bench within 10% of its
  committed baseline).
- ``test_perf_sampler_tick`` — the raw cost of one sampler reading,
  the unit the per-period tax is built from.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SEED, run_once
from repro import obs
from repro.apps import wrf
from repro.clustering.frames import FrameSettings
from repro.obs import ledger as obsledger
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import ResourceSampler
from repro.obs.serve import MetricsServer
from repro.stream import track_windows

SETTINGS = FrameSettings(relevance=0.995)
N_WINDOWS = 8


def _trace():
    return wrf.build(ranks=64, iterations=16, base_ranks=64).run(
        seed=BENCH_SEED + 1
    )


def test_perf_watch_fully_observed(benchmark, tmp_path):
    """Watch with ledger + sampler + /metrics vs the bare run."""
    trace = _trace()

    def bare():
        return track_windows(trace, n_windows=N_WINDOWS, settings=SETTINGS)

    start = time.perf_counter()
    baseline = bare()
    bare_s = time.perf_counter() - start

    ledger = obsledger.RunLedger(tmp_path / "ledger")
    obs.enable()
    sampler = ResourceSampler()
    server = MetricsServer(0)
    try:

        def observed():
            with obsledger.run_record("bench.watch", ledger=ledger):
                with sampler:
                    return track_windows(
                        trace, n_windows=N_WINDOWS, settings=SETTINGS
                    )

        start = time.perf_counter()
        result = run_once(benchmark, observed)
        observed_s = time.perf_counter() - start
    finally:
        server.close()
        obs.disable()
        obs.reset()

    assert result.coverage == baseline.coverage
    assert result.regions == baseline.regions
    assert len(ledger.runs()) == 1 and not ledger.runs()[0].open
    assert len(sampler.snapshot_samples()) >= 1
    benchmark.extra_info["bare_s"] = round(bare_s, 3)
    benchmark.extra_info["observed_s"] = round(observed_s, 3)
    benchmark.extra_info["n_samples"] = len(sampler.snapshot_samples())
    print(
        f"\nwindowed WRF ({N_WINDOWS} windows): bare {bare_s:.2f}s, "
        f"fully observed {observed_s:.2f}s "
        f"(tax x{observed_s / bare_s:.2f}, "
        f"{len(sampler.snapshot_samples())} samples)"
    )


def test_perf_sampler_tick(benchmark):
    """Cost of a single resource sample (the per-period unit tax)."""
    sampler = ResourceSampler(registry=MetricsRegistry())

    def ticks():
        for _ in range(1000):
            sampler.sample_once()
        return sampler

    result = run_once(benchmark, ticks)
    samples = result.snapshot_samples()
    assert len(samples) >= 1
    assert samples[-1].rss_kib > 0
