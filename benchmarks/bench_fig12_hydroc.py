"""Figure 12: the HydroC block-size study.

Regenerates the three panels of the working-set study over doubling
block sizes:
- 12a: instructions per region fall 1-4 % per doubling while blocks are
  small (less control overhead) and flatten beyond size 32;
- 12b: IPC declines a few percent in total, with the drop concentrated
  at the block sizes where the working set leaves L1 (Region 2, the
  memory-sensitive mode, loses more than Region 1);
- 12c: L1 data-cache misses jump ~40 % at the 64 -> 128 transition —
  exactly where a 64x64 block of 8-byte elements fills the 32 KB L1 —
  and are otherwise nearly flat.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.apps.hydroc import BLOCK_SIZES
from repro.tracking.trends import compute_trends
from repro.viz.ascii_plot import ascii_trend
from repro.viz.trend_plot import render_trends_svg

LABELS = tuple(str(b) for b in BLOCK_SIZES)
DIP_INDEX = BLOCK_SIZES.index(64)  # the 64 -> 128 step


def test_fig12a_instructions(benchmark, case_results, output_dir):
    study_result = case_results["HydroC"]
    result = study_result.result
    assert result.coverage == 100
    assert len(result.tracked_regions) == 2

    series = run_once(benchmark, lambda: compute_trends(result, "instructions"))

    print("\nFigure 12a: HydroC instructions per block size")
    print(ascii_trend([(f"r{s.region_id}", s.values) for s in series],
                      x_labels=LABELS))
    render_trends_svg(series, output_dir / "fig12a_instructions.svg",
                      title="HydroC instructions vs block size")

    flatten_index = BLOCK_SIZES.index(16)
    for s in series:
        steps = s.step_changes()
        print(f"  Region {s.region_id} steps%: "
              + " ".join(f"{100 * c:+.1f}" for c in steps))
        # Early doublings trim control overhead (1-4 % per step)...
        assert (steps[:flatten_index] < -0.005).all()
        assert (steps[:flatten_index] > -0.06).all()
        # ...then the counts stay constant (paper: "keeps constant
        # beyond this point").
        assert (np.abs(steps[flatten_index:]) < 0.01).all()


def test_fig12b_ipc(benchmark, case_results, output_dir):
    study_result = case_results["HydroC"]
    series = run_once(benchmark, lambda: compute_trends(study_result.result, "ipc"))

    print("\nFigure 12b: HydroC IPC per block size")
    print(ascii_trend([(f"r{s.region_id}", s.values) for s in series],
                      x_labels=LABELS))
    render_trends_svg(series, output_dir / "fig12b_ipc.svg",
                      title="HydroC IPC vs block size")

    totals = {}
    for s in series:
        steps = s.step_changes()
        print(f"  Region {s.region_id} steps%: "
              + " ".join(f"{100 * c:+.1f}" for c in steps))
        # Flat while blocks fit L1; the decline is concentrated in the
        # L1-capacity transition around the 64 -> 128 step.
        assert (np.abs(steps[: DIP_INDEX - 1]) < 0.01).all()
        dip_zone = steps[DIP_INDEX - 1 : DIP_INDEX + 3]
        assert dip_zone.min() < -0.015
        # The tail is flat again.
        assert (np.abs(steps[DIP_INDEX + 3 :]) < 0.01).all()
        totals[s.region_id] = s.pct_change_total()

    # Region 2 (the memory-sensitive mode) loses more than Region 1,
    # both in the paper's 5-10 % band (ours: ~6.5 % and ~9 %).
    assert -0.12 < totals[2] < totals[1] < -0.04


def test_fig12c_l1_misses(benchmark, case_results, output_dir):
    study_result = case_results["HydroC"]
    series = run_once(
        benchmark, lambda: compute_trends(study_result.result, "l1_misses")
    )

    print("\nFigure 12c: HydroC L1 misses per block size")
    for s in series:
        ratios = s.values[1:] / s.values[:-1]
        print(f"  Region {s.region_id} step ratios: "
              + " ".join(f"{r:.2f}" for r in ratios))
        # The 64 -> 128 step is the one and only jump: ~+40 %.
        assert 1.25 < ratios[DIP_INDEX] < 1.55
        others = np.delete(ratios, DIP_INDEX)
        assert (np.abs(others - 1.0) < 0.1).all()
        assert ratios[DIP_INDEX] == ratios.max()
    render_trends_svg(series, output_dir / "fig12c_l1.svg",
                      title="HydroC L1 misses vs block size")
