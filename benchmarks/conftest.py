"""Shared fixtures for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper.  The heavy
synthetic runs (WRF at 128/256 tasks, the ten Table 2 case studies) are
cached at session scope so a figure bench times only the pipeline stage
it focuses on, while all benches print the rows/series the paper
reports and assert the reproduction's *shape*.

Rendered artefacts (SVGs, text reports) are written to
``benchmarks/output/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import CASE_STUDIES, CaseStudy
from repro.analysis.study import StudyResult
from repro.clustering.frames import FrameSettings, make_frames
from repro.obs.metrics import MetricsRegistry
from repro.tracking.tracker import Tracker, TrackingResult

OUTPUT_DIR = Path(__file__).parent / "output"

#: Seed used by every benchmark run, so the printed numbers are stable.
BENCH_SEED = 0

#: Dedicated (always-on) registry recording per-benchmark wall-times, so
#: successive PRs accumulate a perf trajectory in bench_timings.json.
BENCH_REGISTRY = MetricsRegistry()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


class CaseStudyCache:
    """Lazily runs and caches the Table 2 case studies."""

    def __init__(self) -> None:
        self._results: dict[str, StudyResult] = {}

    def __getitem__(self, name: str) -> StudyResult:
        if name not in self._results:
            case = self._case(name)
            self._results[name] = case.run(seed=BENCH_SEED)
        return self._results[name]

    @staticmethod
    def _case(name: str) -> CaseStudy:
        for case in CASE_STUDIES:
            if case.name == name:
                return case
        raise KeyError(name)


@pytest.fixture(scope="session")
def case_results() -> CaseStudyCache:
    return CaseStudyCache()


@pytest.fixture(scope="session")
def wrf_traces():
    """The paper's running example: WRF at 128 and 256 tasks."""
    from repro.apps import wrf

    return [
        wrf.build(ranks=128, iterations=6).run(seed=BENCH_SEED + 1),
        wrf.build(ranks=256, iterations=6).run(seed=BENCH_SEED + 2),
    ]


@pytest.fixture(scope="session")
def wrf_settings() -> FrameSettings:
    return FrameSettings(relevance=0.995)


@pytest.fixture(scope="session")
def wrf_frames(wrf_traces, wrf_settings):
    return make_frames(wrf_traces, wrf_settings)


@pytest.fixture(scope="session")
def wrf_result(wrf_frames) -> TrackingResult:
    return Tracker(wrf_frames).run()


@pytest.fixture(autouse=True)
def _record_wall_time(request):
    """Record every benchmark's wall-time and RSS peak."""
    from repro.obs.bench import rss_peak_kib

    start = time.perf_counter()
    yield
    BENCH_REGISTRY.gauge(
        "bench.wall_time_s", test=request.node.nodeid
    ).set(time.perf_counter() - start)
    BENCH_REGISTRY.gauge(
        "bench.rss_peak_kib", test=request.node.nodeid
    ).set(rss_peak_kib())


def pytest_sessionfinish(session, exitstatus):
    """Dump the recorded measurements.

    ``output/bench_timings.json`` keeps the historical wall-time-only
    format; ``output/BENCH_RESULTS.json`` is the schema-versioned
    payload consumed by ``repro-track bench-compare``.
    """
    from repro.obs.bench import bench_results_payload

    snapshot = BENCH_REGISTRY.snapshot()
    if not snapshot["gauges"]:
        return
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    benches: dict[str, dict[str, float]] = {}
    for entry in snapshot["gauges"]:
        measurements = benches.setdefault(entry["labels"]["test"], {})
        if entry["name"] == "bench.wall_time_s":
            measurements["wall_time_s"] = entry["value"]
        elif entry["name"] == "bench.rss_peak_kib":
            measurements["rss_peak_kib"] = entry["value"]
    # Merge into whatever is already committed: a partial run (one
    # bench file) must update its own entries without clobbering the
    # rest of the recorded suite.
    try:
        with open(OUTPUT_DIR / "BENCH_RESULTS.json", encoding="utf-8") as handle:
            previous = json.load(handle).get("benches", {})
    except (OSError, ValueError):
        previous = {}
    benches = {**previous, **benches}
    timings = {
        name: m["wall_time_s"] for name, m in benches.items()
        if "wall_time_s" in m
    }
    payload = {
        "unit": "seconds",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "timings": dict(sorted(timings.items())),
    }
    with open(OUTPUT_DIR / "bench_timings.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    with open(OUTPUT_DIR / "BENCH_RESULTS.json", "w", encoding="utf-8") as handle:
        json.dump(bench_results_payload(benches), handle, indent=2)
        handle.write("\n")


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value.

    The reproductions are deterministic, so a single round both times
    the stage and produces the artefact the bench prints and asserts.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
