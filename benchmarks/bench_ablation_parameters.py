"""Ablation: sensitivity to the clustering and outlier parameters.

Quantifies two more design choices:

- **DBSCAN eps** — the frame-construction radius.  Too small fragments
  regions (coverage collapses because spurious objects appear); too
  large fuses them (fewer identifiable objects).  The default (0.03 of
  the normalised box) sits on a broad plateau.
- **Outlier threshold** — the displacement evaluator's 5 % cut (paper
  section 3).  The WRF study must be insensitive across a wide band:
  the cut only exists to drop classification noise.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import BENCH_SEED, run_once
from repro.analysis.report import format_table
from repro.apps import hydroc
from repro.clustering.frames import FrameSettings, make_frames
from repro.tracking.tracker import Tracker, TrackerConfig

EPS_VALUES = (0.01, 0.02, 0.03, 0.05, 0.08)
OUTLIER_VALUES = (0.0, 0.02, 0.05, 0.10, 0.20)


def test_ablation_eps(benchmark, output_dir):
    traces = [
        hydroc.build(block_size=b, ranks=16, iterations=6).run(seed=BENCH_SEED + i)
        for i, b in enumerate((32, 64, 128))
    ]

    def sweep():
        rows = []
        for eps in EPS_VALUES:
            frames = make_frames(traces, FrameSettings(eps=eps))
            result = Tracker(frames).run()
            rows.append(
                (eps, [f.n_clusters for f in frames], result.coverage)
            )
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        ["eps", "clusters per frame", "coverage %"],
        [[eps, str(counts), cov] for eps, counts, cov in rows],
        title="DBSCAN eps sensitivity (HydroC, 3 frames)",
    )
    print("\n" + text)
    (output_dir / "ablation_eps.txt").write_text(text + "\n")

    by_eps = {eps: (counts, cov) for eps, counts, cov in rows}
    # The default value resolves the bimodal structure perfectly.
    assert by_eps[0.03][0] == [2, 2, 2]
    assert by_eps[0.03][1] == 100
    # The plateau above the default is broad.
    assert by_eps[0.05][1] == 100
    assert by_eps[0.08][1] == 100
    # Too small a radius fragments the regions and coverage collapses.
    assert max(by_eps[0.01][0]) > 2
    assert by_eps[0.01][1] < 100


def test_ablation_outlier_threshold(benchmark, wrf_frames, output_dir):
    def sweep():
        rows = []
        for threshold in OUTLIER_VALUES:
            config = TrackerConfig(outlier_threshold=threshold)
            result = Tracker(list(wrf_frames), config).run()
            rows.append((threshold, len(result.tracked_regions), result.coverage))
        return rows

    rows = run_once(benchmark, sweep)
    text = format_table(
        ["outlier threshold", "tracked regions", "coverage %"],
        [list(row) for row in rows],
        title="Displacement outlier-threshold sensitivity (WRF)",
    )
    print("\n" + text)
    (output_dir / "ablation_outlier.txt").write_text(text + "\n")

    # The result is stable across the whole band around the paper's 5 %.
    coverages = {threshold: cov for threshold, _, cov in rows}
    assert coverages[0.02] == coverages[0.05] == coverages[0.10] == 100
