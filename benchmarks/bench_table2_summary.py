"""Table 2: summary of experiments — all ten case studies.

Runs the complete Table 2 sweep: ten applications, 2 to 20 input images
each, and reports input images / tracked regions / coverage per row.

Shape assertions: every row reproduces the paper's reported values
exactly (images, tracked regions, coverage percentage), and the average
coverage lands at the paper's ~90 %.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.experiments import CASE_STUDIES
from repro.analysis.report import format_table2


def test_table2_all_case_studies(benchmark, case_results, output_dir):
    def run_all():
        return {case.name: case_results[case.name] for case in CASE_STUDIES}

    results = run_once(benchmark, run_all)

    text = format_table2(results)
    print("\n" + text)
    (output_dir / "table2_summary.txt").write_text(text + "\n")

    coverages = []
    for case in CASE_STUDIES:
        study_result = results[case.name]
        row = study_result.result.summary_row()
        assert row["input_images"] == case.expected_images, case.name
        assert row["tracked_regions"] == case.expected_regions, case.name
        assert row["coverage_pct"] == case.expected_coverage, case.name
        coverages.append(row["coverage_pct"])

    # "On average, the algorithm successfully discriminates 90% of the
    # objects."
    assert np.mean(coverages) == 90.0
