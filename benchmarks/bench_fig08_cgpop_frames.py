"""Figure 8: the four CGPOP input frames.

Regenerates the input images of the platform/compiler study: two main
instruction trends per frame, with the halo/matvec code splitting into
two IPC behaviours on MinoTauro.

Shape assertions:
- cluster counts per frame are [2, 2, 3, 3] (the split appears on
  MinoTauro regardless of compiler);
- on each machine, the vendor compiler shifts every cluster left
  (lower IPC) and down (fewer instructions);
- the tracked region 2 groups MinoTauro's clusters 2 and 3.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.viz.ascii_plot import ascii_scatter
from repro.viz.frames_plot import render_frame_svg


def test_fig08_cgpop_frames(benchmark, case_results, output_dir):
    study_result = run_once(benchmark, lambda: case_results["CGPOP"])
    frames = study_result.result.frames

    for index, frame in enumerate(frames):
        print()
        print(
            ascii_scatter(
                frame.points,
                frame.labels,
                title=f"Figure 8{'abcd'[index]}: {frame.label}",
                x_label="IPC",
                y_label="instructions",
                height=14,
            )
        )
        render_frame_svg(frame, output_dir / f"fig08_{index}.svg")

    assert [frame.n_clusters for frame in frames] == [2, 2, 3, 3]

    # Vendor compilers: fewer instructions at lower IPC, per machine.
    for base, vendor in ((0, 1), (2, 3)):
        for cid in frames[base].cluster_ids:
            base_ipc = frames[base].cluster_metric(cid, "ipc")
            base_instr = frames[base].cluster_metric(cid, "instructions")
            vendor_ipc = frames[vendor].cluster_metric(cid, "ipc")
            vendor_instr = frames[vendor].cluster_metric(cid, "instructions")
            assert vendor_ipc < base_ipc
            assert vendor_instr < base_instr

    # The paper: "Region 2 in MareNostrum splits into Regions 2 and 3 in
    # MinoTauro ... the tracking algorithm automatically identifies and
    # groups together those regions".
    region2 = study_result.result.region(2)
    assert region2.members[0] == frozenset({2})
    assert region2.members[2] == frozenset({2, 3})
    assert region2.members[3] == frozenset({2, 3})
