"""Automated conclusions: the paper's section 4 narratives, diagnosed.

Each paper case study ends in a human conclusion; the insights engine
(`repro.analysis.insights`) should reach the same ones automatically
from the tracked trends:

- CGPOP: a compiler **encoding change** (fewer instructions, same time);
- NAS BT: **cache-capacity** degradation (IPC falls with L2 misses);
- MR-Genesis: a **contention knee** at 2/3 node occupation;
- HydroC: **cache-capacity** degradation at the L1 boundary;
- WRF: one region with **work replication** under scaling;
- NAS FT (time windows): a **progressive slowdown**.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.insights import diagnose, format_insights

EXPECTED_HEADLINES = {
    "CGPOP": "encoding-change",
    "NAS BT": "cache-capacity",
    "MR-Genesis": "contention-knee",
    "HydroC": "cache-capacity",
}


def test_insights_reach_paper_conclusions(benchmark, case_results, output_dir):
    def run_all():
        return {
            name: diagnose(case_results[name].result)
            for name in (*EXPECTED_HEADLINES, "WRF", "NAS FT")
        }

    per_study = run_once(benchmark, run_all)

    report_lines = []
    for name, insights in per_study.items():
        report_lines.append(f"== {name} ==")
        report_lines.append(format_insights(insights))
        report_lines.append("")
    text = "\n".join(report_lines)
    print("\n" + text)
    (output_dir / "insights.txt").write_text(text + "\n")

    for name, expected_kind in EXPECTED_HEADLINES.items():
        insights = per_study[name]
        assert insights, name
        kinds = {insight.kind for insight in insights}
        assert expected_kind in kinds, (name, kinds)
        # The headline (most severe) insight carries the expected kind.
        assert insights[0].kind == expected_kind, (name, insights[0])

    # WRF: exactly one region flagged for work replication.
    wrf_kinds = [i.kind for i in per_study["WRF"]]
    assert wrf_kinds.count("work-replication") == 1

    # NAS FT: the time-window drift shows up as progressive slowdown.
    ft_kinds = {i.kind for i in per_study["NAS FT"]}
    assert "progressive-slowdown" in ft_kinds
