"""Figure 11: the MR-Genesis multi-core resource-sharing study.

Regenerates both panels:
- 11a: IPC of the two main regions as 12 processes are packed onto
  1..12 nodes' worth of cores — a slight downslope (< 1.5 % per step)
  up to 2/3 node occupation, a sharp ~8.5 % drop when the node goes
  over the memory-bandwidth knee, totalling ~17.5 %;
- 11b: all metrics of Region 1 normalised to their maxima — L2 misses
  grow inversely to IPC and TLB misses climb with occupation.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.trends import compute_trends, normalized_to_max
from repro.viz.ascii_plot import ascii_trend
from repro.viz.trend_plot import render_trends_svg


def test_fig11a_ipc_progression(benchmark, case_results, output_dir):
    study_result = case_results["MR-Genesis"]
    result = study_result.result
    assert result.coverage == 100
    assert len(result.tracked_regions) == 2

    series = run_once(benchmark, lambda: compute_trends(result, "ipc"))

    print("\nFigure 11a: MR-Genesis IPC vs processes per node")
    print(ascii_trend(
        [(f"r{s.region_id}", s.values) for s in series],
        x_labels=tuple(str(k) for k in range(1, 13)),
    ))
    render_trends_svg(series, output_dir / "fig11a_ipc.svg",
                      title="MR-Genesis IPC vs node occupation")

    for s in series:
        steps = s.step_changes()
        print(f"  Region {s.region_id} steps%: "
              + " ".join(f"{100 * c:+.2f}" for c in steps))
        # Up to 8 tasks/node: slight downslope under 1.5 % per step.
        assert (np.abs(steps[:7]) < 0.015).all()
        # Beyond the knee: a sharp single step near -8.5 %.
        assert steps.min() < -0.06
        assert -0.11 < steps.min()
        # Total degradation ~17.5 %.
        total = s.values[-1] / s.values[0] - 1
        assert total == np.clip(total, -0.21, -0.14)


def test_fig11b_metric_correlation(benchmark, case_results, output_dir):
    study_result = case_results["MR-Genesis"]
    result = study_result.result

    def region1_metrics():
        picked = []
        for metric in ("ipc", "l2_misses", "tlb_misses", "instructions"):
            series = compute_trends(result, metric)
            picked.append(next(s for s in series if s.region_id == 1))
        return normalized_to_max(picked)

    normalised = run_once(benchmark, region1_metrics)

    print("\nFigure 11b: Region 1 metrics as % of their maxima")
    print(ascii_trend(
        [(s.metric, s.values) for s in normalised],
        x_labels=tuple(str(k) for k in range(1, 13)),
    ))
    render_trends_svg(normalised, output_dir / "fig11b_metrics.svg",
                      title="MR-Genesis region 1 metric correlation")

    by_metric = {s.metric: s.values for s in normalised}
    # IPC peaks at 1 task/node; misses peak at 12.
    assert by_metric["ipc"][0] == 100.0
    assert by_metric["l2_misses"][-1] == 100.0
    assert by_metric["tlb_misses"][-1] == 100.0
    # L2 misses grow inversely to IPC (monotone up to jitter noise);
    # TLB misses climb substantially.
    assert (np.diff(by_metric["l2_misses"]) > -0.2).all()
    assert by_metric["l2_misses"][-1] > by_metric["l2_misses"][0] + 5.0
    assert by_metric["tlb_misses"][-1] > 1.2 * by_metric["tlb_misses"][0]
    # Instructions are constant: only the mapping changed.
    instr = by_metric["instructions"]
    assert instr.max() - instr.min() < 2.0  # within 2 % of the maximum
