"""Performance benchmarks of the pipeline stages themselves.

Unlike the figure/table benches (which run once to regenerate paper
artefacts), these measure wall time with repeated rounds — the numbers
an adopter cares about when sizing the tool for real traces:

- DBSCAN + frame construction throughput on a mid-sized frame;
- one full tracking pass (pair of frames);
- the displacement evaluator alone (the hot nearest-neighbour path);
- the parallel execution layer (``jobs=N`` vs ``jobs=1``) and the
  content-addressed cache (warm vs cold) on a four-scenario study.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.analysis.study import ParametricStudy
from repro.apps import wrf
from repro.clustering.frames import FrameSettings, make_frame, make_frames
from repro.parallel.cache import PipelineCache
from repro.tracking.evaluators.displacement import displacement_matrix
from repro.tracking.scaling import normalize_frames
from repro.tracking.tracker import Tracker

SETTINGS = FrameSettings(relevance=0.995)

#: Four heavy scenarios: enough per-task work that worker processes can
#: amortise their startup and the cache has something real to save.
HEAVY_STUDY = ParametricStudy(
    app="wrf",
    scenarios=tuple(
        {"ranks": ranks, "iterations": 6, "base_ranks": 64}
        for ranks in (64, 96, 128, 160)
    ),
    settings=SETTINGS,
)


def _assert_study_results_equal(first, second) -> None:
    assert first.traces == second.traces
    assert first.result.coverage == second.result.coverage
    assert first.result.regions == second.result.regions


@pytest.fixture(scope="module")
def mid_traces():
    return [
        wrf.build(ranks=64, iterations=6, base_ranks=64).run(seed=BENCH_SEED + 1),
        wrf.build(ranks=64, iterations=6, base_ranks=64).run(seed=BENCH_SEED + 2),
    ]


@pytest.fixture(scope="module")
def mid_frames(mid_traces):
    return make_frames(mid_traces, SETTINGS)


def test_perf_frame_construction(benchmark, mid_traces):
    """Cluster a ~4.6k-burst trace into a frame."""
    frame = benchmark(lambda: make_frame(mid_traces[0], SETTINGS))
    assert frame.n_clusters == 12


def test_perf_displacement(benchmark, mid_frames):
    """Nearest-neighbour cross-classification between two frames."""
    space = normalize_frames(mid_frames)
    matrix = benchmark(
        lambda: displacement_matrix(
            mid_frames[0], mid_frames[1], space.points[0], space.points[1]
        )
    )
    assert matrix.values.shape == (12, 12)


def test_perf_full_tracking(benchmark, mid_frames):
    """The complete combination algorithm on one pair of frames."""
    result = benchmark.pedantic(
        lambda: Tracker(list(mid_frames)).run(), rounds=3, iterations=1
    )
    assert result.coverage == 100


def test_perf_study_parallel_vs_serial(benchmark):
    """Four scenarios with ``jobs=1`` vs one worker per CPU.

    On a multi-core host the parallel run must be strictly faster; on a
    single core the comparison is recorded but not enforced (there is
    nothing to win — the executor itself degrades to serial).  Either
    way the results must be bit-identical.
    """
    cpus = os.cpu_count() or 1

    start = time.perf_counter()
    serial = HEAVY_STUDY.run(seed=BENCH_SEED, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_once(
        benchmark, lambda: HEAVY_STUDY.run(seed=BENCH_SEED, jobs=cpus)
    )
    parallel_s = time.perf_counter() - start

    _assert_study_results_equal(serial, parallel)
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["jobs"] = cpus
    print(
        f"\nstudy (4 scenarios): jobs=1 {serial_s:.2f}s, "
        f"jobs={cpus} {parallel_s:.2f}s "
        f"(speedup x{serial_s / parallel_s:.2f})"
    )
    if cpus >= 2:
        assert parallel_s < serial_s


def test_perf_cache_warm_vs_cold(benchmark, tmp_path):
    """A warm-cache rerun must cost < 25% of the cold run.

    The cold run pays simulation + DBSCAN for all four scenarios; the
    warm run replays traces and labels from the content-addressed cache
    and only re-runs the (cheap, order-sensitive) tracking stage.
    """
    cache = PipelineCache(tmp_path / "cache")

    start = time.perf_counter()
    cold = HEAVY_STUDY.run(seed=BENCH_SEED, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_once(
        benchmark, lambda: HEAVY_STUDY.run(seed=BENCH_SEED, cache=cache)
    )
    warm_s = time.perf_counter() - start

    _assert_study_results_equal(cold, warm)
    info = cache.info()
    assert info.by_kind == {"frame": 4, "trace": 4}
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    print(
        f"\nstudy (4 scenarios): cold {cold_s:.2f}s, warm {warm_s:.2f}s "
        f"(ratio {warm_s / cold_s:.3f})"
    )
    assert warm_s < 0.25 * cold_s
