"""Performance benchmarks of the pipeline stages themselves.

Unlike the figure/table benches (which run once to regenerate paper
artefacts), these measure wall time with repeated rounds — the numbers
an adopter cares about when sizing the tool for real traces:

- DBSCAN + frame construction throughput on a mid-sized frame;
- one full tracking pass (pair of frames);
- the displacement evaluator alone (the hot nearest-neighbour path).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.apps import wrf
from repro.clustering.frames import FrameSettings, make_frame, make_frames
from repro.tracking.evaluators.displacement import displacement_matrix
from repro.tracking.scaling import normalize_frames
from repro.tracking.tracker import Tracker

SETTINGS = FrameSettings(relevance=0.995)


@pytest.fixture(scope="module")
def mid_traces():
    return [
        wrf.build(ranks=64, iterations=6, base_ranks=64).run(seed=BENCH_SEED + 1),
        wrf.build(ranks=64, iterations=6, base_ranks=64).run(seed=BENCH_SEED + 2),
    ]


@pytest.fixture(scope="module")
def mid_frames(mid_traces):
    return make_frames(mid_traces, SETTINGS)


def test_perf_frame_construction(benchmark, mid_traces):
    """Cluster a ~4.6k-burst trace into a frame."""
    frame = benchmark(lambda: make_frame(mid_traces[0], SETTINGS))
    assert frame.n_clusters == 12


def test_perf_displacement(benchmark, mid_frames):
    """Nearest-neighbour cross-classification between two frames."""
    space = normalize_frames(mid_frames)
    matrix = benchmark(
        lambda: displacement_matrix(
            mid_frames[0], mid_frames[1], space.points[0], space.points[1]
        )
    )
    assert matrix.values.shape == (12, 12)


def test_perf_full_tracking(benchmark, mid_frames):
    """The complete combination algorithm on one pair of frames."""
    result = benchmark.pedantic(
        lambda: Tracker(list(mid_frames)).run(), rounds=3, iterations=1
    )
    assert result.coverage == 100
