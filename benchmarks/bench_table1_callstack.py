"""Table 1: correlations from the call-stack evaluator for WRF.

Regenerates the mapping between regions and their source references:
several relations are not univocal because distinct behaviours share
one call path (regions 2 and 5 point at the same source line, as do
regions 7 and 12 in our calibration of the paper's table).

Shape assertions:
- every cluster shares its reference fully with itself across frames;
- the two engineered shared-reference groups are detected;
- unrelated regions share no reference (the evaluator prunes them).
"""

from __future__ import annotations

from collections import defaultdict

from benchmarks.conftest import run_once
from repro.tracking.evaluators.callstack import callstack_matrix


def test_table1_callstack_relations(benchmark, wrf_frames, output_dir):
    frame_a, frame_b = wrf_frames

    matrix = run_once(benchmark, lambda: callstack_matrix(frame_a, frame_b))

    # Group regions by shared reference, Table 1 style.
    by_reference: dict[str, list[int]] = defaultdict(list)
    for cid in frame_a.cluster_ids:
        for path in sorted(frame_a.cluster(cid).callpaths):
            by_reference[path].append(cid)

    lines = ["Table 1: call-stack references of the WRF regions"]
    for path, cids in sorted(by_reference.items()):
        short = path.split("@")[-1]
        lines.append(f"  {short:<28} <- regions {cids}")
    text = "\n".join(lines)
    print("\n" + text)
    (output_dir / "table1_callstack.txt").write_text(text + "\n")

    # Self-correspondence is total.
    for cid in frame_a.cluster_ids:
        assert matrix.get(cid, cid) == 1.0

    shared_groups = [tuple(sorted(cids)) for cids in by_reference.values()
                     if len(cids) > 1]
    assert len(shared_groups) == 2

    # Shared references connect the group members across frames too,
    # and unrelated pairs share nothing.
    in_group: set[int] = set()
    for group in shared_groups:
        for a in group:
            for b in group:
                assert matrix.get(a, b) == 1.0
        in_group |= set(group)
    singles = [cid for cid in frame_a.cluster_ids if cid not in in_group]
    assert matrix.get(singles[0], singles[1]) == 0.0
