"""Streaming-pipeline benchmarks: incremental vs batch, cold vs resumed.

What an adopter of ``repro-track watch`` cares about:

- the *incremental tax* — tracking a windowed trace frame-by-frame
  (re-chaining regions after every push) vs one batch pass over the
  same frames, with the results asserted bit-identical;
- the *resume win* — a warm re-run replaying every window from the
  checkpoint vs the cold run that computed them.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SEED, run_once
from repro.api import track_stream
from repro.apps import wrf
from repro.clustering.frames import FrameSettings, make_frames
from repro.parallel.cache import PipelineCache
from repro.stream import slice_trace, track_windows
from repro.tracking.tracker import Tracker

SETTINGS = FrameSettings(relevance=0.995)
N_WINDOWS = 12


def _long_trace():
    return wrf.build(ranks=64, iterations=24, base_ranks=64).run(
        seed=BENCH_SEED + 1
    )


def test_perf_incremental_vs_batch(benchmark):
    """One long WRF run, 12 windows: streaming vs batch tracking."""
    trace = _long_trace()
    _, windows = slice_trace(trace, n_windows=N_WINDOWS)
    frames = make_frames(
        [w for w in windows if w.n_bursts], SETTINGS
    )

    start = time.perf_counter()
    batch = Tracker(frames).run()
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    incremental = run_once(benchmark, lambda: track_stream(frames))
    incremental_s = time.perf_counter() - start

    assert incremental.regions == batch.regions
    assert incremental.coverage == batch.coverage
    benchmark.extra_info["batch_s"] = round(batch_s, 3)
    benchmark.extra_info["incremental_s"] = round(incremental_s, 3)
    benchmark.extra_info["n_frames"] = len(frames)
    print(
        f"\nwindowed WRF ({len(frames)} frames): batch {batch_s:.2f}s, "
        f"incremental {incremental_s:.2f}s "
        f"(tax x{incremental_s / batch_s:.2f})"
    )


def test_perf_watch_resume(benchmark, tmp_path):
    """Cold watch vs checkpointed resume of the same windowed run."""
    trace = _long_trace()
    cache = PipelineCache(tmp_path / "cache")

    start = time.perf_counter()
    cold = track_windows(
        trace, n_windows=N_WINDOWS, settings=SETTINGS, cache=cache
    )
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_once(
        benchmark,
        lambda: track_windows(
            trace, n_windows=N_WINDOWS, settings=SETTINGS, cache=cache
        ),
    )
    warm_s = time.perf_counter() - start

    assert warm.regions == cold.regions
    assert warm.coverage == cold.coverage
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    print(
        f"\nwatch ({N_WINDOWS} windows): cold {cold_s:.2f}s, "
        f"resumed {warm_s:.2f}s (speedup x{cold_s / warm_s:.2f})"
    )
    assert warm_s < cold_s


def test_perf_watch_alerts_overhead(benchmark):
    """Forecast/alerting tax: monitored watch vs plain watch.

    The online monitor refits a bounded-history trend per (track,
    metric) each window; the acceptance bar is <= 15% wall-time
    overhead (plus a small absolute floor to absorb timer noise), with
    the tracking output asserted bit-identical.
    """
    from repro.obs.alerts import AlertConfig
    from repro.stream import WatchTelemetry

    trace = _long_trace()

    def plain():
        return track_windows(trace, n_windows=N_WINDOWS, settings=SETTINGS)

    def monitored():
        telemetry = WatchTelemetry(alerts=AlertConfig())
        result = track_windows(
            trace, n_windows=N_WINDOWS, settings=SETTINGS,
            telemetry=telemetry,
        )
        return result, telemetry

    # Best-of-two on each side damps one-off scheduler hiccups.
    off_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        plain_result = plain()
        off_s = min(off_s, time.perf_counter() - start)

    on_s = float("inf")
    start = time.perf_counter()
    monitored_result, telemetry = run_once(benchmark, monitored)
    on_s = min(on_s, time.perf_counter() - start)
    start = time.perf_counter()
    monitored_result, telemetry = monitored()
    on_s = min(on_s, time.perf_counter() - start)

    assert monitored_result.regions == plain_result.regions
    assert monitored_result.coverage == plain_result.coverage
    assert telemetry.n_updates > 0

    overhead = on_s / off_s - 1.0
    benchmark.extra_info["alerts_off_s"] = round(off_s, 3)
    benchmark.extra_info["alerts_on_s"] = round(on_s, 3)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 1)
    benchmark.extra_info["n_alerts"] = len(telemetry.alerts)
    print(
        f"\nwatch alerts ({N_WINDOWS} windows): off {off_s:.2f}s, "
        f"on {on_s:.2f}s (overhead {overhead * 100:+.1f}%)"
    )
    assert on_s <= off_s * 1.15 + 0.25, (
        f"alerting overhead {overhead * 100:.1f}% exceeds the 15% budget"
    )
