"""Figure 10: performance trends for the NAS BT code regions.

Regenerates both panels of the problem-size study:
- 10a: per-region IPC across classes W -> A -> B -> C, with two trend
  families — a sharp 40-65 % loss from W to A that then stabilises
  (four regions), and a continued decline that only stabilises at B
  (two regions);
- 10b: the L2 data-cache miss growth explaining the IPC losses.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.trends import compute_trends
from repro.viz.ascii_plot import ascii_trend
from repro.viz.trend_plot import render_trends_svg

CLASSES = ("W", "A", "B", "C")


def test_fig10a_ipc_trends(benchmark, case_results, output_dir):
    study_result = case_results["NAS BT"]
    series = run_once(benchmark, lambda: compute_trends(study_result.result, "ipc"))

    print("\nFigure 10a: NAS BT IPC per class")
    print(ascii_trend([(f"r{s.region_id}", s.values) for s in series],
                      x_labels=CLASSES))
    sharp, gradual = [], []
    for s in series:
        steps = s.step_changes()
        print(f"  Region {s.region_id}: "
              + " ".join(f"{v:.3f}" for v in s.values)
              + "  steps% " + " ".join(f"{100 * c:+.1f}" for c in steps))
        w_to_a = steps[0]
        a_to_b = steps[1]
        b_to_c = steps[2]
        # Every region must end stable (paper: all stabilise by B).
        assert abs(b_to_c) < 0.05
        if abs(a_to_b) < 0.05:
            sharp.append((s.region_id, w_to_a))
        else:
            gradual.append((s.region_id, a_to_b))
    render_trends_svg(series, output_dir / "fig10a_ipc.svg",
                      title="NAS BT IPC per class")

    # Paper: "for regions 1, 2, 4 and 5, a sharp loss ranging from 40%
    # to 65% happens as soon as we move from Class W to A and then
    # stabilizes, while for regions 3 and 6 the IPC keeps decreasing
    # and does not stabilize until Class B."
    assert len(sharp) == 4
    assert all(-0.65 <= drop <= -0.40 for _, drop in sharp)
    assert len(gradual) == 2
    assert all(step < -0.2 for _, step in gradual)


def test_fig10b_l2_misses(benchmark, case_results, output_dir):
    study_result = case_results["NAS BT"]
    series = run_once(
        benchmark, lambda: compute_trends(study_result.result, "l2_mpki")
    )

    print("\nFigure 10b: NAS BT L2 misses per kilo-instruction")
    for s in series:
        print(f"  Region {s.region_id}: "
              + " ".join(f"{v:.2f}" for v in s.values))
    render_trends_svg(series, output_dir / "fig10b_l2.svg",
                      title="NAS BT L2 MPKI per class")

    # The IPC reduction is "related to an increase in L2 data cache
    # misses": L2 MPKI grows monotonically and by an order of magnitude.
    for s in series:
        values = s.values
        assert (np.diff(values) > -1e-6).all()
        assert values[-1] > 5 * values[0]
