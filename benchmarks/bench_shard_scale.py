"""Scaling curves for the sharded clustering and bounded watch paths.

Two questions an adopter asks before pointing the pipeline at a
burst-scale trace:

- *shards*: how does cluster-then-merge wall time move with the shard
  count on a 10^5-burst frame, and are the labels really bit-identical
  to the whole-frame fit at every point of the curve?
- *windows*: does ``--max-live-windows`` actually bound peak RSS as the
  window count grows?  Each configuration runs in its own subprocess
  because ``ru_maxrss`` is a process-lifetime high-water mark — a
  single process could only ever report the largest configuration.

Both tests print their curve and stash it in ``extra_info`` so the
committed ``BENCH_RESULTS.json`` carries the trajectory PR over PR.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import BENCH_SEED, run_once
from repro.clustering.dbscan import DBSCAN
from repro.shard import shard_assignment, sharded_dbscan

N_POINTS = 100_000
EPS = 0.03
MIN_PTS = 10
SHARD_COUNTS = (2, 4, 8)


def _burst_cloud():
    """10^5 synthetic bursts: 20 blobs over 64 ranks, rank-correlated
    so rank-sharding produces the straddling clusters the merge must
    reunite."""
    rng = np.random.default_rng(BENCH_SEED)
    centers = rng.uniform(0.05, 0.95, size=(20, 2))
    blob = rng.integers(0, len(centers), size=N_POINTS)
    points = centers[blob] + rng.normal(0.0, 0.008, size=(N_POINTS, 2))
    # Rank follows the blob index with jitter: shards cut through the
    # middle of clusters instead of cleanly containing them.
    ranks = (blob * 3 + rng.integers(0, 4, size=N_POINTS)) % 64
    return points, ranks


def test_perf_shard_scale_100k(benchmark):
    """Whole-frame DBSCAN vs cluster-then-merge at 2/4/8 shards."""
    points, ranks = _burst_cloud()

    start = time.perf_counter()
    whole = DBSCAN(eps=EPS, min_pts=MIN_PTS).fit(points)
    whole_s = time.perf_counter() - start

    curve: dict[int, float] = {1: whole_s}
    for shards in SHARD_COUNTS:
        shard_of = shard_assignment(ranks, shards)
        run = (
            (lambda: run_once(
                benchmark,
                lambda: sharded_dbscan(points, EPS, MIN_PTS, shard_of),
            ))
            if shards == SHARD_COUNTS[-1]
            else (lambda: sharded_dbscan(points, EPS, MIN_PTS, shard_of))
        )
        start = time.perf_counter()
        result = run()
        curve[shards] = time.perf_counter() - start
        np.testing.assert_array_equal(result.labels, whole.labels)
        assert result.n_clusters == whole.n_clusters

    benchmark.extra_info["n_points"] = N_POINTS
    for shards, seconds in curve.items():
        benchmark.extra_info[f"shards_{shards}_s"] = round(seconds, 3)
    line = ", ".join(f"{s}sh {t:.2f}s" for s, t in curve.items())
    print(f"\nsharded DBSCAN ({N_POINTS:,} points): {line}")


_RSS_CHILD = """\
import json, resource, sys, time
from repro.apps import wrf
from repro.clustering.frames import FrameSettings
from repro.stream import track_windows

n_windows = int(sys.argv[1])
max_live = None if sys.argv[2] == "none" else int(sys.argv[2])
trace = wrf.build(ranks=64, iterations=24, base_ranks=64).run(seed=1)
start = time.perf_counter()
result = track_windows(
    trace, n_windows=n_windows, settings=FrameSettings(relevance=0.995),
    max_live_windows=max_live,
)
print(json.dumps({
    "wall_s": time.perf_counter() - start,
    "rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "n_frames": result.n_frames,
}))
"""


def _measure_watch(n_windows: int, max_live: int | None) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, str(n_windows),
         "none" if max_live is None else str(max_live)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_perf_bounded_watch_rss(benchmark):
    """Peak RSS vs window count, bounded (k=2) against unbounded.

    The acceptance bar is *flatness*: tripling the window count must
    not grow the bounded run's high-water mark beyond allocator jitter
    (the generous 20%+16MiB slack absorbs interpreter noise; the
    committed curve is the real evidence).
    """
    window_counts = (4, 12)
    curves: dict[str, dict[int, dict]] = {"bounded": {}, "unbounded": {}}
    for n_windows in window_counts:
        curves["unbounded"][n_windows] = _measure_watch(n_windows, None)
        if n_windows == window_counts[-1]:
            curves["bounded"][n_windows] = run_once(
                benchmark, lambda: _measure_watch(n_windows, 2)
            )
        else:
            curves["bounded"][n_windows] = _measure_watch(n_windows, 2)
        assert curves["bounded"][n_windows]["n_frames"] == n_windows
        assert curves["unbounded"][n_windows]["n_frames"] == n_windows

    for mode, curve in curves.items():
        for n_windows, sample in curve.items():
            benchmark.extra_info[f"{mode}_{n_windows}w_rss_kib"] = (
                sample["rss_kib"]
            )
            benchmark.extra_info[f"{mode}_{n_windows}w_wall_s"] = round(
                sample["wall_s"], 3
            )
        line = ", ".join(
            f"{n}w {s['rss_kib'] / 1024:.0f}MiB/{s['wall_s']:.2f}s"
            for n, s in curve.items()
        )
        print(f"\nwatch RSS [{mode}]: {line}")

    small = curves["bounded"][window_counts[0]]["rss_kib"]
    large = curves["bounded"][window_counts[-1]]["rss_kib"]
    assert large <= small * 1.20 + 16 * 1024, (
        f"bounded watch RSS not flat in window count: "
        f"{small} KiB @ {window_counts[0]}w -> "
        f"{large} KiB @ {window_counts[-1]}w"
    )
