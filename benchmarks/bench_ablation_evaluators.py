"""Ablation: what each tracking heuristic contributes.

Not a paper table — an ablation of the design choices DESIGN.md calls
out.  The paper argues (section 3) that the evaluators "have to
cooperate to complement the correspondences that a given one might fail
to discern"; this bench quantifies that claim by re-running three
representative case studies with evaluators disabled:

- **displacement only** — raw reciprocal nearest-neighbour matching;
- **+ call stack** — adds the pruning/rescue heuristic;
- **full** — call stack + SPMD widening + sequence refinement.

Expected shape: the full combination dominates every ablation, the
call-stack evaluator is what rescues the long-jump study (NAS BT), and
the easy short-displacement study (HydroC) is insensitive.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.analysis.experiments import get_case_study
from repro.analysis.report import format_table
from repro.tracking.tracker import Tracker, TrackerConfig

ABLATIONS = (
    ("displacement only", dict(use_callstack=False, use_spmd=False, use_sequence=False)),
    ("+ call stack", dict(use_callstack=True, use_spmd=False, use_sequence=False)),
    ("full combination", dict(use_callstack=True, use_spmd=True, use_sequence=True)),
)

STUDIES = ("NAS BT", "CGPOP", "HydroC")


def _coverage_grid(case_results):
    grid: dict[str, dict[str, int]] = {}
    for study_name in STUDIES:
        study_result = case_results[study_name]
        frames = list(study_result.result.frames)
        base_config = TrackerConfig(
            log_extensive=frames[0].settings.log_y,
        )
        grid[study_name] = {}
        for label, switches in ABLATIONS:
            config = replace(base_config, **switches)
            result = Tracker(frames, config).run()
            grid[study_name][label] = result.coverage
    return grid


def test_ablation_evaluators(benchmark, case_results, output_dir):
    grid = run_once(benchmark, lambda: _coverage_grid(case_results))

    rows = [
        [study] + [grid[study][label] for label, _ in ABLATIONS]
        for study in STUDIES
    ]
    text = format_table(
        ["Study", *(label for label, _ in ABLATIONS)],
        rows,
        title="Evaluator ablation: tracking coverage (%)",
    )
    print("\n" + text)
    (output_dir / "ablation_evaluators.txt").write_text(text + "\n")

    for study in STUDIES:
        coverages = [grid[study][label] for label, _ in ABLATIONS]
        # Adding evaluators never hurts, and the full combination wins.
        assert coverages[-1] == max(coverages)
        assert coverages[1] >= coverages[0]

    # NAS BT's two-orders-of-magnitude jumps defeat pure displacement;
    # the call-stack evaluator rescues them (the paper's motivation for
    # combining heuristics).
    assert grid["NAS BT"]["displacement only"] < 50
    assert grid["NAS BT"]["+ call stack"] == 100

    # The short-displacement HydroC study is easy for everyone.
    assert grid["HydroC"]["displacement only"] == 100
