"""Figure 7: performance trends for the WRF code regions.

Regenerates both panels:
- 7a: IPC evolution from 128 to 256 tasks, filtered to regions varying
  more than 3 % — the paper reports a ~20 % decline for two regions and
  a ~5 % improvement for three;
- 7b: total instructions per region — flat under strong scaling except
  one region growing ~5 % (code replication).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.trends import compute_trends, top_variations
from repro.viz.ascii_plot import ascii_trend
from repro.viz.trend_plot import render_trends_svg


def test_fig07a_ipc_trends(benchmark, wrf_result, output_dir):
    series = run_once(benchmark, lambda: compute_trends(wrf_result, "ipc"))
    shown = top_variations(series, min_variation=0.03)

    print("\nFigure 7a: IPC evolution (regions varying > 3%)")
    print(
        ascii_trend(
            [(f"r{s.region_id}", s.values) for s in shown],
            x_labels=("128 tasks", "256 tasks"),
        )
    )
    for s in shown:
        print(f"  Region {s.region_id}: {s.values[0]:.3f} -> {s.values[1]:.3f} "
              f"({100 * s.pct_change_total():+.1f}%)")
    render_trends_svg(shown, output_dir / "fig07a_ipc.svg", title="WRF IPC 128->256")

    changes = {s.region_id: s.pct_change_total() for s in series}
    declining = [c for c in changes.values() if c < -0.15]
    improving = [c for c in changes.values() if 0.02 < c < 0.09]
    flat = [c for c in changes.values() if abs(c) <= 0.03]
    # Paper: regions 11 and 12 lose ~20 %, regions 4, 6, 7 gain ~5 %.
    assert len(declining) == 2
    assert all(-0.25 < c < -0.15 for c in declining)
    assert len(improving) == 3
    assert len(flat) == 12 - 5


def test_fig07b_instruction_totals(benchmark, wrf_result, output_dir):
    series = run_once(
        benchmark,
        lambda: compute_trends(wrf_result, "instructions", aggregate="total"),
    )

    print("\nFigure 7b: total instructions per region")
    for s in series:
        print(f"  Region {s.region_id}: {s.values[0]:.4g} -> {s.values[1]:.4g} "
              f"({100 * s.pct_change_total():+.1f}%)")
    render_trends_svg(
        series, output_dir / "fig07b_instructions.svg",
        title="WRF total instructions 128->256",
    )

    changes = [s.pct_change_total() for s in series]
    replicating = [c for c in changes if c > 0.03]
    # Strong scaling keeps totals constant; one region replicates ~5 %.
    assert len(replicating) == 1
    assert 0.03 < replicating[0] < 0.08
    assert sum(1 for c in changes if abs(c) <= 0.02) == 11
