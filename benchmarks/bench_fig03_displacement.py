"""Figure 3: correlations from the displacements evaluator for WRF.

Regenerates the nearest-neighbour cross-classification matrix between
the WRF-128 (rows) and WRF-256 (columns) frames: cell (i, j) is the
percentage of cluster A_i's bursts whose nearest burst in the second
frame belongs to B_j.

Shape assertions:
- most clusters classify overwhelmingly (>= 90 %) onto one counterpart,
  as in the paper's matrix of mostly-100 % cells;
- every row is fully explained (rows sum to ~1);
- after the 5 % outlier filter, no row is empty.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.evaluators.displacement import displacement_matrix
from repro.tracking.scaling import normalize_frames


def test_fig03_displacement_matrix(benchmark, wrf_frames, output_dir):
    frame_a, frame_b = wrf_frames
    space = normalize_frames(wrf_frames)

    matrix = run_once(
        benchmark,
        lambda: displacement_matrix(
            frame_a, frame_b, space.points[0], space.points[1]
        ),
    )

    filtered = matrix.drop_below(0.05)
    text = filtered.to_text(row_label="A", col_label="B")
    print("\nFigure 3: displacement correlations WRF-128 (rows) x WRF-256 (cols)")
    print(text)
    (output_dir / "fig03_displacement_matrix.txt").write_text(text + "\n")

    values = matrix.values
    assert values.shape == (12, 12)
    row_sums = values.sum(axis=1)
    np.testing.assert_allclose(row_sums, 1.0, atol=1e-9)

    dominant_rows = (values.max(axis=1) >= 0.90).sum()
    assert dominant_rows >= 10  # the paper's matrix is mostly univocal

    for cid in frame_a.cluster_ids:
        assert filtered.best_match(cid) is not None
