"""Table 3: CGPOP performance results across machines and compilers.

Regenerates the per-region IPC / instructions / duration table of the
platform-and-compiler study (MareNostrum x {gfortran, xlf}, MinoTauro x
{gfortran, ifort}).

Shape assertions (paper section 4.1):
- vendor compilers cut instructions ~36 % (xlf) and ~30 % (ifort);
- IPC falls in the same proportion;
- region execution times barely move across compilers (< 1 %);
- MinoTauro runs the regions ~2.5x faster than MareNostrum;
- absolute anchors: MN-gfortran IPC ~0.25 and region 1 at ~6.8M
  instructions per burst (the paper's headline cells).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import table3_report


def test_table3_cgpop(benchmark, case_results, output_dir):
    study_result = run_once(benchmark, lambda: case_results["CGPOP"])

    text, rows = table3_report(study_result)
    print("\n" + text)
    (output_dir / "table3_cgpop.txt").write_text(text + "\n")

    assert len(rows) == 2
    # Scenario order: MN-gfortran, MN-xlf, MT-gfortran, MT-ifort.
    for row in rows:
        ipc = row["ipc"]
        instr = row["instructions"]
        duration = row["duration_per_process"]

        assert instr[1] / instr[0] == pytest.approx(0.64, abs=0.03)  # xlf
        assert instr[3] / instr[2] == pytest.approx(0.70, abs=0.03)  # ifort
        assert ipc[1] / ipc[0] == pytest.approx(0.64, abs=0.04)
        assert ipc[3] / ipc[2] == pytest.approx(0.70, abs=0.04)
        # Wall time invariant under the compiler change.
        assert duration[1] == pytest.approx(duration[0], rel=0.01)
        assert duration[3] == pytest.approx(duration[2], rel=0.01)
        # Platform change: MinoTauro ~2.5x faster.
        speedup = duration[0] / duration[2]
        assert 2.0 < speedup < 3.0

    # Absolute anchors from the paper's Table 3.
    region1 = rows[0]
    assert region1["ipc"][0] == pytest.approx(0.25, abs=0.03)
    assert region1["instructions"][0] == pytest.approx(6.8e6, rel=0.03)
    assert region1["ipc"][2] == pytest.approx(0.42, abs=0.05)
    assert region1["instructions"][2] == pytest.approx(5.0e6, rel=0.03)
