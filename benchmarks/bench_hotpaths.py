"""Hot-path benchmarks: the kernels where the pipeline's wall-time goes.

The figure/table benches regenerate paper artefacts; the stream benches
measure the watch pipeline.  This file covers the remaining dominant
costs so every optimisation claim is a measured number in
``BENCH_RESULTS.json``:

- **DBSCAN** at 10^4 and 10^5 bursts (the clustering stage is the
  single largest cost of every end-to-end run);
- **Needleman-Wunsch** pairwise alignment and the **star MSA** the
  SPMD evaluator builds per frame;
- **the combination algorithm** (all four evaluators on one frame
  pair);
- the **end-to-end five-app Table 2 pipeline** (the differential
  suite's app set: WRF, NAS BT, CGPOP, HydroC, MR-Genesis).

Every bench asserts the *shape* of its result so a broken optimisation
cannot post a fast-but-wrong number.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, run_once
from repro.alignment.msa import star_align
from repro.alignment.pairwise import global_align
from repro.analysis.experiments import get_case_study
from repro.clustering.dbscan import DBSCAN
from repro.tracking.combine import combine_pair
from repro.tracking.scaling import normalize_frames

#: The five applications the PR 5/6 differential suites track.
FIVE_APPS = ("WRF", "NAS BT", "CGPOP", "HydroC", "MR-Genesis")


def _blob_points(n: int, *, n_blobs: int = 12, spread: float = 0.02) -> np.ndarray:
    """Synthetic normalised frame: *n* bursts around *n_blobs* behaviours.

    Mimics what DBSCAN sees in production — compact dense blobs in the
    unit square — at a controlled population.
    """
    rng = np.random.default_rng(BENCH_SEED)
    centers = rng.uniform(0.1, 0.9, size=(n_blobs, 2))
    which = rng.integers(0, n_blobs, size=n)
    points = centers[which] + rng.normal(0.0, spread, size=(n, 2))
    return np.clip(points, 0.0, 1.0)


@pytest.mark.parametrize("n", [10_000, 100_000], ids=["10k", "100k"])
def test_perf_dbscan(benchmark, n):
    """Cluster a dense synthetic frame (the production regime)."""
    points = _blob_points(n)
    result = run_once(
        benchmark, lambda: DBSCAN(eps=0.03, min_pts=max(5, n // 400)).fit(points)
    )
    assert result.labels.shape == (n,)
    assert 1 <= result.n_clusters <= 14
    # Dense blobs: almost everything is core, nothing is lost.
    assert result.core_mask.mean() > 0.9


def _rank_sequences(n_ranks: int = 64, length: int = 400):
    """Near-identical SPMD phase sequences with a few divergent ranks."""
    rng = np.random.default_rng(BENCH_SEED)
    base = rng.integers(1, 13, size=length)
    sequences = {}
    for rank in range(n_ranks):
        seq = base.copy()
        if rank % 16 == 3:  # a handful of ranks diverge slightly
            drop = rng.integers(0, length, size=4)
            seq = np.delete(seq, drop)
        sequences[rank] = seq
    return sequences


def test_perf_nw_pairwise(benchmark):
    """One long global alignment (consensus-vs-consensus scale)."""
    rng = np.random.default_rng(BENCH_SEED)
    a = rng.integers(1, 13, size=3_000)
    b = a.copy()
    drop = rng.integers(0, a.size, size=30)
    b = np.delete(b, drop)
    alignment = run_once(benchmark, lambda: global_align(a, b))
    assert alignment.score > 0
    assert alignment.length >= a.size


def test_perf_msa_star(benchmark):
    """Star MSA over 64 near-identical rank sequences (SPMD evaluator)."""
    sequences = _rank_sequences()
    alignment = run_once(benchmark, lambda: star_align(sequences))
    assert alignment.n_sequences == 64
    assert alignment.n_columns >= 400


def test_perf_combine_pair(benchmark, wrf_frames):
    """All four evaluators + combination on the WRF 128/256 pair."""
    space = normalize_frames(wrf_frames)
    pair = run_once(
        benchmark,
        lambda: combine_pair(
            wrf_frames[0], wrf_frames[1], space.points[0], space.points[1]
        ),
    )
    assert len(pair.relations) >= 10


def test_perf_table2_five_apps(benchmark):
    """End-to-end five-app Table 2 pipeline: simulate, cluster, track.

    Runs fresh (no session cache) so the bench always pays the full
    pipeline cost; the paper's Table 2 rows anchor correctness.
    """
    def run_all():
        return {name: get_case_study(name).run(seed=BENCH_SEED) for name in FIVE_APPS}

    results = run_once(benchmark, run_all)
    for name in FIVE_APPS:
        case = get_case_study(name)
        study = results[name]
        assert len(study.traces) == case.expected_images, name
        assert study.n_tracked == case.expected_regions, name
        assert study.coverage == case.expected_coverage, name
