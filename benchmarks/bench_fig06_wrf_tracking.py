"""Figure 6: the tracked WRF sequence with consistent renaming.

Runs the full tracking algorithm on the WRF 128/256 pair and
reconstructs the input images with all object identifiers renamed so
equivalent regions keep the same numbering and colour — the paper's
animated sequence, flattened into one SVG.

Shape assertions:
- 12 regions tracked at 100 % coverage (paper Table 2's WRF row);
- renamed labels are consistent: every region id present in frame 1 is
  present in frame 2;
- the renaming preserves the burst partition of each frame.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.tracking.relabel import relabel_frames
from repro.tracking.tracker import Tracker
from repro.viz.ascii_plot import ascii_scatter
from repro.viz.frames_plot import render_sequence_svg


def test_fig06_wrf_tracking(benchmark, wrf_frames, output_dir):
    result = run_once(benchmark, lambda: Tracker(wrf_frames).run())

    assert len(result.tracked_regions) == 12
    assert result.coverage == 100

    relabeled = relabel_frames(result)
    for item in relabeled:
        print()
        print(
            ascii_scatter(
                item.frame.points,
                item.labels,
                title=f"Figure 6 (tracked): {item.frame.label}",
                x_label="IPC",
                y_label="instructions",
            )
        )
    path = render_sequence_svg(relabeled, output_dir / "fig06_wrf_tracked.svg")
    print(f"\nwrote {path}")

    assert relabeled[0].region_ids == relabeled[1].region_ids
    for item in relabeled:
        # Every clustered burst carries a region id after renaming.
        clustered = item.frame.labels != 0
        assert (item.labels[clustered] != 0).all()
