#!/usr/bin/env python3
"""Block-size / working-set study (paper section 4.4, Figure 12).

Sweeps HydroC's computation block size across twelve doublings and
reproduces the cache-capacity story: instructions shrink slightly as
control overhead amortises, and IPC dips sharply when a 64x64 block of
8-byte elements stops fitting the 32 KB L1 — visible as a ~40 % jump in
L1 misses at the 64 -> 128 transition.

Also renders the tracked frames and trend charts as SVG files under
``examples/output/``.

Usage::

    python examples/blocksize_study.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ParametricStudy
from repro.apps.hydroc import BLOCK_SIZES
from repro.tracking import compute_trends, relabel_frames
from repro.viz import ascii_trend, render_sequence_svg, render_trends_svg

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    study = ParametricStudy(
        app="hydroc",
        scenarios=tuple({"block_size": b} for b in BLOCK_SIZES),
    )
    result = study.run(seed=0)
    print(f"tracked {result.n_tracked} regions at {result.coverage}% coverage")
    print("(one code phase, bimodal behaviour -> two tracked regions)\n")

    labels = tuple(str(b) for b in BLOCK_SIZES)
    for metric, title in (
        ("instructions", "instructions per burst"),
        ("ipc", "IPC"),
        ("l1_misses", "L1 data-cache misses per burst"),
    ):
        series = compute_trends(result.result, metric)
        print(ascii_trend(
            [(f"r{s.region_id}", s.values) for s in series],
            x_labels=labels,
            title=f"HydroC: {title} vs block size",
        ))
        print()
        render_trends_svg(series, OUTPUT / f"hydroc_{metric}.svg",
                          title=f"HydroC {title}")

    l1 = compute_trends(result.result, "l1_misses")
    dip = BLOCK_SIZES.index(64)
    for s in l1:
        ratio = s.values[dip + 1] / s.values[dip]
        print(f"Region {s.region_id}: L1 misses x{ratio:.2f} at the "
              f"64 -> 128 block transition (32 KB L1 limit)")

    relabeled = relabel_frames(result.result)
    path = render_sequence_svg(relabeled, OUTPUT / "hydroc_frames.svg",
                               columns=4)
    print(f"\nrendered {path}")


if __name__ == "__main__":
    main()
