#!/usr/bin/env python3
"""Multi-core resource-sharing study (paper section 4.3, Figure 11).

Runs MR-Genesis with 12 processes packed onto progressively fewer nodes
(1 to 12 tasks per node) and reproduces the contention signature: flat
instructions, gently sliding IPC up to ~2/3 occupation, a sharp drop at
the memory-bandwidth knee, and L2/TLB misses growing inversely.

Usage::

    python examples/contention_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ParametricStudy
from repro.tracking import compute_trends, normalized_to_max
from repro.viz import ascii_trend


def main() -> None:
    study = ParametricStudy(
        app="mr-genesis",
        scenarios=tuple({"tasks_per_node": k} for k in range(1, 13)),
    )
    result = study.run(seed=0)
    print(f"tracked {result.n_tracked} regions at {result.coverage}% coverage\n")

    labels = tuple(str(k) for k in range(1, 13))
    ipc = compute_trends(result.result, "ipc")
    print(ascii_trend(
        [(f"r{s.region_id}", s.values) for s in ipc],
        x_labels=labels,
        title="MR-Genesis: IPC vs processes per node",
    ))
    for s in ipc:
        steps = 100 * s.step_changes()
        knee = int(np.argmin(steps)) + 2  # +2: steps start at k=1->2
        total = 100 * (s.values[-1] / s.values[0] - 1)
        print(f"  Region {s.region_id}: knee at {knee} tasks/node "
              f"(step {steps.min():+.1f}%), total {total:+.1f}%")

    # Figure 11b: metric correlation for Region 1.
    metrics = []
    for name in ("ipc", "l2_misses", "tlb_misses", "instructions"):
        metrics.append(next(s for s in compute_trends(result.result, name)
                            if s.region_id == 1))
    print()
    print(ascii_trend(
        [(s.metric, s.values) for s in normalized_to_max(metrics)],
        x_labels=labels,
        title="Region 1 metrics as % of their maxima",
    ))
    print("\nInstructions are flat (only the mapping changed); the IPC loss"
          "\nis explained by L2 misses and TLB misses growing as the node"
          "\nfills — the shared memory system is the bottleneck.")


if __name__ == "__main__":
    main()
