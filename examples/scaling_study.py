#!/usr/bin/env python3
"""Problem-size study with prediction (paper section 4.2 + future work).

Runs NAS BT across classes W, A, B, C, reproduces the two IPC trend
families of Figure 10, then goes one step past the paper: fits trend
models to the tracked series and *predicts* the IPC of a hypothetical
larger class (the paper's "foresee the performance of experiments
beyond the sample space" future work).

Usage::

    python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ParametricStudy
from repro.apps.nasbt import CLASS_GRID
from repro.clustering import FrameSettings
from repro.predict import extrapolate_trends
from repro.tracking import compute_trends
from repro.viz import ascii_trend

CLASSES = ("W", "A", "B", "C")


def main() -> None:
    study = ParametricStudy(
        app="nas-bt",
        scenarios=tuple({"problem_class": c} for c in CLASSES),
        settings=FrameSettings(log_y=True, relevance=0.97),
    )
    result = study.run(seed=0)
    print(f"tracked {result.n_tracked} regions at {result.coverage}% coverage\n")

    series = compute_trends(result.result, "ipc")
    print(ascii_trend(
        [(f"r{s.region_id}", s.values) for s in series],
        x_labels=CLASSES,
        title="NAS BT: IPC per problem class",
    ))

    print("\nTrend families:")
    for s in series:
        steps = s.step_changes()
        family = ("sharp W->A drop, then stable"
                  if abs(steps[1]) < 0.05 else "keeps declining until B")
        print(f"  Region {s.region_id}: {family} "
              f"({' '.join(f'{100 * c:+.0f}%' for c in steps)})")

    # Prediction beyond the sample space: a hypothetical 4x class D.
    grid_sizes = np.asarray([CLASS_GRID[c] ** 3 for c in CLASSES], dtype=float)
    class_d_cells = float(CLASS_GRID["C"] ** 3 * 4)
    forecasts = extrapolate_trends(series, grid_sizes, [class_d_cells])
    print("\nPredicted IPC for a 4x-larger 'class D':")
    for forecast in forecasts:
        observed_c = forecast.y_observed[-1]
        predicted = float(forecast.y_predicted[0])
        print(f"  Region {forecast.region_id}: {observed_c:.3f} (C) -> "
              f"{predicted:.3f} (D)  [{type(forecast.model).__name__}]")
        # The saturated regions should stay put: the model has learnt
        # the plateau.


if __name__ == "__main__":
    main()
