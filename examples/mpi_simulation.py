#!/usr/bin/env python3
"""Trace a *program* instead of a declarative model.

Real tracing tools intercept MPI programs; :mod:`repro.mpisim` provides
the same experience offline.  This example writes a small 1-D stencil
as a per-rank generator, runs it through the discrete-event simulator
under two problem sizes, and tracks the resulting traces — including
the who-is-who report with the evaluator evidence.

Usage::

    python examples/mpi_simulation.py
"""

from __future__ import annotations

from repro import quick_track
from repro.machine.perfmodel import WorkloadPoint
from repro.mpisim import MPISimulator
from repro.tracking import compute_trends, who_is_who


def heat_equation(cells_per_rank: float, working_set: float):
    """A hand-written halo-exchange stencil program."""
    interior = WorkloadPoint(
        work_units=cells_per_rank,
        instructions_per_unit=48.0,
        memory_accesses_per_unit=1.1,
        working_set_bytes=working_set,
    )
    boundary = WorkloadPoint(
        work_units=cells_per_rank * 0.1,
        instructions_per_unit=62.0,
        memory_accesses_per_unit=0.5,
        working_set_bytes=working_set / 8,
    )

    def program(rank, mpi):
        left = (rank - 1) % mpi.nranks
        right = (rank + 1) % mpi.nranks
        for _step in range(6):
            yield mpi.compute("apply_boundary", boundary)
            yield mpi.sendrecv(dest=right, src=left, nbytes=4096)
            yield mpi.sendrecv(dest=left, src=right, nbytes=4096)
            yield mpi.compute("update_interior", interior)
            yield mpi.allreduce(8)  # convergence check

    return program


def main() -> None:
    traces = []
    for index, size in enumerate((256, 1024)):  # grid cells per rank (KiB ws)
        sim = MPISimulator(nranks=8, app="heat2d", scenario={"size": size})
        program = heat_equation(
            cells_per_rank=size * 400.0, working_set=size * 1024.0
        )
        trace = sim.run(program, seed=index)
        traces.append(trace)
        print(f"simulated size={size}: {trace.n_bursts} bursts, "
              f"makespan {trace.makespan * 1e3:.2f} ms")

    result = quick_track(traces)
    print()
    print(who_is_who(result))

    print("\nIPC trends:")
    for s in compute_trends(result, "ipc"):
        print(f"  Region {s.region_id}: {s.values[0]:.3f} -> {s.values[1]:.3f} "
              f"({100 * s.pct_change_total():+.1f}%)")
    print("\nThe interior update loses IPC as the working set outgrows L2;"
          "\nthe boundary region barely moves — exactly the kind of insight"
          "\nthe paper extracts from WRF and NAS BT.")


if __name__ == "__main__":
    main()
