#!/usr/bin/env python3
"""Platform-and-compiler study (paper section 4.1, Table 3).

Runs CGPOP on both machine models with a generic and a vendor compiler,
tracks the regions across the four scenarios and reproduces the paper's
headline observation: vendor compilers execute ~30-36 % fewer
instructions at proportionally lower IPC, leaving wall time unchanged.

Usage::

    python examples/compiler_study.py
"""

from __future__ import annotations

from repro.analysis import ParametricStudy, table3_report
from repro.tracking import compute_trends


def main() -> None:
    study = ParametricStudy(
        app="cgpop",
        scenarios=(
            {"machine": "MareNostrum", "compiler": "gfortran"},
            {"machine": "MareNostrum", "compiler": "xlf"},
            {"machine": "MinoTauro", "compiler": "gfortran"},
            {"machine": "MinoTauro", "compiler": "ifort"},
        ),
    )
    result = study.run(seed=0)
    print(f"tracked {result.n_tracked} regions, coverage {result.coverage}% "
          f"(the MinoTauro IPC split groups two objects into Region 2)\n")

    text, rows = table3_report(result)
    print(text)

    print("\nCompiler impact per region:")
    for row in rows:
        instr = row["instructions"]
        ipc = row["ipc"]
        dur = row["duration_per_process"]
        print(f"  Region {row['region']}:")
        print(f"    xlf   vs gfortran (MareNostrum): instructions "
              f"{100 * (instr[1] / instr[0] - 1):+.0f}%, IPC "
              f"{100 * (ipc[1] / ipc[0] - 1):+.0f}%, time "
              f"{100 * (dur[1] / dur[0] - 1):+.2f}%")
        print(f"    ifort vs gfortran (MinoTauro):   instructions "
              f"{100 * (instr[3] / instr[2] - 1):+.0f}%, IPC "
              f"{100 * (ipc[3] / ipc[2] - 1):+.0f}%, time "
              f"{100 * (dur[3] / dur[2] - 1):+.2f}%")

    print("\nConclusion (as in the paper): the compiler choice changes the"
          "\ncomputational encoding of the work but not the execution time —"
          "\nthe regions are memory-bound, so fewer instructions just wait"
          "\nlonger per instruction.")


if __name__ == "__main__":
    main()
