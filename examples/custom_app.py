#!/usr/bin/env python3
"""Define your own application model and study its evolution over time.

Shows the full extension surface of the library:

1. build a custom :class:`AppModel` from scratch (regions, modes,
   imbalance, drift) instead of using the shipped paper workloads;
2. persist the trace to disk and reload it (the CLI-compatible format);
3. slice one long run into time windows and track *within* the single
   experiment — the paper's evolutionary analysis mode;
4. forecast where the drifting region is heading.

Usage::

    python examples/custom_app.py
"""

from __future__ import annotations

from pathlib import Path

from repro import quick_track
from repro.apps.base import AppModel, Mode, RegionSpec
from repro.machine.machine import MINOTAURO
from repro.machine.perfmodel import WorkloadPoint
from repro.predict import extrapolate_trends
from repro.tracking import compute_trends
from repro.trace import CallPath, load_trace, save_trace
from repro.trace.filters import filter_time_window  # noqa: F401  (shown in docs)

OUTPUT = Path(__file__).parent / "output"


def build_model() -> AppModel:
    """A made-up solver with three phases; one leaks performance."""
    assemble = RegionSpec(
        name="assemble",
        callpath=CallPath.single("assemble_matrix", "assembly.c", 120),
        point=WorkloadPoint(
            work_units=4e5,
            instructions_per_unit=60.0,
            memory_accesses_per_unit=0.6,
            working_set_bytes=48 * 1024,
        ),
        imbalance=0.15,
    )
    solve = RegionSpec(
        name="solve",
        callpath=CallPath.single("cg_solve", "solver.c", 88),
        point=WorkloadPoint(
            work_units=9e5,
            instructions_per_unit=55.0,
            memory_accesses_per_unit=1.2,
            working_set_bytes=2 * 1024 * 1024,
            core_cpi_scale=1.2,
        ),
        # The solver slows down over the run: a performance leak the
        # evolutionary analysis should expose.
        cpi_drift_per_iter=0.012,
    )
    postprocess = RegionSpec(
        name="postprocess",
        callpath=CallPath.single("write_vtk", "io.c", 45),
        point=WorkloadPoint(
            work_units=1.5e5,
            instructions_per_unit=70.0,
            memory_accesses_per_unit=0.3,
            working_set_bytes=16 * 1024,
            core_cpi_scale=0.9,
        ),
        modes=(Mode(weight=0.75), Mode(weight=0.25, work_scale=1.6)),
    )
    return AppModel(
        name="MySolver",
        nranks=16,
        regions=(assemble, solve, postprocess),
        iterations=24,
        machine=MINOTAURO,
        scenario={"case": "leaky-solver"},
    )


def main() -> None:
    model = build_model()
    trace = model.run(seed=42)
    print(f"simulated {trace.label()}: {trace.n_bursts} bursts, "
          f"{trace.makespan:.3f}s makespan")

    # Persist and reload — byte-exact round trip.
    path = save_trace(trace, OUTPUT / "mysolver.json.gz")
    reloaded = load_trace(path)
    assert reloaded == trace
    print(f"saved and reloaded {path}")

    # Evolutionary analysis: six time windows of the same run.
    from repro.apps.nasft import window_traces

    windows = window_traces(reloaded, 6)
    result = quick_track(windows)
    print(f"\ntracked {len(result.tracked_regions)} regions across "
          f"{result.n_frames} time windows, coverage {result.coverage}%")

    series = compute_trends(result, "ipc")
    print("\nIPC per window:")
    for s in series:
        rendered = " ".join(f"{v:.3f}" for v in s.values)
        print(f"  Region {s.region_id}: {rendered} "
              f"({100 * s.pct_change_total():+.1f}%)")

    leaky = min(series, key=lambda s: s.pct_change_total())
    print(f"\nRegion {leaky.region_id} is leaking performance "
          f"({100 * leaky.pct_change_total():+.1f}% IPC over the run).")

    forecasts = extrapolate_trends([leaky], None, [8.0, 11.0])
    forecast = forecasts[0]
    print("If the trend continues, its IPC two and five windows from now: "
          + ", ".join(f"{v:.3f}" for v in forecast.y_predicted))


if __name__ == "__main__":
    main()
