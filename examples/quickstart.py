#!/usr/bin/env python3
"""Quickstart: track a synthetic application across two scenarios.

Runs WRF (the paper's running example) at two task counts, clusters the
CPU bursts of each run into performance-space objects, tracks the
objects across the scenarios and prints the per-region IPC trends —
the whole pipeline in ~20 lines of user code.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import apps, quick_track
from repro.clustering import FrameSettings
from repro.tracking import compute_trends, top_variations
from repro.viz import ascii_scatter


def main() -> None:
    # 1. Two execution scenarios of the same application.
    traces = [
        apps.wrf.build(ranks=32, iterations=4, base_ranks=32).run(seed=1),
        apps.wrf.build(ranks=64, iterations=4, base_ranks=32).run(seed=2),
    ]
    print(f"simulated {traces[0].label()} ({traces[0].n_bursts} bursts) and "
          f"{traces[1].label()} ({traces[1].n_bursts} bursts)")

    # 2. Cluster + track in one call.
    result = quick_track(traces, settings=FrameSettings(relevance=0.995))
    print(f"\ntracked {len(result.tracked_regions)} regions across "
          f"{result.n_frames} frames at {result.coverage}% coverage")
    for region in result.tracked_regions:
        print(f"  {region!r}")

    # 3. Look at one frame.
    frame = result.frames[0]
    print()
    print(ascii_scatter(frame.points, frame.labels, title=frame.label,
                        x_label="IPC", y_label="instructions", height=14))

    # 4. Which regions changed the most?
    series = compute_trends(result, "ipc")
    print("\nIPC trends (regions varying more than 3%):")
    for s in top_variations(series, min_variation=0.03):
        print(f"  Region {s.region_id}: {s.values[0]:.3f} -> {s.values[1]:.3f}"
              f"  ({100 * s.pct_change_total():+.1f}%)")


if __name__ == "__main__":
    main()
