"""SPMD structure analysis on top of multiple sequence alignment.

Given the per-rank cluster sequences of one experiment aligned into a
global sequence, three questions matter to the tracker:

- **How SPMD is the application?**  :func:`spmdiness_score` measures the
  agreement of the alignment columns; 1.0 means every rank executes the
  same cluster at every logical step.
- **Which clusters run simultaneously?**  :func:`simultaneity_matrix`
  estimates, for every cluster pair, the probability of co-occurring in
  the same alignment column on different ranks — the paper's second
  evaluator feeds on this.
- **What is the canonical phase order?**  :func:`consensus_sequence`
  collapses the alignment into one representative sequence per
  experiment for the execution-sequence evaluator.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.msa import MultipleAlignment
from repro.alignment.pairwise import GAP
from repro.errors import AlignmentError

__all__ = ["spmdiness_score", "simultaneity_matrix", "consensus_sequence"]


def spmdiness_score(alignment: MultipleAlignment) -> float:
    """Fraction of non-gap cells agreeing with their column's majority.

    A perfectly SPMD application — every rank executing the same phase at
    every step — scores 1.0.  Divergent control flow, imbalance-induced
    cluster splits and alignment gaps all pull the score down.
    """
    matrix = alignment.matrix
    if matrix.size == 0:
        return 0.0
    agree = 0
    total = 0
    for col in range(matrix.shape[1]):
        column = matrix[:, col]
        present = column[column != GAP]
        if present.size == 0:
            continue
        values, counts = np.unique(present, return_counts=True)
        agree += int(counts.max())
        total += int(present.size)
    return agree / total if total else 0.0


def simultaneity_matrix(
    alignment: MultipleAlignment, cluster_ids: tuple[int, ...]
) -> np.ndarray:
    """Probability of cluster pairs executing simultaneously.

    For clusters *i* and *j*, the entry is::

        P(i, j) = columns containing both i and j / columns containing i

    (rows are conditioned on the row cluster, so the matrix is not
    symmetric when cluster frequencies differ).  The diagonal is 1 for
    every cluster that appears at all.

    Parameters
    ----------
    alignment:
        The per-rank global alignment of one experiment.
    cluster_ids:
        Cluster ids to index the matrix with (matrix row/column *k*
        corresponds to ``cluster_ids[k]``).
    """
    if not cluster_ids:
        raise AlignmentError("cluster_ids must not be empty")
    index = {cid: k for k, cid in enumerate(cluster_ids)}
    n = len(cluster_ids)
    appears = np.zeros(n, dtype=np.int64)
    together = np.zeros((n, n), dtype=np.int64)
    matrix = alignment.matrix
    for col in range(matrix.shape[1]):
        column = matrix[:, col]
        present = np.unique(column[column != GAP])
        known = [index[c] for c in present if c in index]
        for i in known:
            appears[i] += 1
            for j in known:
                together[i, j] += 1
    out = np.zeros((n, n), dtype=np.float64)
    nonzero = appears > 0
    out[nonzero, :] = together[nonzero, :] / appears[nonzero, None]
    return out


def consensus_sequence(alignment: MultipleAlignment) -> np.ndarray:
    """Column-majority sequence of the alignment (gap columns dropped).

    The consensus is the representative "execution sequence" of the
    experiment: the chronological order of its phases as executed by the
    majority of ranks.
    """
    matrix = alignment.matrix
    consensus: list[int] = []
    for col in range(matrix.shape[1]):
        column = matrix[:, col]
        present = column[column != GAP]
        if present.size == 0:
            continue
        values, counts = np.unique(present, return_counts=True)
        consensus.append(int(values[np.argmax(counts)]))
    return np.asarray(consensus, dtype=np.int64)
