"""Star-based multiple sequence alignment.

The SPMD evaluator needs all per-rank cluster sequences of one
experiment aligned into a common set of columns ("the global sequence"
of Gonzalez et al., PDCAT'09).  Full dynamic-programming MSA is
exponential; the classic star heuristic — align every sequence against
a centre sequence and merge under "once a gap, always a gap" — is
accurate here because SPMD phase sequences are near-identical across
ranks by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alignment.memo import memoised_align
from repro.alignment.pairwise import GAP
from repro.errors import AlignmentError

__all__ = ["MultipleAlignment", "star_align"]


@dataclass(frozen=True, slots=True)
class MultipleAlignment:
    """A multiple alignment as a dense matrix.

    Attributes
    ----------
    matrix:
        ``(n_sequences, n_columns)`` integer matrix with :data:`GAP`
        sentinels where a sequence skips a column.
    keys:
        Identifier of each row (e.g. MPI ranks), parallel to the rows.
    """

    matrix: np.ndarray
    keys: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.matrix.ndim != 2:
            raise AlignmentError("alignment matrix must be 2-D")
        if self.matrix.shape[0] != len(self.keys):
            raise AlignmentError("one key per alignment row is required")

    @property
    def n_sequences(self) -> int:
        """Number of aligned sequences."""
        return int(self.matrix.shape[0])

    @property
    def n_columns(self) -> int:
        """Number of alignment columns."""
        return int(self.matrix.shape[1])

    def row(self, key: int) -> np.ndarray:
        """Return the aligned row of sequence *key*."""
        try:
            index = self.keys.index(key)
        except ValueError as exc:
            raise KeyError(f"no sequence with key {key}") from exc
        return self.matrix[index]

    def column_symbols(self, column: int) -> np.ndarray:
        """Distinct non-gap symbols present in *column*."""
        col = self.matrix[:, column]
        return np.unique(col[col != GAP])


def _merge_center(
    center: np.ndarray, aligned_center: np.ndarray, rows: list[np.ndarray]
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Insert new gap columns implied by *aligned_center* into existing rows.

    ``aligned_center`` is the centre as it came out of the latest
    pairwise alignment; wherever it contains a gap, a gap column must be
    inserted into the already-merged rows ("once a gap, always a gap").
    Returns the updated centre (with all accumulated gaps) and rows.
    """
    gap_positions = np.flatnonzero(aligned_center == GAP)
    if gap_positions.size == 0:
        return center, rows
    # Positions are indices in the *new* alignment; insert one by one in
    # ascending order so earlier insertions shift later ones correctly.
    new_center = center
    new_rows = rows
    for pos in gap_positions:
        new_center = np.insert(new_center, pos, GAP)
        new_rows = [np.insert(row, pos, GAP) for row in new_rows]
    return new_center, new_rows


def star_align(
    sequences: dict[int, np.ndarray],
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> MultipleAlignment:
    """Align all *sequences* (keyed by rank) with the star heuristic.

    The centre is the longest sequence (ties broken by smallest key),
    a sensible proxy for the centre-star choice given the near-identical
    SPMD inputs.  Every other sequence is pairwise-aligned against the
    *current* merged centre, so gaps accumulate consistently.
    """
    if not sequences:
        raise AlignmentError("star_align needs at least one sequence")
    keys = sorted(sequences)
    arrays = {k: np.asarray(sequences[k], dtype=np.int64) for k in keys}
    for key, arr in arrays.items():
        if arr.ndim != 1:
            raise AlignmentError(f"sequence {key} must be 1-D")

    center_key = max(keys, key=lambda k: (arrays[k].shape[0], -k))
    center = arrays[center_key]
    merged_rows: list[np.ndarray] = []
    merged_keys: list[int] = []

    for key in keys:
        if key == center_key:
            continue
        seq = arrays[key]
        alignment = memoised_align(
            center[center != GAP] if (center == GAP).any() else center,
            seq,
            match=match,
            mismatch=mismatch,
            gap=gap,
        )
        # Re-express the pairwise alignment on the merged centre, which
        # may already contain gaps: walk both centre forms in lockstep.
        new_row = _project_onto_center(center, alignment.aligned_a, alignment.aligned_b)
        if new_row.shape[0] != center.shape[0]:
            # The pairwise alignment introduced new centre gaps: grow the
            # merged centre and previously merged rows accordingly.
            center, merged_rows, new_row = _regrow(
                center, alignment.aligned_a, alignment.aligned_b, merged_rows
            )
        merged_rows.append(new_row)
        merged_keys.append(key)

    matrix_rows = []
    ordered_keys = []
    merged_map = dict(zip(merged_keys, merged_rows))
    for key in keys:
        ordered_keys.append(key)
        if key == center_key:
            matrix_rows.append(center)
        else:
            matrix_rows.append(merged_map[key])
    return MultipleAlignment(
        matrix=np.vstack(matrix_rows), keys=tuple(ordered_keys)
    )


def _project_onto_center(
    merged_center: np.ndarray, aligned_center: np.ndarray, aligned_seq: np.ndarray
) -> np.ndarray:
    """Map *aligned_seq* onto the merged centre's column layout.

    Walks the merged centre and the pairwise-aligned centre together:
    merged-centre gap columns receive gaps; matching symbol positions
    receive the corresponding aligned-sequence entries.  If the pairwise
    alignment put gaps into the centre (new columns), the projection
    cannot fit and the caller falls back to :func:`_regrow`.
    """
    if (aligned_center == GAP).any():
        # Signal the caller that the centre itself grew.
        return np.empty(0, dtype=np.int64)
    out = np.full(merged_center.shape[0], GAP, dtype=np.int64)
    pair_pos = 0
    for col in range(merged_center.shape[0]):
        if merged_center[col] == GAP:
            continue
        out[col] = aligned_seq[pair_pos]
        pair_pos += 1
    return out


def _regrow(
    merged_center: np.ndarray,
    aligned_center: np.ndarray,
    aligned_seq: np.ndarray,
    merged_rows: list[np.ndarray],
) -> tuple[np.ndarray, list[np.ndarray], np.ndarray]:
    """Handle pairwise alignments that inserted gaps into the centre.

    Builds the new merged centre by interleaving the existing merged
    layout with the new gap columns, padding previously merged rows with
    gaps in those columns, and expressing the new row in the new layout.
    """
    new_center: list[int] = []
    new_rows: list[list[int]] = [[] for _ in merged_rows]
    new_row: list[int] = []
    merged_pos = 0  # position within merged_center
    for pair_pos in range(aligned_center.shape[0]):
        if aligned_center[pair_pos] == GAP:
            # Brand-new column: gap everywhere except the new sequence.
            new_center.append(GAP)
            for row_out in new_rows:
                row_out.append(GAP)
            new_row.append(int(aligned_seq[pair_pos]))
            continue
        # Copy any merged-centre gap columns that precede this symbol.
        while merged_center[merged_pos] == GAP:
            new_center.append(GAP)
            for row_out, row in zip(new_rows, merged_rows):
                row_out.append(int(row[merged_pos]))
            new_row.append(GAP)
            merged_pos += 1
        new_center.append(int(merged_center[merged_pos]))
        for row_out, row in zip(new_rows, merged_rows):
            row_out.append(int(row[merged_pos]))
        new_row.append(int(aligned_seq[pair_pos]))
        merged_pos += 1
    # Trailing merged gap columns.
    while merged_pos < merged_center.shape[0]:
        new_center.append(int(merged_center[merged_pos]))
        for row_out, row in zip(new_rows, merged_rows):
            row_out.append(int(row[merged_pos]))
        new_row.append(GAP)
        merged_pos += 1
    return (
        np.asarray(new_center, dtype=np.int64),
        [np.asarray(row, dtype=np.int64) for row in new_rows],
        np.asarray(new_row, dtype=np.int64),
    )
