"""Content-keyed memo for pairwise alignments.

The tracking pipeline aligns the *same* sequences over and over: the
star MSA aligns its centre against 64 near-identical rank sequences,
consensus sequences recur across frame pairs, and windowed runs replay
whole frames.  Since :func:`repro.alignment.pairwise.global_align` is a
pure function of (sequence bytes, scoring scheme), its results can be
shared globally through a bounded LRU keyed on content.

Memoised results are returned with read-only arrays — they are shared
between callers, so an in-place edit by one would corrupt the others.
All existing consumers only read them.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

import numpy as np

from repro import obs
from repro.alignment.pairwise import Alignment, global_align

__all__ = ["memoised_align", "align_memo_info", "clear_align_memo"]

#: Entries kept in the LRU.  Alignments are small (a few KiB each), so
#: this bounds the memo at a few MiB while covering every sequence a
#: realistic multi-frame run can produce.
_MAX_ENTRIES = 1024

_lock = Lock()
_memo: OrderedDict[tuple, Alignment] = OrderedDict()
_hits = 0
_misses = 0


def memoised_align(
    seq_a: np.ndarray,
    seq_b: np.ndarray,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> Alignment:
    """:func:`global_align`, cached on (content, scoring scheme)."""
    global _hits, _misses
    a = np.ascontiguousarray(seq_a, dtype=np.int64)
    b = np.ascontiguousarray(seq_b, dtype=np.int64)
    key = (a.tobytes(), b.tobytes(), match, mismatch, gap)
    with _lock:
        cached = _memo.get(key)
        if cached is not None:
            _memo.move_to_end(key)
            _hits += 1
            if obs.enabled():
                obs.count("alignment.memo.hit")
            return cached
        _misses += 1
    if obs.enabled():
        obs.count("alignment.memo.miss")
    alignment = global_align(a, b, match=match, mismatch=mismatch, gap=gap)
    alignment.aligned_a.setflags(write=False)
    alignment.aligned_b.setflags(write=False)
    with _lock:
        _memo[key] = alignment
        while len(_memo) > _MAX_ENTRIES:
            _memo.popitem(last=False)
    return alignment


def align_memo_info() -> dict[str, int]:
    """Current memo statistics (entries, hits, misses)."""
    with _lock:
        return {"entries": len(_memo), "hits": _hits, "misses": _misses}


def clear_align_memo() -> None:
    """Drop all cached alignments and reset the counters."""
    global _hits, _misses
    with _lock:
        _memo.clear()
        _hits = 0
        _misses = 0
