"""Global pairwise sequence alignment (Needleman-Wunsch).

Sequences here are integer arrays of cluster ids.  The scoring is the
classic match / mismatch / linear-gap scheme.  The DP fill is fully
vectorised: the in-row "gap from the left" dependency is a max-plus
prefix scan, so each row is computed with ``np.maximum.accumulate``
instead of a Python inner loop — rows of several thousand symbols cost
microseconds, keeping the per-rank alignments of large frames cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError

__all__ = ["GAP", "Alignment", "global_align"]


def _close(a: float, b: float) -> bool:
    """Float equality with a small tolerance for the DP backtrack.

    The score table is filled with a vectorised max-plus scan while the
    backtrack recomputes candidate scores scalar-by-scalar; with exact
    ``==`` a pathological scoring scheme (e.g. irrational penalties)
    can disagree in the last ulp and dead-end the walk.
    """
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

#: Sentinel stored in aligned sequences where a gap was inserted.
GAP = -1


@dataclass(frozen=True, slots=True)
class Alignment:
    """Result of a global pairwise alignment.

    Attributes
    ----------
    aligned_a / aligned_b:
        Equal-length arrays over the original alphabets with :data:`GAP`
        sentinels inserted.
    score:
        Total alignment score.
    """

    aligned_a: np.ndarray
    aligned_b: np.ndarray
    score: float

    def __post_init__(self) -> None:
        if self.aligned_a.shape != self.aligned_b.shape:
            raise AlignmentError("aligned sequences must have equal length")

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return int(self.aligned_a.shape[0])

    def matches(self) -> int:
        """Number of columns where both sides carry the same symbol."""
        both = (self.aligned_a != GAP) & (self.aligned_b != GAP)
        return int(np.count_nonzero(self.aligned_a[both] == self.aligned_b[both]))

    def identity(self) -> float:
        """Matches over alignment length (0 for empty alignments)."""
        return self.matches() / self.length if self.length else 0.0

    def pairs(self) -> list[tuple[int, int]]:
        """Aligned (a_value, b_value) pairs for the non-gap columns."""
        both = (self.aligned_a != GAP) & (self.aligned_b != GAP)
        return list(zip(self.aligned_a[both].tolist(), self.aligned_b[both].tolist()))


def global_align(
    seq_a: np.ndarray,
    seq_b: np.ndarray,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> Alignment:
    """Needleman-Wunsch global alignment of two integer sequences.

    Parameters
    ----------
    seq_a, seq_b:
        1-D integer sequences (cluster ids).  :data:`GAP` (-1) must not
        appear in the inputs.
    match, mismatch, gap:
        Scoring scheme.  Defaults favour contiguous matches, which suits
        the highly repetitive phase sequences of iterative SPMD codes.
    """
    if gap >= 0:
        raise AlignmentError(f"gap penalty must be negative, got {gap}")
    a = np.asarray(seq_a, dtype=np.int64)
    b = np.asarray(seq_b, dtype=np.int64)
    if a.ndim != 1 or b.ndim != 1:
        raise AlignmentError("sequences must be 1-D")
    if (a == GAP).any() or (b == GAP).any():
        raise AlignmentError(f"sequences must not contain the gap sentinel {GAP}")
    n, m = a.shape[0], b.shape[0]

    score = np.empty((n + 1, m + 1), dtype=np.float64)
    score[0, :] = gap * np.arange(m + 1)
    score[1:, 0] = gap * np.arange(1, n + 1)

    # Vectorised fill.  Within a row the "gap from the left" recurrence
    #   row[j] = max(cand[j], row[j-1] + gap)
    # expands to row[j] = max_{k<=j}(c[k] + (j-k)*gap), a max-plus prefix
    # scan computed by accumulating c[k] - k*gap.
    j_gap = gap * np.arange(m + 1)
    for i in range(1, n + 1):
        prev = score[i - 1]
        sub = np.where(a[i - 1] == b, match, mismatch)
        cand = np.maximum(prev[:-1] + sub, prev[1:] + gap)
        c = np.empty(m + 1)
        c[0] = score[i, 0]
        c[1:] = cand
        score[i, 1:] = (np.maximum.accumulate(c - j_gap) + j_gap)[1:]

    # Backtrack, recomputing directions from the score table with the
    # preference order diag > up > left.  Score comparisons use a small
    # tolerance, and each border forces the only legal move, so the
    # walk always terminates: every iteration decrements i or j and
    # neither goes negative.
    out_a: list[int] = []
    out_b: list[int] = []
    i, j = n, m
    while i > 0 or j > 0:
        current = score[i, j]
        if i > 0 and j > 0:
            sub = match if a[i - 1] == b[j - 1] else mismatch
            if _close(current, score[i - 1, j - 1] + sub):
                out_a.append(int(a[i - 1]))
                out_b.append(int(b[j - 1]))
                i -= 1
                j -= 1
                continue
        if i > 0 and (j == 0 or _close(current, score[i - 1, j] + gap)):
            out_a.append(int(a[i - 1]))
            out_b.append(GAP)
            i -= 1
            continue
        out_a.append(GAP)
        out_b.append(int(b[j - 1]))
        j -= 1
    return Alignment(
        aligned_a=np.asarray(out_a[::-1], dtype=np.int64),
        aligned_b=np.asarray(out_b[::-1], dtype=np.int64),
        score=float(score[n, m]),
    )
