"""Global pairwise sequence alignment (Needleman-Wunsch).

Sequences here are integer arrays of cluster ids.  The scoring is the
classic match / mismatch / linear-gap scheme.  Two engines produce
bit-identical results:

- :func:`global_align_reference` — the full ``(n+1) x (m+1)`` table.
  The fill is vectorised (the in-row "gap from the left" dependency is
  a max-plus prefix scan via ``np.maximum.accumulate``), the backtrack
  scalar with the preference order diag > up > left.  Kept as the
  executable specification the property suite checks against.
- :func:`global_align` — the production engine: a *banded* fill over a
  verified diagonal corridor with checkpointed linear-memory
  backtracking, plus an identical-sequence fast path.  Falls back to
  the full table for tiny problems, non-integral scoring schemes, or
  bands that grow to cover the whole table.

Banding
-------
The trace sequences this package aligns are near-identical phase
streams, so the optimal path hugs the corridor of diagonal offsets
``c = j - i`` between 0 and ``m - n``.  The band starts that corridor
widened by :data:`_MIN_BAND` and doubles until *proved* sufficient: any
path through offset ``c`` needs at least ``G(c) = |c| + |c - (m - n)|``
gap moves, so its score is at most

    ``U(c) = max(p_max * s_max + (n + m - 2 p_max) * gap, (n+m) * gap)``

with ``p_max = (n + m - G(c)) // 2`` and ``s_max = max(match,
mismatch)``.  When ``U`` at both band edges is strictly below the
banded optimum, **no optimal path touches the band edge**, hence every
cell the backtrack visits (all on optimal paths) and every predecessor
it compares against carries exactly the full-table value, and the walk
reproduces the reference alignment move for move.

That argument needs exact arithmetic, so the banded engine only runs
for integral scoring schemes (the default ``2 / -1 / -2`` included):
every DP value is then an exact small integer in float64 and the
reference's ``(c - j*gap) + j*gap`` round-trips are lossless.

Linear memory
-------------
Large fills keep only every ``K ~ sqrt(n)``-th banded row; the
backtrack regenerates one ``K``-row block at a time (a row depends
only on its predecessor, so regenerated rows are trivially
bit-identical).  This is Hirschberg's memory bound without Hirschberg's
divide-and-conquer, which cannot reproduce the diag > up > left
tie-break path of the reference backtrack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError

__all__ = ["GAP", "Alignment", "global_align", "global_align_reference"]


def _close(a: float, b: float) -> bool:
    """Float equality with a small tolerance for the DP backtrack.

    The score table is filled with a vectorised max-plus scan while the
    backtrack recomputes candidate scores scalar-by-scalar; with exact
    ``==`` a pathological scoring scheme (e.g. irrational penalties)
    can disagree in the last ulp and dead-end the walk.
    """
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

#: Sentinel stored in aligned sequences where a gap was inserted.
GAP = -1

#: Problems with at most this many table cells use the full fill — at
#: that size the banded machinery costs more than it saves.
_FULL_FILL_CELLS = 16_384

#: Initial band half-width beyond the [0, m - n] diagonal corridor.
_MIN_BAND = 16

#: Banded fills with at most this many cells keep every row; larger
#: ones switch to sqrt(n)-spaced checkpoints and block regeneration.
_CHECKPOINT_CELLS = 4_000_000


@dataclass(frozen=True, slots=True)
class Alignment:
    """Result of a global pairwise alignment.

    Attributes
    ----------
    aligned_a / aligned_b:
        Equal-length arrays over the original alphabets with :data:`GAP`
        sentinels inserted.
    score:
        Total alignment score.
    """

    aligned_a: np.ndarray
    aligned_b: np.ndarray
    score: float

    def __post_init__(self) -> None:
        if self.aligned_a.shape != self.aligned_b.shape:
            raise AlignmentError("aligned sequences must have equal length")

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return int(self.aligned_a.shape[0])

    def matches(self) -> int:
        """Number of columns where both sides carry the same symbol."""
        both = (self.aligned_a != GAP) & (self.aligned_b != GAP)
        return int(np.count_nonzero(self.aligned_a[both] == self.aligned_b[both]))

    def identity(self) -> float:
        """Matches over alignment length (0 for empty alignments)."""
        return self.matches() / self.length if self.length else 0.0

    def pairs(self) -> list[tuple[int, int]]:
        """Aligned (a_value, b_value) pairs for the non-gap columns."""
        both = (self.aligned_a != GAP) & (self.aligned_b != GAP)
        return list(zip(self.aligned_a[both].tolist(), self.aligned_b[both].tolist()))


def _validated(seq_a: np.ndarray, seq_b: np.ndarray, gap: float):
    if gap >= 0:
        raise AlignmentError(f"gap penalty must be negative, got {gap}")
    a = np.asarray(seq_a, dtype=np.int64)
    b = np.asarray(seq_b, dtype=np.int64)
    if a.ndim != 1 or b.ndim != 1:
        raise AlignmentError("sequences must be 1-D")
    if (a == GAP).any() or (b == GAP).any():
        raise AlignmentError(f"sequences must not contain the gap sentinel {GAP}")
    return a, b


def _walk(score_at, a, b, match: float, mismatch: float, gap: float):
    """Backtrack with the preference order diag > up > left.

    Directions are recomputed from table lookups; each border forces
    the only legal move, so the walk always terminates: every iteration
    decrements ``i`` or ``j`` and neither goes negative.
    """
    out_a: list[int] = []
    out_b: list[int] = []
    i, j = a.shape[0], b.shape[0]
    while i > 0 or j > 0:
        current = score_at(i, j)
        if i > 0 and j > 0:
            sub = match if a[i - 1] == b[j - 1] else mismatch
            if _close(current, score_at(i - 1, j - 1) + sub):
                out_a.append(int(a[i - 1]))
                out_b.append(int(b[j - 1]))
                i -= 1
                j -= 1
                continue
        if i > 0 and (j == 0 or _close(current, score_at(i - 1, j) + gap)):
            out_a.append(int(a[i - 1]))
            out_b.append(GAP)
            i -= 1
            continue
        out_a.append(GAP)
        out_b.append(int(b[j - 1]))
        j -= 1
    return (
        np.asarray(out_a[::-1], dtype=np.int64),
        np.asarray(out_b[::-1], dtype=np.int64),
    )


def _align_full(a, b, match: float, mismatch: float, gap: float) -> Alignment:
    n, m = a.shape[0], b.shape[0]
    score = np.empty((n + 1, m + 1), dtype=np.float64)
    score[0, :] = gap * np.arange(m + 1)
    score[1:, 0] = gap * np.arange(1, n + 1)

    # Vectorised fill.  Within a row the "gap from the left" recurrence
    #   row[j] = max(cand[j], row[j-1] + gap)
    # expands to row[j] = max_{k<=j}(c[k] + (j-k)*gap), a max-plus prefix
    # scan computed by accumulating c[k] - k*gap.
    j_gap = gap * np.arange(m + 1)
    for i in range(1, n + 1):
        prev = score[i - 1]
        sub = np.where(a[i - 1] == b, match, mismatch)
        cand = np.maximum(prev[:-1] + sub, prev[1:] + gap)
        c = np.empty(m + 1)
        c[0] = score[i, 0]
        c[1:] = cand
        score[i, 1:] = (np.maximum.accumulate(c - j_gap) + j_gap)[1:]

    aligned_a, aligned_b = _walk(
        lambda i, j: score[i, j], a, b, match, mismatch, gap
    )
    return Alignment(
        aligned_a=aligned_a, aligned_b=aligned_b, score=float(score[n, m])
    )


def global_align_reference(
    seq_a: np.ndarray,
    seq_b: np.ndarray,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> Alignment:
    """Full-table Needleman-Wunsch: the executable specification.

    :func:`global_align` must agree with this bit-for-bit (score and
    backtrack path); the property suite enforces that.
    """
    a, b = _validated(seq_a, seq_b, gap)
    return _align_full(a, b, match, mismatch, gap)


def _path_bound(c: int, n: int, m: int, s_max: float, gap: float) -> float:
    """Upper bound on the score of any path through diagonal offset *c*."""
    gaps = abs(c) + abs(c - (m - n))
    if gaps > n + m:
        return -np.inf
    p_max = (n + m - gaps) // 2
    return max(p_max * s_max + (n + m - 2 * p_max) * gap, (n + m) * gap)


class _BandTable:
    """Banded DP table over diagonal offsets ``c = j - i in [cmin, cmax]``.

    Rows are stored in *scan space* ``u[k] = score[i, j] - gap*j`` (the
    accumulate argument of the full fill), which makes the row
    recurrence three adds and two maxima over the band width.  All
    values are exact integers (the caller guarantees an integral
    scheme), so scan-space round-trips are lossless.
    """

    def __init__(self, a, b, match: float, mismatch: float, gap: float,
                 margin: int) -> None:
        n, m = a.shape[0], b.shape[0]
        self.a, self.b = a, b
        self.n, self.m = n, m
        self.match, self.mismatch, self.gap = match, mismatch, gap
        self.cmin = max(min(0, m - n) - margin, -n)
        self.cmax = min(max(0, m - n) + margin, m)
        self.width = self.cmax - self.cmin + 1
        self.full_cover = self.cmin == -n and self.cmax == m

        # Sliding templates along t = i + k (so j = t + cmin):
        # bpad[t] = b[j - 1] (sentinel where out of range), vpad[t] = 0
        # where 0 <= j <= m else -inf.
        span = n + self.width
        sentinel = np.int64(min(a.min(initial=0), b.min(initial=0)) - 1)
        self.bpad = np.full(span, sentinel)
        lo = max(0, 1 - self.cmin)
        hi = min(span, m + 1 - self.cmin)
        if lo < hi:
            self.bpad[lo:hi] = b[lo + self.cmin - 1:hi + self.cmin - 1]
        self.vpad = np.where(
            (np.arange(span) + self.cmin >= 0)
            & (np.arange(span) + self.cmin <= m),
            0.0,
            -np.inf,
        )

        self.stride = 0
        if (n + 1) * self.width > _CHECKPOINT_CELLS:
            self.stride = max(1, math.isqrt(n + 1))
        self._up = np.full(self.width, -np.inf)
        self.rows: dict[int, np.ndarray] = {}
        self.blocks: dict[int, list[np.ndarray]] = {}
        self._fill()

    def _row0(self) -> np.ndarray:
        return self.vpad[0:self.width].copy()

    def _advance(self, u: np.ndarray, i0: int, i1: int, collect) -> np.ndarray:
        """Rows ``i0..i1`` (inclusive) from *u* = row ``i0 - 1``.

        The substitution term is precomputed for the whole block (one
        vectorised compare over sliding windows of ``bpad``), keeping
        the sequential part of each row at four array ops.
        """
        w = self.width
        gap = self.gap
        windows = np.lib.stride_tricks.sliding_window_view(
            self.bpad, w
        )[i0:i1 + 1]
        subg = np.where(
            windows == self.a[i0 - 1:i1, None],
            self.match - gap,
            self.mismatch - gap,
        )
        up = self._up
        for idx, i in enumerate(range(i0, i1 + 1)):
            t = subg[idx] + u
            np.add(u[1:], gap, out=up[:-1])
            np.maximum(t, up, out=t)
            if i + self.cmin < 0 or i + w - 1 + self.cmin > self.m:
                t += self.vpad[i:i + w]
            k0 = -i - self.cmin  # left border column j == 0, if in band
            if 0 <= k0 < w:
                t[k0] = gap * i
            np.maximum.accumulate(t, out=t)
            u = t
            if collect is not None:
                collect(i, u)
        return u

    def _fill(self) -> None:
        u = self._row0()
        self.rows[0] = u
        if not self.stride:
            self._advance(u, 1, self.n, self.rows.__setitem__)
            return

        def keep(i: int, row: np.ndarray) -> None:
            if i % self.stride == 0 or i == self.n:
                self.rows[i] = row

        # Chunked so the per-block substitution table never exceeds
        # stride x width cells — the linear-memory bound.
        for base in range(1, self.n + 1, self.stride):
            u = self._advance(u, base, min(base + self.stride - 1, self.n), keep)

    def _urow(self, i: int) -> np.ndarray:
        row = self.rows.get(i)
        if row is not None:
            return row
        base = (i // self.stride) * self.stride
        block = self.blocks.get(base)
        if block is None:
            block = [self.rows[base]]
            self._advance(
                self.rows[base],
                base + 1,
                min(base + self.stride - 1, self.n),
                lambda _, row: block.append(row),
            )
            # The backtrack moves monotonically upward; anything below
            # the current block is dead.
            self.blocks = {base: block}
        return block[i - base]

    def score_at(self, i: int, j: int) -> float:
        k = j - i - self.cmin
        if not (0 <= k < self.width and 0 <= j <= self.m):
            return -np.inf
        return float(self._urow(i)[k] + self.gap * j)

    def proved(self, opt: float) -> bool:
        """No optimal path can touch either band edge (module docstring)."""
        s_max = max(self.match, self.mismatch)
        n, m, gap = self.n, self.m, self.gap
        return (
            self.cmin == -n or _path_bound(self.cmin, n, m, s_max, gap) < opt
        ) and (self.cmax == m or _path_bound(self.cmax, n, m, s_max, gap) < opt)


def global_align(
    seq_a: np.ndarray,
    seq_b: np.ndarray,
    *,
    match: float = 2.0,
    mismatch: float = -1.0,
    gap: float = -2.0,
) -> Alignment:
    """Needleman-Wunsch global alignment of two integer sequences.

    Parameters
    ----------
    seq_a, seq_b:
        1-D integer sequences (cluster ids).  :data:`GAP` (-1) must not
        appear in the inputs.
    match, mismatch, gap:
        Scoring scheme.  Defaults favour contiguous matches, which suits
        the highly repetitive phase sequences of iterative SPMD codes.

    Bit-identical to :func:`global_align_reference`; see the module
    docstring for the banding/fast-path arguments.
    """
    a, b = _validated(seq_a, seq_b, gap)
    n, m = a.shape[0], b.shape[0]
    integral = all(
        float(v).is_integer() for v in (match, mismatch, gap)
    )
    if (
        integral
        and n == m
        and match >= mismatch
        and match > 2 * gap
        and np.array_equal(a, b)
    ):
        # Identical sequences: the all-diagonal alignment is the unique
        # optimum ((n - p) * (match - 2*gap) > 0 for any p < n pairs),
        # and with exact arithmetic the backtrack follows it.
        return Alignment(
            aligned_a=a.copy(), aligned_b=b.copy(), score=float(match * n)
        )
    if not integral or (n + 1) * (m + 1) <= _FULL_FILL_CELLS or min(n, m) == 0:
        return _align_full(a, b, match, mismatch, gap)

    margin = _MIN_BAND
    while True:
        table = _BandTable(a, b, match, mismatch, gap, margin)
        if table.full_cover:
            return _align_full(a, b, match, mismatch, gap)
        opt = table.score_at(n, m)
        if table.proved(opt):
            break
        margin *= 2
    aligned_a, aligned_b = _walk(table.score_at, a, b, match, mismatch, gap)
    return Alignment(aligned_a=aligned_a, aligned_b=aligned_b, score=opt)
