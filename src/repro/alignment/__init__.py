"""Sequence alignment substrate.

Re-implements the machinery of *"Automatic evaluation of the computation
structure of parallel applications"* (Gonzalez et al., PDCAT'09), which
the paper uses twice:

- the **SPMD simultaneity** evaluator aligns the per-rank cluster
  sequences of one experiment to find which clusters execute at the
  same logical step in different ranks;
- the **execution sequence** evaluator aligns the consensus sequences of
  two experiments around known pivots to match remaining clusters.

The substrate offers classic Needleman-Wunsch global pairwise alignment
(:mod:`~repro.alignment.pairwise`), star-based multiple sequence
alignment (:mod:`~repro.alignment.msa`), and the SPMD measures built on
them (:mod:`~repro.alignment.spmd`).
"""

from __future__ import annotations

from repro.alignment.memo import (
    align_memo_info,
    clear_align_memo,
    memoised_align,
)
from repro.alignment.msa import MultipleAlignment, star_align
from repro.alignment.pairwise import (
    GAP,
    Alignment,
    global_align,
    global_align_reference,
)
from repro.alignment.spmd import (
    consensus_sequence,
    simultaneity_matrix,
    spmdiness_score,
)
from repro.alignment.structure import (
    PhaseStructure,
    detect_period,
    iteration_boundaries,
    phase_structure,
)

__all__ = [
    "GAP",
    "Alignment",
    "global_align",
    "global_align_reference",
    "memoised_align",
    "align_memo_info",
    "clear_align_memo",
    "MultipleAlignment",
    "star_align",
    "consensus_sequence",
    "simultaneity_matrix",
    "spmdiness_score",
    "PhaseStructure",
    "detect_period",
    "iteration_boundaries",
    "phase_structure",
]
