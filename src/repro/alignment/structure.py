"""Iterative-structure detection on cluster sequences.

HPC codes are overwhelmingly iterative: the global execution sequence
is (near-)periodic, one period per outer iteration.  The substrate the
paper builds on (Gonzalez et al., PDCAT'09) detects that structure to
delimit iterations; this module provides the same capability:

- :func:`detect_period` — smallest period whose tiling explains the
  sequence above a match threshold (noise-tolerant);
- :func:`iteration_boundaries` — sequence indices where iterations
  start;
- :func:`phase_structure` — the canonical per-iteration phase list plus
  how regular each iteration is.

Used to label timelines by iteration and to window evolutionary
studies on iteration boundaries instead of raw wall-clock slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError

__all__ = ["detect_period", "iteration_boundaries", "phase_structure", "PhaseStructure"]


def _match_fraction(sequence: np.ndarray, period: int) -> float:
    """Fraction of symbols matching the symbol one period earlier."""
    if period >= sequence.shape[0]:
        return 0.0
    matches = sequence[period:] == sequence[:-period]
    return float(matches.mean())


def detect_period(
    sequence: np.ndarray | list[int],
    *,
    min_repeats: int = 2,
    threshold: float = 0.9,
) -> int | None:
    """Smallest period tiling *sequence* with at least *threshold* match.

    Returns ``None`` when no period repeats *min_repeats* times above
    the threshold (non-iterative or too-short sequences).
    """
    seq = np.asarray(sequence, dtype=np.int64)
    if seq.ndim != 1:
        raise AlignmentError("sequence must be 1-D")
    n = seq.shape[0]
    if n < 2:
        return None
    max_period = n // min_repeats
    for period in range(1, max_period + 1):
        if _match_fraction(seq, period) >= threshold:
            return period
    return None


def iteration_boundaries(
    sequence: np.ndarray | list[int],
    *,
    min_repeats: int = 2,
    threshold: float = 0.9,
) -> list[int]:
    """Start indices of each detected iteration (empty if aperiodic)."""
    seq = np.asarray(sequence, dtype=np.int64)
    period = detect_period(seq, min_repeats=min_repeats, threshold=threshold)
    if period is None:
        return []
    return list(range(0, seq.shape[0], period))


@dataclass(frozen=True)
class PhaseStructure:
    """Detected iterative structure of an execution sequence.

    Attributes
    ----------
    period:
        Length of one iteration in sequence positions.
    phases:
        The canonical phase pattern of one iteration (majority symbol
        per position across all complete iterations).
    n_iterations:
        Number of complete iterations found.
    regularity:
        Fraction of symbols agreeing with the canonical pattern.
    """

    period: int
    phases: tuple[int, ...]
    n_iterations: int
    regularity: float


def phase_structure(
    sequence: np.ndarray | list[int],
    *,
    min_repeats: int = 2,
    threshold: float = 0.9,
) -> PhaseStructure | None:
    """Full structure report, or ``None`` for aperiodic sequences."""
    seq = np.asarray(sequence, dtype=np.int64)
    period = detect_period(seq, min_repeats=min_repeats, threshold=threshold)
    if period is None:
        return None
    n_iterations = seq.shape[0] // period
    body = seq[: n_iterations * period].reshape(n_iterations, period)
    phases: list[int] = []
    agreements = 0
    for position in range(period):
        column = body[:, position]
        values, counts = np.unique(column, return_counts=True)
        winner = int(values[np.argmax(counts)])
        phases.append(winner)
        agreements += int(counts.max())
    return PhaseStructure(
        period=period,
        phases=tuple(phases),
        n_iterations=n_iterations,
        regularity=agreements / (n_iterations * period),
    )
