"""Automatic diagnosis of tracked-region behaviour.

The paper's case studies all end in a human conclusion: "the IPC loss
is related to an increase in L2 misses", "the compiler changes the
encoding but not the time", "beyond 2/3 occupation the node saturates".
This module automates those readings: a set of rules inspects each
tracked region's metric trends and emits :class:`Insight` records with
the evidence that triggered them.

The rules are deliberately transparent (thresholded trend shapes, no
opaque scoring) so an analyst can check every claim against the
underlying series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.tracking.digest import FrameDigest
from repro.tracking.tracker import TrackingResult
from repro.tracking.trends import TrendSeries, compute_trends

__all__ = ["Insight", "diagnose", "format_insights"]


@dataclass(frozen=True)
class Insight:
    """One diagnosed behaviour of one tracked region.

    Attributes
    ----------
    region_id:
        The tracked region.
    kind:
        Machine-readable rule name (``"cache-capacity"``,
        ``"contention-knee"``, ``"encoding-change"``, ``"imbalance
        -growth"``, ``"progressive-slowdown"``, ``"work-replication"``,
        ``"stable"``).
    severity:
        Magnitude of the effect in [0, 1]-ish scale (relative change).
    message:
        Human-readable diagnosis.
    evidence:
        The numbers backing the claim.
    """

    region_id: int
    kind: str
    severity: float
    message: str
    evidence: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"Insight(region={self.region_id}, kind={self.kind!r}, "
            f"severity={self.severity:.2f})"
        )


def _series_map(result: TrackingResult) -> dict[str, dict[int, TrendSeries]]:
    metrics = {
        "ipc": ("ipc", "mean"),
        "instructions": ("instructions", "mean"),
        "instructions_total": ("instructions", "total"),
        # Mean per burst, not total: totals shift with the number of
        # bursts DBSCAN keeps per frame, which is clustering noise.
        "duration_mean": ("duration", "mean"),
        "l1_mpki": ("l1_mpki", "mean"),
        "l2_mpki": ("l2_mpki", "mean"),
        "tlb_mpki": ("tlb_mpki", "mean"),
    }
    table: dict[str, dict[int, TrendSeries]] = {}
    for key, (metric, aggregate) in metrics.items():
        table[key] = {
            s.region_id: s
            for s in compute_trends(result, metric, aggregate=aggregate)
        }
    return table


def _total_change(series: TrendSeries | None) -> float:
    return series.pct_change_total() if series is not None else 0.0


def _imbalance_growth(result: TrackingResult, region_id: int) -> tuple[float, float]:
    """Coefficient of variation of per-rank instructions, first vs last."""
    region = result.region(region_id)
    cvs: list[float] = []
    for frame_index in (0, result.n_frames - 1):
        frame = result.frames[frame_index]
        members = region.members[frame_index]
        if not members:
            return 0.0, 0.0
        if isinstance(frame, FrameDigest):
            cvs.append(frame.rank_cv(members))
            continue
        indices = np.concatenate(
            [frame.cluster(cid).indices for cid in sorted(members)]
        )
        instr = frame.trace.metric("instructions")[indices]
        ranks = frame.trace.rank[indices]
        per_rank = np.asarray(
            [instr[ranks == r].mean() for r in np.unique(ranks)]
        )
        mean = per_rank.mean()
        cvs.append(float(per_rank.std() / mean) if mean else 0.0)
    return cvs[0], cvs[-1]


def diagnose(
    result: TrackingResult,
    *,
    ipc_threshold: float = 0.03,
    miss_growth_threshold: float = 0.3,
) -> list[Insight]:
    """Run every rule on every spanning region; returns insights sorted
    by severity (most severe first), one or more per region."""
    table = _series_map(result)
    insights: list[Insight] = []

    for region in result.tracked_regions:
        rid = region.region_id
        ipc = table["ipc"].get(rid)
        if ipc is None or np.isfinite(ipc.values).sum() < 2:
            continue
        ipc_change = _total_change(ipc)
        instr_change = _total_change(table["instructions"].get(rid))
        total_instr_change = _total_change(table["instructions_total"].get(rid))
        duration_change = _total_change(table["duration_mean"].get(rid))
        l1_growth = _total_change(table["l1_mpki"].get(rid))
        l2_growth = _total_change(table["l2_mpki"].get(rid))
        tlb_growth = _total_change(table["tlb_mpki"].get(rid))
        found_any = False

        # Encoding change: instruction count moves, wall time does not.
        # Checked step by step so studies mixing several factors (the
        # CGPOP machines-x-compilers grid) still expose the compiler
        # steps.  When this fires, it *explains* the IPC (and MPKI)
        # movement — both are ratios over the changed instruction count
        # — so the IPC-decline rules below are skipped for this region.
        instr_steps = table["instructions"][rid].step_changes()
        duration_steps = table["duration_mean"][rid].step_changes()
        encoding_steps = [
            (index, float(instr_step))
            for index, (instr_step, dur_step) in enumerate(
                zip(instr_steps, duration_steps)
            )
            if np.isfinite(instr_step)
            and np.isfinite(dur_step)
            and abs(instr_step) >= 0.10
            and abs(dur_step) <= 0.05
        ]
        encoding_change = bool(encoding_steps)
        if encoding_change:
            found_any = True
            step_index, step_value = max(
                encoding_steps, key=lambda item: abs(item[1])
            )
            scenarios = ", ".join(
                f"{index + 1}->{index + 2}" for index, _ in encoding_steps
            )
            insights.append(Insight(
                region_id=rid,
                kind="encoding-change",
                severity=abs(step_value),
                message=(
                    f"Region {rid}: instructions per burst change "
                    f"{step_value * 100:+.0f}% at scenario step(s) "
                    f"{scenarios} while execution time stays flat — a "
                    "code-generation (compiler/ISA) change, not an "
                    "algorithmic one; the region is bound elsewhere."
                ),
                evidence={
                    "steps": encoding_steps,
                    "instructions_change": instr_change,
                    "ipc_change": ipc_change,
                },
            ))

        if ipc_change <= -ipc_threshold and not encoding_change:
            steps = ipc.step_changes()
            finite_steps = steps[np.isfinite(steps)]
            worst = float(finite_steps.min()) if finite_steps.size else 0.0
            others = (
                float(np.median(np.abs(finite_steps)))
                if finite_steps.size
                else 0.0
            )
            knee_like = (
                finite_steps.size >= 4
                and worst < -0.03
                and abs(worst) > 4 * max(others, 1e-6)
            )
            miss_driven = max(l1_growth, l2_growth) >= miss_growth_threshold

            if knee_like and abs(instr_change) < 0.05:
                knee_index = int(np.nanargmin(steps)) + 1
                found_any = True
                insights.append(Insight(
                    region_id=rid,
                    kind="contention-knee",
                    severity=abs(ipc_change),
                    message=(
                        f"Region {rid}: IPC slides gently, then drops "
                        f"{worst * 100:.1f}% in one step at scenario "
                        f"{knee_index + 1}/{result.n_frames} with constant "
                        "work — a shared-resource saturation knee "
                        "(memory bandwidth or cache sharing)."
                    ),
                    evidence={
                        "ipc_change": ipc_change,
                        "worst_step": worst,
                        "knee_frame": knee_index,
                        "tlb_mpki_growth": tlb_growth,
                    },
                ))
            elif miss_driven:
                level = "L1" if l1_growth >= l2_growth else "L2"
                growth = max(l1_growth, l2_growth)
                found_any = True
                insights.append(Insight(
                    region_id=rid,
                    kind="cache-capacity",
                    severity=abs(ipc_change),
                    message=(
                        f"Region {rid}: IPC falls {ipc_change * 100:+.0f}% "
                        f"while {level} misses per kilo-instruction grow "
                        f"{growth * 100:+.0f}% — the working set stopped "
                        f"fitting the {level} cache."
                    ),
                    evidence={
                        "ipc_change": ipc_change,
                        "l1_mpki_growth": l1_growth,
                        "l2_mpki_growth": l2_growth,
                    },
                ))
            elif abs(instr_change) < 0.05:
                found_any = True
                insights.append(Insight(
                    region_id=rid,
                    kind="progressive-slowdown",
                    severity=abs(ipc_change),
                    message=(
                        f"Region {rid}: IPC declines {ipc_change * 100:+.0f}% "
                        "with flat instructions and no cache-miss growth — "
                        "a core-side drift (frequency, code path or "
                        "runtime-state degradation)."
                    ),
                    evidence={"ipc_change": ipc_change},
                ))

        # Work replication under scaling: totals should be constant.
        ranks = [frame.trace.nranks for frame in result.frames]
        if ranks[-1] > ranks[0] and total_instr_change >= 0.03:
            found_any = True
            insights.append(Insight(
                region_id=rid,
                kind="work-replication",
                severity=total_instr_change,
                message=(
                    f"Region {rid}: total instructions grow "
                    f"{total_instr_change * 100:+.0f}% as the process count "
                    f"rises {ranks[0]} -> {ranks[-1]} — replicated or "
                    "non-scalable work."
                ),
                evidence={
                    "total_instructions_change": total_instr_change,
                    "ranks": (ranks[0], ranks[-1]),
                },
            ))

        cv_first, cv_last = _imbalance_growth(result, rid)
        if cv_last >= 0.08 and cv_last >= 2.0 * max(cv_first, 1e-6):
            found_any = True
            insights.append(Insight(
                region_id=rid,
                kind="imbalance-growth",
                severity=cv_last,
                message=(
                    f"Region {rid}: per-rank work spread grows from "
                    f"{cv_first * 100:.1f}% to {cv_last * 100:.1f}% of the "
                    "mean — load imbalance is developing."
                ),
                evidence={"cv_first": cv_first, "cv_last": cv_last},
            ))

        if not found_any and abs(ipc_change) < ipc_threshold:
            insights.append(Insight(
                region_id=rid,
                kind="stable",
                severity=abs(ipc_change),
                message=(
                    f"Region {rid}: behaviour stable across the study "
                    f"(IPC {ipc_change * 100:+.1f}%)."
                ),
                evidence={"ipc_change": ipc_change},
            ))

    insights.sort(key=lambda item: (-item.severity, item.region_id))
    return insights


def format_insights(insights: list[Insight]) -> str:
    """Render insights as a bulleted report."""
    if not insights:
        return "No insights produced (no spanning region triggered a rule)."
    lines = ["Automated diagnosis:"]
    for insight in insights:
        lines.append(f"  [{insight.kind}] {insight.message}")
    return "\n".join(lines)
