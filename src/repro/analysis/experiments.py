"""The paper's canned experiments (Table 2 and the four case studies).

Each :class:`CaseStudy` packages the study definition the paper used:
the application, its scenario sweep and the frame/tracker settings that
suit it.  ``CASE_STUDIES`` is ordered like the paper's Table 2.

Expected reproduction targets (from the paper):

==================  ======  =======  ========
case study          images  regions  coverage
==================  ======  =======  ========
gadget                   2        8      88 %
quantum-espresso         2        6      66 %
wrf                      2       12     100 %
gromacs                  3        5     100 %
cgpop                    4        2      66 %
nas-bt                   4        6     100 %
hydroc                  12        2     100 %
mr-genesis              12        2     100 %
nas-ft                  15        2     100 %
gromacs-window          20        4      80 %
==================  ======  =======  ========

Average coverage ~90 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.study import ParametricStudy, StudyResult

if TYPE_CHECKING:
    from repro.parallel.cache import PipelineCache
from repro.apps import nasft
from repro.apps.hydroc import BLOCK_SIZES
from repro.clustering.frames import FrameSettings

__all__ = ["CaseStudy", "CASE_STUDIES", "get_case_study", "run_case_study"]


@dataclass(frozen=True)
class CaseStudy:
    """One Table 2 row: a named study plus its paper-reported targets.

    Attributes
    ----------
    name:
        Table 2 application label.
    study:
        The runnable study definition.
    expected_images / expected_regions / expected_coverage:
        The values the paper's Table 2 reports, used by the benches.
    """

    name: str
    study: ParametricStudy
    expected_images: int
    expected_regions: int
    expected_coverage: int

    def run(
        self,
        *,
        seed: int = 0,
        jobs: int | None = None,
        cache: "PipelineCache | None" = None,
        strict: bool = True,
    ):
        """Execute the study (parameters as in :meth:`ParametricStudy.run`).

        With ``strict=False`` the return value is a
        :class:`repro.robust.PartialResult` wrapping the
        :class:`StudyResult`, as for :meth:`ParametricStudy.run`.
        """
        return self.study.run(seed=seed, jobs=jobs, cache=cache, strict=strict)


def _nasft_windows(traces):
    """Slice the single NAS FT run into the paper's 15 time windows."""
    (trace,) = traces
    return nasft.window_traces(trace, n_windows=15)


CASE_STUDIES: tuple[CaseStudy, ...] = (
    CaseStudy(
        name="Gadget",
        study=ParametricStudy(
            app="gadget",
            scenarios=({"snapshot": 0}, {"snapshot": 1}),
            settings=FrameSettings(relevance=0.98),
        ),
        expected_images=2,
        expected_regions=8,
        expected_coverage=88,
    ),
    CaseStudy(
        name="QuantumE",
        study=ParametricStudy(
            app="quantum-espresso",
            scenarios=({"configuration": 0}, {"configuration": 1}),
            settings=FrameSettings(relevance=0.98),
        ),
        expected_images=2,
        expected_regions=6,
        expected_coverage=66,
    ),
    CaseStudy(
        name="WRF",
        study=ParametricStudy(
            app="wrf",
            scenarios=({"ranks": 128}, {"ranks": 256}),
            settings=FrameSettings(relevance=0.995),
        ),
        expected_images=2,
        expected_regions=12,
        expected_coverage=100,
    ),
    CaseStudy(
        name="Gromacs",
        study=ParametricStudy(
            app="gromacs",
            scenarios=({"ranks": 24}, {"ranks": 48}, {"ranks": 96}),
            settings=FrameSettings(relevance=0.98),
        ),
        expected_images=3,
        expected_regions=5,
        expected_coverage=100,
    ),
    CaseStudy(
        name="CGPOP",
        study=ParametricStudy(
            app="cgpop",
            scenarios=(
                {"machine": "MareNostrum", "compiler": "gfortran"},
                {"machine": "MareNostrum", "compiler": "xlf"},
                {"machine": "MinoTauro", "compiler": "gfortran"},
                {"machine": "MinoTauro", "compiler": "ifort"},
            ),
        ),
        expected_images=4,
        expected_regions=2,
        expected_coverage=66,
    ),
    CaseStudy(
        name="NAS BT",
        study=ParametricStudy(
            app="nas-bt",
            scenarios=(
                {"problem_class": "W"},
                {"problem_class": "A"},
                {"problem_class": "B"},
                {"problem_class": "C"},
            ),
            settings=FrameSettings(log_y=True, relevance=0.97),
        ),
        expected_images=4,
        expected_regions=6,
        expected_coverage=100,
    ),
    CaseStudy(
        name="HydroC",
        study=ParametricStudy(
            app="hydroc",
            scenarios=tuple({"block_size": b} for b in BLOCK_SIZES),
        ),
        expected_images=12,
        expected_regions=2,
        expected_coverage=100,
    ),
    CaseStudy(
        name="MR-Genesis",
        study=ParametricStudy(
            app="mr-genesis",
            scenarios=tuple({"tasks_per_node": k} for k in range(1, 13)),
        ),
        expected_images=12,
        expected_regions=2,
        expected_coverage=100,
    ),
    CaseStudy(
        name="NAS FT",
        study=ParametricStudy(
            app="nas-ft",
            scenarios=({},),
            trace_hook=_nasft_windows,
        ),
        expected_images=15,
        expected_regions=2,
        expected_coverage=100,
    ),
    CaseStudy(
        name="Gromacs (20)",
        study=ParametricStudy(
            app="gromacs-window",
            scenarios=tuple({"window": w} for w in range(20)),
            settings=FrameSettings(relevance=0.98),
        ),
        expected_images=20,
        expected_regions=4,
        expected_coverage=80,
    ),
)


def get_case_study(name: str) -> CaseStudy:
    """Look up one case study by its Table 2 name (case-insensitive).

    Raises :class:`~repro.errors.StudyError` for unknown names so the
    CLI reports a diagnosable error (exit 2) instead of a traceback.
    """
    from repro.errors import StudyError

    for case in CASE_STUDIES:
        if case.name.lower() == name.lower():
            return case
    raise StudyError(
        f"unknown case study {name!r}; available: {[c.name for c in CASE_STUDIES]}"
    )


def run_case_study(name: str, *, seed: int = 0) -> StudyResult:
    """Run one Table 2 case study end to end."""
    return get_case_study(name).run(seed=seed)
