"""Windowing one experiment for evolutionary analysis.

The paper's evolutionary mode compares "different time intervals within
the same experiment".  Equal wall-clock slices (as in
:func:`repro.apps.nasft.window_traces`) can cut through the middle of
an iteration; this module instead detects the run's iterative structure
(:mod:`repro.alignment.structure`) and cuts on iteration boundaries, so
every window holds whole iterations and the same phase mix.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.structure import detect_period
from repro.clustering.frames import FrameSettings, make_frame
from repro.errors import StudyError
from repro.trace.filters import filter_time_window
from repro.trace.trace import Trace

__all__ = ["iteration_windows", "iteration_start_times"]


def iteration_start_times(
    trace: Trace,
    *,
    settings: FrameSettings | None = None,
    threshold: float = 0.85,
) -> list[float]:
    """Wall-clock times at which the trace's iterations begin.

    The trace is clustered once; the densest-populated rank's label
    sequence is scanned for its period, and the begin timestamps of the
    bursts at multiples of the period are the iteration starts.
    """
    frame = make_frame(trace, settings)
    sequences = frame.rank_sequences
    if not sequences:
        raise StudyError("trace has no clustered bursts to window")
    # The rank with the most clustered bursts gives the cleanest signal.
    rank = max(sequences, key=lambda r: sequences[r].size)
    sequence = sequences[rank]
    period = detect_period(sequence, threshold=threshold)
    if period is None:
        raise StudyError(
            "no iterative structure detected; use wall-clock windows instead"
        )
    mask = (frame.trace.rank == rank) & (frame.labels != 0)
    begins = np.sort(frame.trace.begin[mask])
    return [float(begins[i]) for i in range(0, begins.shape[0], period)]


def iteration_windows(
    trace: Trace,
    n_windows: int,
    *,
    settings: FrameSettings | None = None,
    threshold: float = 0.85,
) -> list[Trace]:
    """Slice *trace* into *n_windows* groups of whole iterations.

    Iterations are distributed as evenly as possible (earlier windows
    get the remainder).  Each returned trace carries a ``window``
    scenario key.
    """
    if n_windows < 1:
        raise StudyError(f"n_windows must be >= 1, got {n_windows}")
    starts = iteration_start_times(trace, settings=settings, threshold=threshold)
    n_iterations = len(starts)
    if n_iterations < n_windows:
        raise StudyError(
            f"only {n_iterations} iterations detected for {n_windows} windows"
        )
    per_window, remainder = divmod(n_iterations, n_windows)
    edges: list[float] = [starts[0]]
    index = 0
    for window in range(n_windows):
        index += per_window + (1 if window < remainder else 0)
        edges.append(
            starts[index] if index < n_iterations else float(trace.end.max()) + 1.0
        )
    windows: list[Trace] = []
    for window in range(n_windows):
        piece = filter_time_window(trace, edges[window], edges[window + 1])
        piece.scenario["window"] = window
        windows.append(piece)
    return windows
