"""Plain-text report formatting for the paper's tables.

Everything here returns strings (or row dicts), so benches can both
print the reproduction and assert on the underlying numbers.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro._util import format_si
from repro.analysis.study import StudyResult
from repro.tracking.trends import compute_trends

__all__ = ["format_table", "table2_rows", "format_table2", "table3_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table2_rows(results: Mapping[str, StudyResult]) -> list[dict[str, Any]]:
    """Build the paper's Table 2 rows from named study results."""
    rows: list[dict[str, Any]] = []
    for name, study_result in results.items():
        row = {"application": name}
        row.update(study_result.result.summary_row())
        rows.append(row)
    return rows


def format_table2(results: Mapping[str, StudyResult]) -> str:
    """Render the Table 2 reproduction as text."""
    rows = table2_rows(results)
    mean_cov = np.mean([row["coverage_pct"] for row in rows]) if rows else 0.0
    body = format_table(
        ["Application", "Input images", "Tracked regions", "Coverage %"],
        [
            [row["application"], row["input_images"], row["tracked_regions"],
             row["coverage_pct"]]
            for row in rows
        ],
        title="Table 2: Summary of experiments",
    )
    return f"{body}\nAverage coverage: {mean_cov:.1f}%"


def table3_report(study_result: StudyResult) -> tuple[str, list[dict[str, Any]]]:
    """Build the paper's Table 3 (CGPOP per-region results).

    Returns the rendered text plus the raw rows: one dict per tracked
    region with per-scenario IPC, mean instructions per burst and total
    per-process duration.
    """
    result = study_result.result
    labels = [frame.label for frame in result.frames]
    ipc = compute_trends(result, "ipc")
    instr = compute_trends(result, "instructions")
    duration = compute_trends(result, "duration", aggregate="total")
    nranks = [frame.trace.nranks for frame in result.frames]

    rows: list[dict[str, Any]] = []
    text_rows: list[list[str]] = []
    for s_ipc, s_instr, s_dur in zip(ipc, instr, duration):
        per_process = np.asarray(
            [v / n for v, n in zip(s_dur.values, nranks)], dtype=np.float64
        )
        rows.append(
            {
                "region": s_ipc.region_id,
                "labels": labels,
                "ipc": s_ipc.values.tolist(),
                "instructions": s_instr.values.tolist(),
                "duration_per_process": per_process.tolist(),
            }
        )
        text_rows.append(
            [f"Region {s_ipc.region_id}", "IPC"]
            + [f"{v:.2f}" for v in s_ipc.values]
        )
        text_rows.append(
            ["", "Instructions"] + [format_si(v) for v in s_instr.values]
        )
        text_rows.append(
            ["", "Duration"] + [f"{v:.3f}s" for v in per_process]
        )
    text = format_table(
        ["", "Metric", *labels],
        text_rows,
        title="Table 3: CGPOP performance results",
    )
    return text, rows
