"""Analysis drivers: parametric studies and paper-experiment configs.

- :mod:`~repro.analysis.study` — run a scenario sweep end to end
  (models -> traces -> frames -> tracking -> trends).
- :mod:`~repro.analysis.report` — plain-text table formatting for the
  paper's tables and generic trend reports.
- :mod:`~repro.analysis.experiments` — the ten canned case studies of
  the paper's Table 2 plus the per-figure configurations.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    CASE_STUDIES,
    CaseStudy,
    get_case_study,
    run_case_study,
)
from repro.analysis.insights import Insight, diagnose, format_insights
from repro.analysis.report import format_table, table2_rows, table3_report
from repro.analysis.study import ParametricStudy, StudyResult
from repro.analysis.windows import iteration_start_times, iteration_windows

__all__ = [
    "Insight",
    "diagnose",
    "format_insights",
    "iteration_windows",
    "iteration_start_times",
    "ParametricStudy",
    "StudyResult",
    "CaseStudy",
    "CASE_STUDIES",
    "get_case_study",
    "run_case_study",
    "format_table",
    "table2_rows",
    "table3_report",
]
