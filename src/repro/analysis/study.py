"""Parametric study driver: a scenario sweep through the full pipeline.

A :class:`ParametricStudy` names an application and lists the scenario
keyword-argument dictionaries of its experiments; :meth:`run` produces
a :class:`StudyResult` bundling the traces, frames, tracking result and
a trend cache — everything the benches and examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro import obs
from repro.apps.base import AppModel
from repro.apps.registry import build_app
from repro.clustering.frames import FrameSettings, make_frames, make_frames_partial
from repro.errors import ReproError, StudyError
from repro.obs.log import get_logger
from repro.parallel.executor import pmap
from repro.robust.partial import ItemFailure, PartialResult
from repro.tracking.tracker import Tracker, TrackerConfig, TrackingResult
from repro.tracking.trends import TrendSeries, compute_trends
from repro.trace.trace import Trace

if TYPE_CHECKING:
    from repro.parallel.cache import PipelineCache

__all__ = ["ParametricStudy", "StudyResult"]

log = get_logger(__name__)


def _simulate_task(task: tuple[str, dict[str, Any], int]) -> Trace:
    """Worker-side task: simulate one scenario (module-level for pickling)."""
    app, scenario, seed = task
    return build_app(app, **scenario).run(seed=seed)


def _simulate_task_quarantine(
    task: tuple[str, dict[str, Any], int]
) -> Trace | ItemFailure:
    """Non-strict variant: pipeline errors become quarantine records."""
    app, scenario, seed = task
    try:
        return _simulate_task(task)
    except ReproError as exc:
        return ItemFailure.from_exception(f"{app} {scenario!r}", "simulate", exc)


@dataclass(frozen=True)
class StudyResult:
    """Everything a finished study produced.

    Attributes
    ----------
    study:
        The study definition.
    traces:
        One trace per scenario, in order.
    result:
        The tracking result over the scenario frames.
    """

    study: "ParametricStudy"
    traces: tuple[Trace, ...]
    result: TrackingResult

    def trends(self, metric: str, *, aggregate: str = "mean") -> list[TrendSeries]:
        """Per-region trend series for *metric* (spanning regions only)."""
        return compute_trends(self.result, metric, aggregate=aggregate)

    @property
    def coverage(self) -> int:
        """Coverage percentage of the tracking."""
        return self.result.coverage

    @property
    def n_tracked(self) -> int:
        """Number of regions tracked across the whole sequence."""
        return len(self.result.tracked_regions)


@dataclass(frozen=True)
class ParametricStudy:
    """A named scenario sweep of one application.

    Attributes
    ----------
    app:
        Registered application name (see :mod:`repro.apps.registry`).
    scenarios:
        One keyword-argument mapping per experiment, in sequence order.
    settings:
        Frame-construction settings shared by all scenarios.
    config:
        Tracker configuration.
    trace_hook:
        Optional post-processing turning the generated traces into the
        final trace list (e.g. slicing one long run into time windows).
    """

    app: str
    scenarios: tuple[Mapping[str, Any], ...]
    settings: FrameSettings = field(default_factory=FrameSettings)
    config: TrackerConfig = field(default_factory=TrackerConfig)
    trace_hook: Callable[[list[Trace]], list[Trace]] | None = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise StudyError("a study needs at least one scenario")

    def build_models(self) -> list[AppModel]:
        """Instantiate the application model of every scenario."""
        return [build_app(self.app, **dict(scenario)) for scenario in self.scenarios]

    def _simulate(
        self,
        *,
        seed: int,
        jobs: int | None,
        cache: "PipelineCache | None",
        strict: bool = True,
    ) -> tuple[list[Trace | None], list[ItemFailure]]:
        """Simulate every scenario, using the trace cache when given.

        Cache hits are resolved up front; only the misses are fanned
        out through :func:`repro.parallel.executor.pmap`, then stored.
        Output order always matches the scenario order.  Under
        ``strict=False`` a scenario whose simulation raises a
        :class:`~repro.errors.ReproError` is quarantined: its slot in
        the trace list is ``None`` and an :class:`ItemFailure` records
        what happened.
        """
        from repro.parallel.cache import trace_key

        tasks = [
            (self.app, dict(scenario), seed + index)
            for index, scenario in enumerate(self.scenarios)
        ]
        traces: list[Trace | None] = [None] * len(tasks)
        keys: list[dict | None] = [None] * len(tasks)
        failures: list[ItemFailure] = []
        pending: list[int] = []
        for index, task in enumerate(tasks):
            if cache is not None:
                keys[index] = trace_key(*task)
                cached = cache.get_trace(keys[index])
                if cached is not None:
                    traces[index] = cached
                    continue
            pending.append(index)
        if pending:
            simulated = pmap(
                _simulate_task if strict else _simulate_task_quarantine,
                [tasks[index] for index in pending],
                jobs=jobs,
                label="study.simulate.pmap",
            )
            for index, trace in zip(pending, simulated):
                if isinstance(trace, ItemFailure):
                    failures.append(trace)
                    obs.count("robust.quarantined_total", stage="simulate")
                    log.warning("quarantined scenario: %s", trace)
                    continue
                traces[index] = trace
                if cache is not None:
                    cache.put_trace(keys[index], trace)
        return traces, failures

    def run(
        self,
        *,
        seed: int = 0,
        jobs: int | None = None,
        cache: "PipelineCache | None" = None,
        strict: bool = True,
    ) -> StudyResult | PartialResult[StudyResult]:
        """Execute the sweep: simulate, cluster, track.

        Each scenario gets a derived seed so experiments are independent
        but the whole study is reproducible from one integer.

        Parameters
        ----------
        seed:
            Base seed; scenario *i* runs with ``seed + i``.
        jobs:
            Worker count for the parallel stages (scenario simulation,
            per-trace frame construction, per-pair combination).
            ``None`` defers to ``REPRO_JOBS``; results are bit-identical
            to a serial run.
        cache:
            Optional :class:`repro.parallel.cache.PipelineCache` making
            the simulate and cluster stages incremental across runs.
        strict:
            When true (the default), the first pipeline error aborts the
            whole sweep.  When false, failing scenarios / frames / pairs
            are quarantined and the run continues with the survivors;
            the return value is a :class:`PartialResult` listing every
            quarantined item (possibly none).  A study where fewer than
            two frames survive still raises :class:`StudyError`.
        """
        from repro.obs import ledger as obsledger
        from repro.robust.validate import validate_study, validate_trace

        validate_study(self)
        with obsledger.run_record(
            "study.run",
            app=self.app,
            n_scenarios=len(self.scenarios),
            config_digest=obsledger.config_digest(self.settings, self.config),
            strict=strict,
        ) as ledger_rec, obs.span(
            "study.run", app=self.app, n_scenarios=len(self.scenarios)
        ):
            failures: list[ItemFailure] = []
            with obs.span("study.simulate"):
                slots, sim_failures = self._simulate(
                    seed=seed, jobs=jobs, cache=cache, strict=strict
                )
                failures.extend(sim_failures)
                traces = [trace for trace in slots if trace is not None]
                if self.trace_hook is not None:
                    traces = self.trace_hook(traces)
            checked: list[Trace] = []
            for trace in traces:
                if strict:
                    checked.append(validate_trace(trace, strict=True))
                    continue
                try:
                    checked.append(validate_trace(trace, strict=False))
                except ReproError as exc:
                    failure = ItemFailure.from_exception(
                        trace.label(), "validate", exc
                    )
                    failures.append(failure)
                    obs.count("robust.quarantined_total", stage="validate")
                    log.warning("quarantined trace: %s", failure)
            traces = checked
            self._require_two(len(traces), failures)
            from dataclasses import replace

            config = self.config
            if self.settings.log_y and not config.log_extensive:
                log.info(
                    "settings.log_y=True overrides config.log_extensive=False "
                    "for study %r: tracking will normalise extensive axes in "
                    "log space", self.app,
                )
                config = replace(config, log_extensive=True)
            if strict:
                frames = make_frames(
                    traces, self.settings, jobs=jobs, cache=cache
                )
                result = Tracker(frames, config).run(jobs=jobs)
                if ledger_rec is not None:
                    ledger_rec.annotate(
                        coverage=round(result.coverage, 4),
                        n_regions=len(result.regions),
                    )
                return StudyResult(
                    study=self, traces=tuple(traces), result=result
                )
            frame_slots, frame_failures = make_frames_partial(
                traces, self.settings, jobs=jobs, cache=cache
            )
            failures.extend(frame_failures)
            survivors = [
                (trace, frame)
                for trace, frame in zip(traces, frame_slots)
                if frame is not None
            ]
            self._require_two(len(survivors), failures)
            traces = [trace for trace, _ in survivors]
            frames = [frame for _, frame in survivors]
            tracked = Tracker(frames, config).run(jobs=jobs, strict=False)
            failures.extend(tracked.failures)
            result = StudyResult(
                study=self, traces=tuple(traces), result=tracked.value
            )
            if ledger_rec is not None:
                ledger_rec.annotate(
                    coverage=round(tracked.value.coverage, 4),
                    n_regions=len(tracked.value.regions),
                    quarantined={"items": len(failures)},
                )
            return PartialResult(value=result, failures=tuple(failures))

    @staticmethod
    def _require_two(n_alive: int, failures: list[ItemFailure]) -> None:
        """Tracking needs two frames; fewer is a total failure even non-strict."""
        if n_alive >= 2:
            return
        detail = (
            f" ({len(failures)} item(s) quarantined: "
            + "; ".join(str(f) for f in failures)
            + ")"
            if failures
            else ""
        )
        raise StudyError(
            "tracking needs at least two frames; add scenarios or a "
            f"trace hook producing several time windows{detail}"
        )
