"""repro — object tracking techniques applied to parallel performance analysis.

This package reproduces the system described in *"On the usefulness of
object tracking techniques in performance analysis"* (Llort, Servat,
Giménez, Labarta — SC 2013, Barcelona Supercomputing Center).

The pipeline mirrors the phase structure of a computer-vision tracker:

1. **Capture frames** — every execution scenario is rendered as a 2-D
   "image" in a performance-metric space (typically IPC x instructions),
   where each point is one CPU burst (:mod:`repro.trace`,
   :mod:`repro.clustering`).
2. **Recognise objects** — density-based clustering groups similar bursts
   into behavioural regions (:mod:`repro.clustering.dbscan`).
3. **Track motion** — four cooperating heuristics correlate the objects
   across frames despite splits, merges and long displacements
   (:mod:`repro.tracking`).

On top of the tracker the package ships machine models, synthetic SPMD
application workloads, trend/prediction analysis, dependency-free
visualisation and a parametric-study driver so that every table and
figure of the paper can be regenerated offline.

Quickstart
----------
>>> from repro import apps, quick_track
>>> traces = [apps.wrf.build(ranks=n).run(seed=1) for n in (32, 64)]
>>> result = quick_track(traces)
>>> len(result.tracked_regions) > 0
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.api import (
    cluster_trace,
    make_frames,
    quick_track,
    track_frames,
    track_stream,
)
from repro.clustering import ClusterSet, DBSCAN, Frame
from repro.parallel import PipelineCache, pmap, resolve_cache, resolve_jobs
from repro.robust import (
    ItemFailure,
    PartialResult,
    ValidationIssue,
    check_trace,
    validate_frame,
    validate_study,
    validate_trace,
)
from repro.stream import (
    IncrementalTracker,
    SpaceBounds,
    TrackUpdate,
    WindowSpec,
    concat_windows,
    slice_trace,
    track_windows,
)
from repro.tracking import TrackedRegion, Tracker, TrackingResult
from repro.trace import CPUBurst, Trace

__all__ = [
    "__version__",
    "CPUBurst",
    "Trace",
    "DBSCAN",
    "ClusterSet",
    "Frame",
    "IncrementalTracker",
    "ItemFailure",
    "PartialResult",
    "PipelineCache",
    "SpaceBounds",
    "TrackUpdate",
    "Tracker",
    "TrackingResult",
    "TrackedRegion",
    "ValidationIssue",
    "WindowSpec",
    "check_trace",
    "cluster_trace",
    "concat_windows",
    "make_frames",
    "pmap",
    "quick_track",
    "resolve_cache",
    "resolve_jobs",
    "slice_trace",
    "track_frames",
    "track_stream",
    "track_windows",
    "validate_frame",
    "validate_study",
    "validate_trace",
]
