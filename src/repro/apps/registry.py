"""Application registry: name -> model builder.

The CLI and the study driver refer to applications by name; this module
is the single lookup point.  Builders take scenario keyword arguments
and return :class:`~repro.apps.base.AppModel` instances.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.apps import (
    cgpop,
    gadget,
    gromacs,
    hydroc,
    mrgenesis,
    nasbt,
    nasft,
    quantum_espresso,
    wrf,
)
from repro.apps.base import AppModel

__all__ = ["APP_BUILDERS", "build_app"]

AppBuilder = Callable[..., AppModel]

#: All registered applications.  ``gromacs-window`` is the 20-image
#: time-window variant of the Gromacs study.
APP_BUILDERS: dict[str, AppBuilder] = {
    "wrf": wrf.build,
    "cgpop": cgpop.build,
    "nas-bt": nasbt.build,
    "nas-ft": nasft.build,
    "mr-genesis": mrgenesis.build,
    "hydroc": hydroc.build,
    "gadget": gadget.build,
    "quantum-espresso": quantum_espresso.build,
    "gromacs": gromacs.build,
    "gromacs-window": gromacs.build_window,
}


def build_app(name: str, /, **scenario: Any) -> AppModel:
    """Build the application *name* with scenario keyword arguments."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown application {name!r}; registered: {sorted(APP_BUILDERS)}"
        ) from exc
    return builder(**scenario)
