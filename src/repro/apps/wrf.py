"""WRF — Weather Research & Forecasting model (paper sections 2-3).

The paper's running example: WRF at 128 and 256 tasks on MareNostrum,
with twelve relevant computing regions.  The model encodes the
behaviours the paper reports when doubling the core count:

- per-process instructions halve (strong scaling), so total
  instructions per region stay constant — except Region 1, whose total
  grows ~5 % per doubling (code replication, Fig. 7b);
- regions 11 and 12 lose ~20 % IPC, regions 4, 6 and 7 gain ~5 %
  (Fig. 7a); the rest move less than 3 %;
- region 2 stretches vertically (instruction imbalance) and regions 7
  and 11 horizontally (IPC variability), as in Fig. 1a;
- several regions share call-stack references into
  ``module_comm_dm.f90`` (Table 1): regions 2 and 5 point to the same
  line, as do regions 7 and 12.
"""

from __future__ import annotations

import math

from repro.apps.base import AppModel, RegionSpec
from repro.machine.machine import MARENOSTRUM, Machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["build", "REGION_TABLE"]

#: Region parameter table: (name, source line, per-rank instructions at
#: the 128-task baseline [millions], core-CPI scale, imbalance,
#: cycle jitter).  Call-stack file mirrors the paper's Table 1.
REGION_TABLE: tuple[tuple[str, int, float, float, float, float], ...] = (
    ("halo_exchange_a", 4939, 700.0, 1.20, 0.05, 0.015),
    ("advect_scalar", 6474, 620.0, 1.80, 0.35, 0.015),
    ("small_step_prep", 6060, 540.0, 1.40, 0.05, 0.015),
    ("advance_uv", 2472, 460.0, 2.40, 0.05, 0.015),
    ("advect_scalar_tail", 6474, 390.0, 1.10, 0.05, 0.015),
    ("advance_w", 3310, 320.0, 2.00, 0.05, 0.015),
    ("sound_step", 5734, 260.0, 1.60, 0.05, 0.050),
    ("microphysics", 1210, 200.0, 1.30, 0.05, 0.015),
    ("radiation", 2088, 150.0, 2.20, 0.05, 0.015),
    ("pbl_physics", 7150, 110.0, 1.50, 0.05, 0.015),
    ("sound_step_tail", 6275, 75.0, 2.60, 0.05, 0.050),
    ("boundary_update", 5734, 45.0, 1.90, 0.05, 0.015),
)

_FILE = "module_comm_dm.f90"
_INSTR_PER_UNIT = 60.0
#: Regions whose IPC degrades ~20 % per core-count doubling (1-based).
_DEGRADING = {11, 12}
#: Regions whose IPC improves ~5 % per doubling.
_IMPROVING = {4, 6, 7}
#: Region with ~5 % total-instruction growth per doubling (replication).
_REPLICATING = {1}


def build(
    ranks: int = 128,
    *,
    iterations: int = 6,
    machine: Machine = MARENOSTRUM,
    base_ranks: int = 128,
) -> AppModel:
    """Build the WRF model for a given task count.

    Parameters
    ----------
    ranks:
        MPI process count of the scenario.
    iterations:
        Simulated outer time steps.
    machine:
        Machine preset (the paper ran WRF on MareNostrum).
    base_ranks:
        Task count of the reference scenario; scaling behaviours are
        expressed relative to it.
    """
    doublings = math.log2(ranks / base_ranks)
    regions = []
    for index, (name, line, instr_m, cpi, imbalance, jitter) in enumerate(
        REGION_TABLE, start=1
    ):
        total_instr = instr_m * 1e6 * base_ranks
        if index in _REPLICATING:
            total_instr *= 1.0 + 0.05 * doublings
        per_rank_instr = total_instr / ranks
        cpi_scale = cpi
        if index in _DEGRADING:
            cpi_scale *= 1.25**doublings
        elif index in _IMPROVING:
            cpi_scale *= (1.0 / 1.05) ** doublings
        regions.append(
            RegionSpec(
                name=name,
                # Regions sharing a source line share the full call path
                # (paper Table 1: several regions point at the same
                # communication-module line).
                callpath=CallPath.single(f"comm_line_{line}", _FILE, line),
                point=WorkloadPoint(
                    work_units=per_rank_instr / _INSTR_PER_UNIT,
                    instructions_per_unit=_INSTR_PER_UNIT,
                    memory_accesses_per_unit=0.5,
                    working_set_bytes=96 * 1024,
                    bandwidth_demand_gbs=0.3,
                    core_cpi_scale=cpi_scale,
                ),
                imbalance=imbalance,
                work_jitter=0.01,
                cycle_jitter=jitter,
            )
        )
    return AppModel(
        name="WRF",
        nranks=ranks,
        regions=tuple(regions),
        iterations=iterations,
        machine=machine,
        scenario={"tasks": ranks},
    )
