"""CGPOP — conjugate-gradient proxy of the Parallel Ocean Program.

Paper section 4.1: CGPOP at 128 processes on both machines, compiled
with a generic (gfortran) and a vendor compiler (xlf on MareNostrum,
ifort on MinoTauro).  Modelled behaviours:

- two main instruction trends: the CG solve (Region 1, executed several
  times per iteration) and the halo/matvec region (Region 2);
- vendor compilers emit ~30-36 % fewer instructions with unchanged
  memory traffic, so IPC falls in proportion and wall time is flat
  (Table 3);
- on MinoTauro the Region 2 code splits into two IPC behaviours
  (bimodal across ranks) — the paper's "Region 2 splits into Regions 2
  and 3 ... no matter the compiler used";
- MareNostrum's PowerPC ISA executes ~36 % more instructions than the
  x86 binary for the same work (6.8M vs 5M in Table 3).
"""

from __future__ import annotations

from repro.apps.base import AppModel, Mode, RegionSpec
from repro.machine.compiler import CompilerModel, get_compiler
from repro.machine.machine import MARENOSTRUM, MINOTAURO, Machine, get_machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["build"]

#: PowerPC (RISC) binaries execute more instructions than x86 for the
#: same Fortran source — calibrated to Table 3's 6.8M vs 5M.
_ISA_INSTRUCTION_FACTOR = {"MareNostrum": 1.36, "MinoTauro": 1.0}

_INSTR_PER_UNIT = 100.0
#: Memory accesses per work unit; CGPOP's sparse matvec is strongly
#: memory-bound, which is what pins wall time regardless of compiler.
_MEM_PER_UNIT = 6.3
_WS_BYTES = 16 * 1024 * 1024  # far beyond L2: the miss rates saturate


def build(
    machine: Machine | str = MARENOSTRUM,
    compiler: CompilerModel | str = "gfortran",
    *,
    ranks: int = 128,
    iterations: int = 8,
) -> AppModel:
    """Build the CGPOP model for one (machine, compiler) scenario."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    if isinstance(compiler, str):
        compiler = get_compiler(compiler)
    isa = _ISA_INSTRUCTION_FACTOR.get(machine.name, 1.0)
    # Per-burst instruction target at the gfortran baseline: 6.8M on
    # MareNostrum, i.e. 5M worth of abstract work on the x86 encoding.
    work_r1 = 6.8e6 / (_INSTR_PER_UNIT * 1.36)
    work_r2 = 4.5e6 / (_INSTR_PER_UNIT * 1.36)

    if machine.name == MINOTAURO.name:
        # The platform change splits the halo/matvec code in two IPC
        # behaviours (paper Figures 8c-8d).
        r2_modes = (
            Mode(weight=0.6, cpi_scale=0.55, ws_scale=0.55),
            Mode(weight=0.4, cpi_scale=1.9, ws_scale=1.0),
        )
    else:
        r2_modes = (Mode(),)

    regions = (
        RegionSpec(
            name="pcg_solve",
            callpath=CallPath.single("pcg_chrongear", "solvers.F90", 512),
            point=WorkloadPoint(
                work_units=work_r1,
                instructions_per_unit=_INSTR_PER_UNIT * isa,
                memory_accesses_per_unit=_MEM_PER_UNIT,
                working_set_bytes=_WS_BYTES,
                bandwidth_demand_gbs=1.2,
            ),
            repeats=4,
            work_jitter=0.008,
            cycle_jitter=0.012,
        ),
        RegionSpec(
            name="halo_matvec",
            callpath=CallPath.single("matvec_halo", "solvers.F90", 731),
            point=WorkloadPoint(
                work_units=work_r2,
                instructions_per_unit=_INSTR_PER_UNIT * isa,
                memory_accesses_per_unit=_MEM_PER_UNIT,
                working_set_bytes=_WS_BYTES,
                bandwidth_demand_gbs=1.2,
            ),
            modes=r2_modes,
            work_jitter=0.008,
            cycle_jitter=0.012,
        ),
    )
    return AppModel(
        name="CGPOP",
        nranks=ranks,
        regions=regions,
        iterations=iterations,
        machine=machine,
        compiler=compiler,
        scenario={"machine": machine.name, "compiler": compiler.name},
    )
