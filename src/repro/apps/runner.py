"""The synthetic execution engine: :class:`AppModel` -> :class:`Trace`.

Simulates a bulk-synchronous SPMD execution: every iteration, every
region executes (``repeats`` times) on every rank, with a barrier after
each repetition — the lockstep phase structure the paper's Figure 4
timelines show.  Per-burst hardware counters come from the machine's
:class:`~repro.machine.perfmodel.PerformanceModel`; work imbalance,
behavioural modes and log-normal jitter perturb them exactly where a
real system would (work distribution and achieved cycles), never in
ways that break counter consistency (IPC always equals instructions
over cycles).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import obs
from repro._util import as_rng
from repro.apps.base import AppModel, RegionSpec
from repro.machine.perfmodel import PerformanceModel
from repro.trace.counters import STANDARD_COUNTERS
from repro.trace.trace import Trace, TraceBuilder

__all__ = ["run_app", "mode_assignment"]


def mode_assignment(region: RegionSpec, nranks: int) -> np.ndarray:
    """Assign each rank to one of the region's modes.

    Modes take contiguous rank blocks proportional to their weights —
    the boundary-versus-interior pattern of domain decompositions.  The
    assignment is deterministic, so the same region splits identically
    in every scenario (the tracker must be able to follow the split).
    """
    weights = np.asarray([mode.weight for mode in region.modes], dtype=np.float64)
    weights = weights / weights.sum()
    boundaries = np.floor(np.cumsum(weights) * nranks + 0.5).astype(np.int64)
    boundaries[-1] = nranks
    assignment = np.zeros(nranks, dtype=np.int64)
    start = 0
    for mode_index, end in enumerate(boundaries):
        assignment[start:end] = mode_index
        start = max(start, int(end))
    return assignment


def _work_gradient(nranks: int, imbalance: float) -> np.ndarray:
    """Linear work gradient across ranks, mean 1."""
    if nranks == 1 or imbalance == 0.0:
        return np.ones(nranks)
    fractions = np.arange(nranks) / (nranks - 1)
    return 1.0 + imbalance * (fractions - 0.5)


def run_app(model: AppModel, seed: int = 0) -> Trace:
    """Simulate *model* and return the generated trace.

    Parameters
    ----------
    model:
        The application scenario to execute.
    seed:
        Seed for all stochastic perturbations; identical seeds produce
        identical traces.
    """
    with obs.span(
        "apps.run_app",
        app=model.name,
        nranks=model.nranks,
        iterations=model.iterations,
    ):
        return _run_app(model, seed)


def _run_app(model: AppModel, seed: int) -> Trace:
    rng = as_rng(seed)
    nranks = model.nranks
    perf = PerformanceModel(
        model.machine,
        compiler=model.compiler,
        processes_per_node=model.effective_processes_per_node,
    )
    scenario = dict(model.scenario)
    builder = TraceBuilder(
        nranks=nranks,
        counter_names=STANDARD_COUNTERS,
        app=model.name,
        scenario=scenario,
        clock_hz=model.machine.clock_hz,
    )

    assignments = {
        region.name: mode_assignment(region, nranks) for region in model.regions
    }
    gradients = {
        region.name: _work_gradient(nranks, region.imbalance)
        for region in model.regions
    }
    ranks = np.arange(nranks, dtype=np.int64)
    clocks = np.zeros(nranks, dtype=np.float64)

    for iteration in range(model.iterations):
        for region in model.regions:
            assignment = assignments[region.name]
            gradient = gradients[region.name]
            drift = (1.0 + region.work_drift_per_iter) ** iteration
            cpi_drift = (1.0 + region.cpi_drift_per_iter) ** iteration
            for _repeat in range(region.repeats):
                work = (
                    region.point.work_units
                    * gradient
                    * drift
                    * rng.lognormal(0.0, region.work_jitter, nranks)
                )
                instructions = np.empty(nranks)
                cycles = np.empty(nranks)
                l1 = np.empty(nranks)
                l2 = np.empty(nranks)
                tlb = np.empty(nranks)
                for mode_index, mode in enumerate(region.modes):
                    members = assignment == mode_index
                    if not members.any():
                        continue
                    point = replace(
                        region.point,
                        instructions_per_unit=(
                            region.point.instructions_per_unit * mode.instr_scale
                        ),
                        working_set_bytes=(
                            region.point.working_set_bytes * mode.ws_scale
                        ),
                        core_cpi_scale=(
                            region.point.core_cpi_scale * mode.cpi_scale * cpi_drift
                        ),
                    )
                    counters = perf.evaluate_batch(
                        point, work[members] * mode.work_scale
                    )
                    instructions[members] = counters.instructions
                    cycles[members] = counters.cycles
                    l1[members] = counters.l1_misses
                    l2[members] = counters.l2_misses
                    tlb[members] = counters.tlb_misses
                # Achieved-cycles jitter: instructions stay exact, so the
                # noise shows up as IPC variability, as on real hardware.
                cycle_noise = rng.lognormal(0.0, region.cycle_jitter, nranks)
                cycles *= cycle_noise
                miss_noise = rng.lognormal(0.0, 0.02, nranks)
                l1 *= miss_noise
                l2 *= miss_noise
                tlb *= miss_noise
                durations = cycles / model.machine.clock_hz

                builder.add_block(
                    rank=ranks,
                    begin=clocks.copy(),
                    duration=durations,
                    callpath=region.callpath,
                    counters=np.column_stack([instructions, cycles, l1, l2, tlb]),
                )
                # Advance per-rank clocks past the burst and its MPI time,
                # then synchronise at the barrier closing the phase.
                clocks += durations * (1.0 + model.comm_fraction)
                clocks[:] = clocks.max()
    trace = builder.build()
    obs.count("apps.bursts_total", trace.n_bursts)
    return trace
