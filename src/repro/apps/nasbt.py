"""NAS BT — block-tridiagonal solver of the NAS Parallel Benchmarks.

Paper section 4.2: BT v2.3 at 16 processes on MareNostrum with growing
problem classes W, A, B, C (roughly 4x size per step).  Six computing
regions are tracked.  Modelled behaviours (Figures 9-10):

- per-process instructions grow with the grid volume, spanning about
  two orders of magnitude from W to C;
- the three solvers and the RHS assembly (regions 1, 2, 4, 5) carry a
  large working set that blows past L2 already at class A: their IPC
  drops 40-65 % from W to A and then stabilises;
- the two lighter regions (3, 6) cross L2 capacity gradually: their IPC
  keeps falling until class B;
- class W shows large IPC variability (tiny problem, noisy timing);
- L2 data-cache misses per process rise in step with the IPC losses.
"""

from __future__ import annotations

from repro.apps.base import AppModel, RegionSpec
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, Machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["build", "CLASS_GRID"]

#: Grid edge length per NAS class (true BT values).
CLASS_GRID: dict[str, int] = {"W": 24, "A": 64, "B": 102, "C": 162}

#: (name, file, line, work coefficient, core CPI scale, memory accesses
#: per unit, heavy working set).  Heavy regions keep ~6x the per-cell
#: state resident (block factors), so their working sets blast past L2
#: already at class A.
_REGIONS: tuple[tuple[str, str, int, float, float, float, bool], ...] = (
    ("x_solve", "x_solve.f", 41, 1.00, 1.00, 1.0, True),
    ("y_solve", "y_solve.f", 41, 0.85, 1.40, 1.3, True),
    ("compute_rhs", "rhs.f", 22, 0.72, 0.90, 1.0, False),
    ("z_solve", "z_solve.f", 41, 0.55, 2.00, 1.6, True),
    ("exact_rhs", "exact_rhs.f", 20, 0.40, 1.55, 0.8, True),
    ("add", "add.f", 16, 0.25, 1.35, 1.0, False),
)

_INSTR_PER_UNIT = 30.0
_BYTES_PER_CELL = 40.0  # five 8-byte solution variables
_HEAVY_WS_FACTOR = 6.0


def build(
    problem_class: str = "A",
    *,
    ranks: int = 16,
    iterations: int = 8,
    machine: Machine = MARENOSTRUM,
) -> AppModel:
    """Build the NAS BT model for one problem class."""
    try:
        grid = CLASS_GRID[problem_class]
    except KeyError as exc:
        raise ModelError(
            f"unknown NAS class {problem_class!r}; choose from {sorted(CLASS_GRID)}"
        ) from exc
    cells_per_rank = grid**3 / ranks
    # Small problems run noisily (paper: "Class W also presents large
    # variability in IPC").
    cycle_jitter = 0.08 if problem_class == "W" else 0.02

    regions = []
    for name, file, line, coefficient, cpi, mem_per_unit, heavy in _REGIONS:
        ws = cells_per_rank * _BYTES_PER_CELL
        if heavy:
            ws *= _HEAVY_WS_FACTOR
        regions.append(
            RegionSpec(
                name=name,
                callpath=CallPath.single(name, file, line),
                point=WorkloadPoint(
                    work_units=cells_per_rank * coefficient,
                    instructions_per_unit=_INSTR_PER_UNIT,
                    memory_accesses_per_unit=mem_per_unit,
                    working_set_bytes=ws,
                    bandwidth_demand_gbs=0.8,
                    core_cpi_scale=cpi,
                ),
                work_jitter=0.01,
                cycle_jitter=cycle_jitter,
            )
        )
    return AppModel(
        name="NAS-BT",
        nranks=ranks,
        regions=tuple(regions),
        iterations=iterations,
        machine=machine,
        scenario={"class": problem_class},
    )
