"""Synthetic SPMD application workloads.

The paper's experiments trace nine real MPI applications.  We cannot
run WRF or Gromacs here, so each application is modelled as a synthetic
SPMD program: an ordered list of code regions executed every iteration,
each described machine-independently (work units, instructions and
memory accesses per unit, working set, imbalance, behavioural modes)
and rendered into hardware counters by :mod:`repro.machine`.  Running a
model produces a :class:`~repro.trace.trace.Trace` indistinguishable —
for the tracker's purposes — from a real burst-level trace.

Each application module exposes ``build(**scenario)`` returning an
:class:`~repro.apps.base.AppModel`; the :mod:`~repro.apps.registry`
maps application names to their builders.
"""

from __future__ import annotations

from repro.apps import (
    cgpop,
    gadget,
    gromacs,
    hydroc,
    mrgenesis,
    nasbt,
    nasft,
    quantum_espresso,
    wrf,
)
from repro.apps.base import AppModel, Mode, RegionSpec
from repro.apps.registry import APP_BUILDERS, build_app
from repro.apps.runner import run_app

__all__ = [
    "AppModel",
    "RegionSpec",
    "Mode",
    "run_app",
    "APP_BUILDERS",
    "build_app",
    "wrf",
    "cgpop",
    "nasbt",
    "nasft",
    "mrgenesis",
    "hydroc",
    "gadget",
    "quantum_espresso",
    "gromacs",
]
