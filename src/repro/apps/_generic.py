"""Shared helpers for the lighter application models.

The Table 2 case studies that the paper does not dissect in detail
(Gadget, Quantum Espresso, Gromacs, NAS FT) are modelled with a common
vocabulary: stacks of well-separated regions plus, where the paper's
coverage figure demands it, *crossing-mode* regions whose two
behavioural modes swap positions between scenarios.  Crossing modes are
the controlled way to produce objects the tracking heuristics cannot
tell apart — they share one call path, one sequence slot and
overlapping trajectories, so the tracker (correctly) groups them into a
wide relation, lowering coverage below 100 % exactly as the paper
reports for these applications.
"""

from __future__ import annotations

from repro.apps.base import Mode, RegionSpec
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["simple_region", "crossing_region"]


def simple_region(
    name: str,
    file: str,
    line: int,
    *,
    instructions: float,
    cpi_scale: float,
    instr_per_unit: float = 50.0,
    imbalance: float = 0.04,
    cycle_jitter: float = 0.015,
    cpi_drift_per_iter: float = 0.0,
) -> RegionSpec:
    """One stable single-mode region with *instructions* per burst."""
    return RegionSpec(
        name=name,
        callpath=CallPath.single(name, file, line),
        point=WorkloadPoint(
            work_units=instructions / instr_per_unit,
            instructions_per_unit=instr_per_unit,
            memory_accesses_per_unit=0.4,
            working_set_bytes=64 * 1024,
            bandwidth_demand_gbs=0.3,
            core_cpi_scale=cpi_scale,
        ),
        imbalance=imbalance,
        work_jitter=0.008,
        cycle_jitter=cycle_jitter,
        cpi_drift_per_iter=cpi_drift_per_iter,
    )


def crossing_region(
    name: str,
    file: str,
    line: int,
    *,
    instructions: float,
    cpi_center: float,
    cpi_delta: float,
    instr_per_unit: float = 50.0,
) -> RegionSpec:
    """A bimodal region whose modes sit at ``cpi_center -+ cpi_delta``.

    Shrink *cpi_delta* towards zero in another scenario to make the two
    modes coalesce into a single object there: the tracker then (again,
    correctly) relates both original objects to the merged one as a
    grouped relation ``{a1, a2} == {b}``, which is precisely what drags
    the paper's coverage below 100 % for Gadget, Quantum ESPRESSO and
    the 20-image Gromacs study — nearby objects "that the tracking
    heuristics could not distinguish as separate individuals".
    """
    return RegionSpec(
        name=name,
        callpath=CallPath.single(name, file, line),
        point=WorkloadPoint(
            work_units=instructions / instr_per_unit,
            instructions_per_unit=instr_per_unit,
            memory_accesses_per_unit=0.4,
            working_set_bytes=64 * 1024,
            bandwidth_demand_gbs=0.3,
            core_cpi_scale=1.0,
        ),
        modes=(
            Mode(weight=0.5, cpi_scale=max(cpi_center - cpi_delta, 1e-6)),
            Mode(weight=0.5, cpi_scale=cpi_center + cpi_delta),
        ),
        work_jitter=0.008,
        cycle_jitter=0.012,
    )
