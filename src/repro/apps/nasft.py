"""NAS FT — 3-D FFT kernel of the NAS Parallel Benchmarks.

Table 2 row: 15 input images, 2 tracked regions, 100 % coverage.  This
case exercises the paper's *evolutionary* use of tracking: instead of
separate experiments, the images are consecutive time intervals of one
long run, whose performance drifts as the run progresses (allocator
fragmentation degrading locality).  Two behaviours — the FFT compute
and the all-to-all transpose packing — are tracked across all windows.

Use :func:`build` for the long run and :func:`window_traces` to slice
its trace into the per-interval traces that become frames.
"""

from __future__ import annotations

import numpy as np

from repro.apps._generic import simple_region
from repro.apps.base import AppModel
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, Machine
from repro.trace.filters import filter_time_window
from repro.trace.trace import Trace

__all__ = ["build", "window_traces"]


def build(
    *,
    ranks: int = 32,
    iterations: int = 45,
    machine: Machine = MARENOSTRUM,
) -> AppModel:
    """Build the single long-running NAS FT model."""
    regions = (
        simple_region(
            "fft_compute",
            "fft3d.f",
            210,
            instructions=8.0e8,
            cpi_scale=1.10,
            cpi_drift_per_iter=0.004,
        ),
        simple_region(
            "transpose_pack",
            "transpose.f",
            95,
            instructions=3.0e8,
            cpi_scale=1.80,
            cpi_drift_per_iter=0.006,
        ),
    )
    return AppModel(
        name="NAS-FT",
        nranks=ranks,
        regions=regions,
        iterations=iterations,
        machine=machine,
        scenario={"steps": iterations},
    )


def window_traces(trace: Trace, n_windows: int = 15) -> list[Trace]:
    """Slice one long trace into *n_windows* equal time intervals.

    Each slice keeps the full metadata plus a ``window`` scenario key,
    so downstream frames are labelled by interval.
    """
    if n_windows < 1:
        raise ModelError(f"n_windows must be >= 1, got {n_windows}")
    if trace.n_bursts == 0:
        raise ModelError("cannot window an empty trace")
    start = float(trace.begin.min())
    end = float(trace.end.max())
    edges = np.linspace(start, end, n_windows + 1)
    windows: list[Trace] = []
    for index in range(n_windows):
        hi = edges[index + 1] if index < n_windows - 1 else end + 1.0
        piece = filter_time_window(trace, edges[index], hi)
        piece.scenario["window"] = index
        windows.append(piece)
    return windows
