"""Quantum ESPRESSO — plane-wave DFT electronic-structure code.

Table 2 row: 2 input images, 6 tracked regions, 66 % coverage.  The two
scenarios are SCF configurations with different FFT grid mappings.
Three regions are stable; three more (the FFT scatter/gather family)
are bimodal in one configuration and homogeneous in the other, so each
contributes a pair of objects the tracker must group with the merged
counterpart: 9 identifiable objects, 3 + 3 = 6 tracked relations,
coverage 66 %.
"""

from __future__ import annotations

from repro.apps._generic import crossing_region, simple_region
from repro.apps.base import AppModel
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, Machine

__all__ = ["build"]


def build(
    configuration: int = 0,
    *,
    ranks: int = 64,
    iterations: int = 6,
    machine: Machine = MARENOSTRUM,
) -> AppModel:
    """Build the Quantum ESPRESSO model for one SCF configuration."""
    if configuration not in (0, 1):
        raise ModelError(f"configuration must be 0 or 1, got {configuration}")
    sign = 1.0 if configuration == 0 else 0.0
    drift = 1.0 + 0.05 * configuration
    regions = (
        simple_region(
            "h_psi", "h_psi.f90", 120, instructions=9.5e8, cpi_scale=1.15 * drift
        ),
        crossing_region(
            "fft_scatter_x",
            "fft_parallel.f90",
            301,
            instructions=7.6e8,
            cpi_center=1.55,
            cpi_delta=0.22 * sign,
        ),
        simple_region(
            "cdiaghg", "cdiaghg.f90", 88, instructions=5.9e8, cpi_scale=2.05 * drift
        ),
        crossing_region(
            "fft_scatter_y",
            "fft_parallel.f90",
            355,
            instructions=4.4e8,
            cpi_center=1.40,
            cpi_delta=0.20 * sign,
        ),
        simple_region(
            "sum_band", "sum_band.f90", 204, instructions=3.1e8, cpi_scale=0.95 * drift
        ),
        crossing_region(
            "fft_scatter_z",
            "fft_parallel.f90",
            410,
            instructions=2.0e8,
            cpi_center=1.70,
            cpi_delta=0.24 * sign,
        ),
    )
    return AppModel(
        name="QuantumESPRESSO",
        nranks=ranks,
        regions=regions,
        iterations=iterations,
        machine=machine,
        scenario={"configuration": configuration},
    )
