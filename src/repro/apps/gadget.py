"""Gadget — cosmological N-body / SPH simulation.

Table 2 row: 2 input images, 8 tracked regions, 88 % coverage.  The two
scenarios are consecutive simulation snapshots (early/late redshift).
Seven regions evolve smoothly; the tree-walk region is bimodal in the
early snapshot (interior versus boundary rank groups) and homogenises
as the particles cluster, so its two objects coalesce into one in the
late snapshot.  The tracker groups them — ``{a, a'} == {b}`` — giving
9 identifiable objects, 8 tracked relations, coverage 88 %.
"""

from __future__ import annotations

from repro.apps._generic import crossing_region, simple_region
from repro.apps.base import AppModel
from repro.errors import ModelError
from repro.machine.machine import MARENOSTRUM, Machine

__all__ = ["build"]

_STABLE = (
    # (name, file, line, instructions, cpi_scale)
    ("force_tree", "forcetree.c", 410, 9.0e8, 1.30),
    ("density_sph", "density.c", 256, 7.2e8, 1.75),
    ("hydra_accel", "hydra.c", 188, 5.6e8, 1.10),
    ("domain_decomp", "domain.c", 92, 4.2e8, 2.10),
    ("gravity_pm", "pm_periodic.c", 301, 3.1e8, 1.50),
    ("timestep_kick", "timestep.c", 77, 2.2e8, 0.95),
    ("io_buffering", "io.c", 133, 1.4e8, 1.85),
)


def build(
    snapshot: int = 0,
    *,
    ranks: int = 64,
    iterations: int = 6,
    machine: Machine = MARENOSTRUM,
) -> AppModel:
    """Build the Gadget model for one snapshot (0 = early, 1 = late)."""
    if snapshot not in (0, 1):
        raise ModelError(f"snapshot must be 0 or 1, got {snapshot}")
    regions = [
        simple_region(
            name,
            file,
            line,
            instructions=instr * (1.0 + 0.03 * snapshot),
            cpi_scale=cpi * (1.0 + 0.04 * snapshot),
        )
        for name, file, line, instr, cpi in _STABLE
    ]
    regions.append(
        crossing_region(
            "tree_walk",
            "forcetree.c",
            864,
            instructions=6.4e8,
            cpi_center=1.55,
            cpi_delta=0.22 if snapshot == 0 else 0.0,
        )
    )
    # Keep execution order stable across snapshots.
    regions.sort(key=lambda region: region.name)
    return AppModel(
        name="Gadget",
        nranks=ranks,
        regions=tuple(regions),
        iterations=iterations,
        machine=machine,
        scenario={"snapshot": snapshot},
    )
