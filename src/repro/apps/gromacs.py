"""Gromacs — molecular dynamics.

Gromacs appears twice in the paper's Table 2:

- a **3-image study** (here: a process-count sweep) with 5 tracked
  regions at 100 % coverage — five well-separated behaviours that the
  tracker follows univocally;
- a **20-image study** (here: consecutive time windows of a long run)
  with 4 tracked regions at 80 % coverage — the non-bonded kernel is
  bimodal and its modes drift across each other over time, so the
  tracker groups them into one wide relation (4 tracked out of 5
  identifiable).
"""

from __future__ import annotations

from repro.apps._generic import crossing_region, simple_region
from repro.apps.base import AppModel
from repro.errors import ModelError
from repro.machine.machine import MINOTAURO, Machine

__all__ = ["build", "build_window"]

_STABLE = (
    # (name, file, line, instructions, cpi_scale)
    ("nonbonded_inner", "nb_kernel.c", 512, 8.8e8, 1.05),
    ("pme_spread", "pme.c", 240, 6.4e8, 1.60),
    ("bonded_forces", "bondfree.c", 130, 4.6e8, 1.30),
    ("constraints_lincs", "clincs.c", 77, 3.2e8, 1.95),
    ("neighbor_search", "ns.c", 420, 2.0e8, 0.90),
)


def build(
    ranks: int = 24,
    *,
    iterations: int = 6,
    machine: Machine = MINOTAURO,
    base_ranks: int = 24,
) -> AppModel:
    """3-image study scenario: Gromacs at a given process count.

    Work per process divides with the process count; behaviours stay
    well separated so the tracker resolves all five regions.
    """
    scale = base_ranks / ranks
    regions = tuple(
        simple_region(
            name,
            file,
            line,
            instructions=instr * scale,
            cpi_scale=cpi * (1.0 + 0.02 * (ranks / base_ranks - 1.0)),
        )
        for name, file, line, instr, cpi in _STABLE
    )
    return AppModel(
        name="Gromacs",
        nranks=ranks,
        regions=regions,
        iterations=iterations,
        machine=machine,
        scenario={"tasks": ranks},
    )


def build_window(
    window: int,
    *,
    n_windows: int = 20,
    ranks: int = 24,
    iterations: int = 5,
    machine: Machine = MINOTAURO,
) -> AppModel:
    """20-image study scenario: one time window of a long Gromacs run.

    Four behaviours are stable (with a gentle thermal drift); the
    non-bonded kernel is bimodal, and its two modes slide across each
    other as the particle distribution evolves — around the crossing the
    displacement evaluator cannot keep them apart, so the pair collapses
    to one tracked region for the whole sequence.
    """
    if not 0 <= window < n_windows:
        raise ModelError(f"window must be in [0, {n_windows}), got {window}")
    progress = window / max(n_windows - 1, 1)
    drift = 1.0 + 0.06 * progress
    regions = [
        simple_region(
            name,
            file,
            line,
            instructions=instr,
            cpi_scale=cpi * drift,
        )
        for name, file, line, instr, cpi in _STABLE[1:4]
    ]
    # The bimodal kernel: mode separation shrinks, crosses zero and
    # reopens with the opposite sign over the 20 windows.
    delta = 0.18 - 0.36 * progress
    regions.append(
        crossing_region(
            "nonbonded_inner",
            "nb_kernel.c",
            512,
            instructions=8.8e8,
            cpi_center=1.15,
            cpi_delta=delta if abs(delta) > 1e-9 else 1e-9,
        )
    )
    regions.sort(key=lambda region: region.name)
    return AppModel(
        name="Gromacs",
        nranks=ranks,
        regions=tuple(regions),
        iterations=iterations,
        machine=machine,
        scenario={"window": window},
    )
