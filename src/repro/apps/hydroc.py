"""HydroC / HYDRO — 2-D Godunov hydrodynamics proxy of RAMSES.

Paper section 4.4: HYDRO on MinoTauro, varying the computation block
size.  The domain is a rectangular 2-D space split in square blocks of
8-byte elements, so a block of edge *b* occupies ``b^2 * 8`` bytes —
at b = 64 that is exactly the 32 KB L1 data cache.  Modelled behaviours
(Figure 12):

- one single computing phase with **bimodal** behaviour, yielding two
  tracked regions (different work and IPC across rank groups);
- instruction counts fall 1-3 % per block-size doubling (less per-block
  control overhead) and flatten beyond b = 32;
- IPC declines ~5 % (Region 1) and ~10 % (Region 2) in total, with a
  sharp dip between b = 64 and b = 128 where the block working set
  stops fitting in L1;
- L1 data-cache misses jump ~40 % at that same transition.

The outer cache levels see the *streamed* per-rank domain (constant
across block sizes), so the dip is an L1-capacity effect only — which
is the paper's own explanation.
"""

from __future__ import annotations

from repro.apps.base import AppModel, Mode, RegionSpec
from repro.errors import ModelError
from repro.machine.machine import MINOTAURO, Machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["build", "BLOCK_SIZES"]

#: The sweep used for the paper's Table 2 row (12 input images).  The
#: text quotes doublings "from 4 to 1024"; Table 2 lists 12 images, so
#: we extend the doubling one step on each side.
BLOCK_SIZES: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

_INSTR_PER_UNIT_BASE = 50.0
#: Per-block control overhead: instructions per cell shrink as blocks
#: grow, flattening past b = 32 (paper Fig. 12a).
_CONTROL_OVERHEAD = 0.15
_CELLS_PER_RANK = 2.0e6
_DOMAIN_BYTES_PER_RANK = _CELLS_PER_RANK * 8.0 * 4  # four state arrays
#: Fraction of a block that stays hot between sweeps (the rest is
#: overwritten before reuse), placing the L1 capacity crossing between
#: block sizes 64 and 128.
_HOT_BLOCK_FRACTION = 0.5
#: Reuse accesses per cell (subject to the blocking working set).
_REUSE_PER_CELL = 0.08
#: Streaming accesses per cell (compulsory sweep of the whole domain).
_STREAM_PER_CELL = 0.4


def build(
    block_size: int = 64,
    *,
    ranks: int = 16,
    iterations: int = 8,
    machine: Machine = MINOTAURO,
) -> AppModel:
    """Build the HydroC model for one block size."""
    if block_size < 1:
        raise ModelError(f"block_size must be >= 1, got {block_size}")
    instr_per_unit = _INSTR_PER_UNIT_BASE * (1.0 + _CONTROL_OVERHEAD / block_size)
    # L1 reuse set: the hot part of one 2-D block of 8-byte elements.
    inner_ws = _HOT_BLOCK_FRACTION * (block_size**2) * 8.0
    region = RegionSpec(
        name="hydro_godunov",
        callpath=CallPath.single("hydro_godunov", "hydro_godunov.c", 153),
        point=WorkloadPoint(
            work_units=_CELLS_PER_RANK,
            instructions_per_unit=instr_per_unit,
            memory_accesses_per_unit=_REUSE_PER_CELL,
            working_set_bytes=inner_ws,
            streaming_accesses_per_unit=_STREAM_PER_CELL,
            outer_working_set_bytes=_DOMAIN_BYTES_PER_RANK,
            bandwidth_demand_gbs=1.0,
            core_cpi_scale=1.0,
        ),
        # The single phase behaves bimodally: one rank group runs the
        # full Riemann solve, the other takes the cheaper passive branch
        # — two clusters, one call path (paper: "a single computing
        # phase with bimodal behavior").
        modes=(
            Mode(weight=0.5, work_scale=1.0, cpi_scale=1.0),
            Mode(weight=0.5, work_scale=0.55, cpi_scale=0.72),
        ),
        work_jitter=0.008,
        cycle_jitter=0.012,
    )
    return AppModel(
        name="HydroC",
        nranks=ranks,
        regions=(region,),
        iterations=iterations,
        machine=machine,
        scenario={"block_size": block_size},
    )
