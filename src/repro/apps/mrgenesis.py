"""MR-Genesis — relativistic magneto-hydrodynamics finite-volume code.

Paper section 4.3: 12 MPI processes on MinoTauro, varying the number of
processes placed per node from 1 (twelve exclusive nodes) to 12 (one
full node).  Modelled behaviours (Figure 11):

- instruction counts are constant across trials (only the mapping
  changes);
- IPC slides gently (< 1.5 % per step) while aggregate memory demand
  stays within the node's bandwidth, then drops sharply once demand
  exceeds capacity around 2/3 occupation, totalling ~17.5 % at 12
  processes per node;
- L2 cache misses grow inversely to IPC and TLB misses climb as the
  node fills (shared-cache and TLB pressure).
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.base import AppModel, RegionSpec
from repro.errors import ModelError
from repro.machine.contention import NodeContentionModel
from repro.machine.machine import MINOTAURO, Machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["build"]

#: MinoTauro with the contention knobs of the MR-Genesis study: the
#: bandwidth knee sits just above 8 co-located processes and shared-
#: cache pressure inflates effective working sets as the node fills.
_MRG_MACHINE = replace(
    MINOTAURO,
    contention=NodeContentionModel(
        node_bandwidth_gbs=21.0,
        interference_per_process=0.004,
        overload_exponent=0.3,
        saturation_jump=0.15,
        cache_pressure_per_process=0.02,
    ),
)

_INSTR_PER_UNIT = 40.0


def build(
    tasks_per_node: int = 1,
    *,
    ranks: int = 12,
    iterations: int = 10,
    machine: Machine | None = None,
) -> AppModel:
    """Build the MR-Genesis model for one node-occupation level."""
    machine = machine if machine is not None else _MRG_MACHINE
    if not 1 <= tasks_per_node <= machine.cores_per_node:
        raise ModelError(
            f"tasks_per_node must be in [1, {machine.cores_per_node}], "
            f"got {tasks_per_node}"
        )
    common = dict(
        instructions_per_unit=_INSTR_PER_UNIT,
        memory_accesses_per_unit=1.0,
        working_set_bytes=400 * 1024,
        bandwidth_demand_gbs=2.5,
    )
    regions = (
        RegionSpec(
            name="riemann_solver",
            callpath=CallPath.single("riemann_hlld", "solver.F90", 214),
            point=WorkloadPoint(work_units=6.0e6, core_cpi_scale=1.0, **common),
            work_jitter=0.008,
            cycle_jitter=0.012,
        ),
        RegionSpec(
            name="constrained_transport",
            callpath=CallPath.single("ct_update", "ct.F90", 88),
            point=WorkloadPoint(work_units=3.4e6, core_cpi_scale=1.35, **common),
            work_jitter=0.008,
            cycle_jitter=0.012,
        ),
    )
    return AppModel(
        name="MR-Genesis",
        nranks=ranks,
        regions=regions,
        iterations=iterations,
        machine=machine,
        processes_per_node=tasks_per_node,
        scenario={"tasks_per_node": tasks_per_node},
    )
