"""The synthetic SPMD application framework.

An :class:`AppModel` is an ordered list of :class:`RegionSpec` code
regions executed once (or ``repeats`` times) per iteration by every
rank — the canonical bulk-synchronous SPMD shape of the paper's
workloads.  Each region carries:

- a machine-independent :class:`~repro.machine.perfmodel.WorkloadPoint`
  describing its computation;
- one or more behavioural :class:`Mode` variants — a region with two
  modes produces two clusters in the performance space, the paper's
  *bimodal* behaviour;
- imbalance and jitter parameters controlling how the work distributes
  across ranks and repetitions.

The runner (:mod:`repro.apps.runner`) turns a model into a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ModelError
from repro.machine.compiler import CompilerModel, GFORTRAN
from repro.machine.machine import MINOTAURO, Machine
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["Mode", "RegionSpec", "AppModel"]


@dataclass(frozen=True, slots=True)
class Mode:
    """One behavioural variant of a region.

    A region with a single mode forms one cluster; several modes split
    the region into several clusters (bimodal behaviour).  Modes are
    assigned to contiguous rank blocks proportionally to their weights —
    the typical domain-decomposition pattern where boundary processes
    behave differently from interior ones.

    Attributes
    ----------
    weight:
        Fraction of ranks executing this mode (weights are normalised).
    work_scale:
        Work-units multiplier (vertical displacement: more or fewer
        instructions).
    cpi_scale:
        Core-CPI multiplier (horizontal displacement: higher or lower
        IPC).
    ws_scale:
        Working-set multiplier (IPC displacement through the memory
        hierarchy).
    instr_scale:
        Instructions-per-unit multiplier (e.g. extra control overhead).
    """

    weight: float = 1.0
    work_scale: float = 1.0
    cpi_scale: float = 1.0
    ws_scale: float = 1.0
    instr_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ModelError("mode weight must be > 0")
        for name in ("work_scale", "cpi_scale", "ws_scale", "instr_scale"):
            if getattr(self, name) <= 0:
                raise ModelError(f"mode {name} must be > 0")


@dataclass(frozen=True, slots=True)
class RegionSpec:
    """One code region of a synthetic application.

    Attributes
    ----------
    name:
        Region label (used in scenario reports, not by the tracker).
    callpath:
        Source reference every burst of the region records.  Distinct
        regions may intentionally share a call path (one routine with
        multiple behaviours).
    point:
        Machine-independent workload of one burst *per rank* — the
        ``work_units`` field is the per-rank work.
    modes:
        Behavioural variants (see :class:`Mode`).
    repeats:
        How many times the region executes per iteration.
    imbalance:
        Amplitude of a linear work gradient across ranks: rank 0 gets
        ``1 - imbalance/2`` of the nominal work, the last rank
        ``1 + imbalance/2`` (vertical stretching in the frame).
    work_jitter:
        Log-normal sigma of per-burst work noise.
    cycle_jitter:
        Log-normal sigma of per-burst cycle noise (horizontal
        stretching: IPC variability at constant instructions).
    work_drift_per_iter:
        Relative work change per iteration — lets a single experiment
        evolve over time for interval-based studies.
    cpi_drift_per_iter:
        Relative core-CPI change per iteration (IPC drifting over time
        within one experiment).
    """

    name: str
    callpath: CallPath
    point: WorkloadPoint
    modes: tuple[Mode, ...] = (Mode(),)
    repeats: int = 1
    imbalance: float = 0.0
    work_jitter: float = 0.01
    cycle_jitter: float = 0.015
    work_drift_per_iter: float = 0.0
    cpi_drift_per_iter: float = 0.0

    def __post_init__(self) -> None:
        if not self.modes:
            raise ModelError(f"region {self.name!r} needs at least one mode")
        if self.repeats < 1:
            raise ModelError(f"region {self.name!r}: repeats must be >= 1")
        if self.imbalance < 0:
            raise ModelError(f"region {self.name!r}: imbalance must be >= 0")
        if self.work_jitter < 0 or self.cycle_jitter < 0:
            raise ModelError(f"region {self.name!r}: jitters must be >= 0")

    def with_point(self, **changes: Any) -> "RegionSpec":
        """Copy of the region with fields of its workload point replaced."""
        return replace(self, point=replace(self.point, **changes))


@dataclass(frozen=True, slots=True)
class AppModel:
    """A complete synthetic application in one execution scenario.

    Attributes
    ----------
    name:
        Application name (trace metadata).
    nranks:
        MPI process count.
    regions:
        Ordered regions executed each iteration.
    iterations:
        Number of outer iterations to simulate.
    machine / compiler / processes_per_node:
        Hardware context handed to the performance model;
        ``processes_per_node`` defaults to filling nodes.
    scenario:
        Free-form scenario parameters recorded in the trace metadata.
    comm_fraction:
        MPI time between bursts as a fraction of the preceding burst
        duration (affects timestamps only, not counters).
    """

    name: str
    nranks: int
    regions: tuple[RegionSpec, ...]
    iterations: int = 8
    machine: Machine = MINOTAURO
    compiler: CompilerModel = GFORTRAN
    processes_per_node: int | None = None
    scenario: Mapping[str, Any] = field(default_factory=dict)
    comm_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ModelError("nranks must be >= 1")
        if not self.regions:
            raise ModelError("an application needs at least one region")
        if self.iterations < 1:
            raise ModelError("iterations must be >= 1")
        if self.comm_fraction < 0:
            raise ModelError("comm_fraction must be >= 0")
        ppn = self.effective_processes_per_node
        if ppn > self.machine.cores_per_node:
            raise ModelError(
                f"processes_per_node={ppn} exceeds {self.machine.name}'s "
                f"{self.machine.cores_per_node} cores per node"
            )

    @property
    def effective_processes_per_node(self) -> int:
        """Node occupation: explicit value or fill-the-node default."""
        if self.processes_per_node is not None:
            return self.processes_per_node
        return min(self.nranks, self.machine.cores_per_node)

    def run(self, seed: int = 0):
        """Simulate the application and return its trace.

        Convenience wrapper over :func:`repro.apps.runner.run_app`.
        """
        from repro.apps.runner import run_app

        return run_app(self, seed=seed)
