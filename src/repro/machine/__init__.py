"""Machine models: the hardware substrate the paper ran on, simulated.

The paper's experiments ran on two BSC clusters — MareNostrum (IBM
PowerPC 970MP) and MinoTauro (Intel Xeon E5649).  We have neither, so
this subpackage provides analytic models that reproduce the *mechanisms*
behind the performance effects the paper observes:

- :mod:`~repro.machine.cache` — capacity-driven cache miss-rate model
  (HydroC's L1 dip at 32 KB working sets, NAS BT's L2 growth).
- :mod:`~repro.machine.tlb` — TLB reach model.
- :mod:`~repro.machine.contention` — shared-node memory-bandwidth
  contention (MR-Genesis' knee at ~2/3 node occupation).
- :mod:`~repro.machine.compiler` — compiler code-generation effects
  (vendor compilers executing fewer instructions at lower IPC).
- :mod:`~repro.machine.machine` — machine presets for both clusters.
- :mod:`~repro.machine.perfmodel` — the combined model mapping abstract
  work (units, working set, memory intensity) to hardware counters.
"""

from __future__ import annotations

from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.calibration import CalibratedMachine, calibrate, stall_breakdown
from repro.machine.compiler import (
    COMPILERS,
    CompilerModel,
    GFORTRAN,
    IFORT,
    XLF,
    get_compiler,
)
from repro.machine.contention import NodeContentionModel
from repro.machine.machine import MACHINES, MARENOSTRUM, MINOTAURO, Machine, get_machine
from repro.machine.perfmodel import BurstCounters, PerformanceModel, WorkloadPoint
from repro.machine.tlb import TLBModel

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "CalibratedMachine",
    "calibrate",
    "stall_breakdown",
    "TLBModel",
    "NodeContentionModel",
    "CompilerModel",
    "GFORTRAN",
    "XLF",
    "IFORT",
    "COMPILERS",
    "get_compiler",
    "Machine",
    "MARENOSTRUM",
    "MINOTAURO",
    "MACHINES",
    "get_machine",
    "PerformanceModel",
    "WorkloadPoint",
    "BurstCounters",
]
