"""Shared-node memory-bandwidth and cache contention model.

The MR-Genesis study (paper section 4.3) keeps the process count fixed
at 12 and varies how many of those processes share a node.  Instruction
counts stay constant; IPC degrades as nodes fill because co-located
processes compete for memory bandwidth, the shared last-level cache and
TLB-backing structures.  The paper observes a gentle slope (< 1.5 % per
added process) up to ~66 % node occupation and sharper drops beyond,
totalling ~17.5 % at full occupation.

The model reproduces that mechanism: each process demands a fraction of
the node's sustainable memory bandwidth.  While aggregate demand stays
below capacity, processes only pay a small interference cost (shared
cache pollution).  Once demand exceeds capacity, memory stalls stretch
proportionally to the overload, producing the knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["NodeContentionModel"]


@dataclass(frozen=True, slots=True)
class NodeContentionModel:
    """Memory-system interference between processes sharing a node.

    Attributes
    ----------
    node_bandwidth_gbs:
        Sustainable node memory bandwidth (GB/s).
    interference_per_process:
        Fractional slowdown of memory stalls per *additional* co-located
        process, modelling shared-cache pollution below the bandwidth
        knee (e.g. 0.004 = 0.4 % per neighbour).
    overload_exponent:
        How stalls keep growing once aggregate demand exceeds the node
        bandwidth (1 = proportional queueing; < 1 models demand
        self-throttling under saturation).
    saturation_jump:
        Immediate fractional stall increase when aggregate demand first
        exceeds the node bandwidth — the latency cliff where prefetchers
        and memory-controller queues stop hiding DRAM latency.  This is
        what makes the first over-capacity step much larger than the
        following ones (MR-Genesis' single sharp -8.5 % step).
    cache_pressure_per_process:
        Effective working-set inflation per co-located process: shared
        last-level cache and TLB-backing structures are divided among
        neighbours, which behaves as if each process's working set grew
        relative to the capacity it can actually use.  Drives the
        L2/TLB-miss growth the paper reports for MR-Genesis (Fig. 11b).
    """

    node_bandwidth_gbs: float = 20.0
    interference_per_process: float = 0.004
    overload_exponent: float = 1.0
    saturation_jump: float = 0.0
    cache_pressure_per_process: float = 0.0

    def __post_init__(self) -> None:
        if self.node_bandwidth_gbs <= 0:
            raise ModelError("node_bandwidth_gbs must be > 0")
        if self.interference_per_process < 0:
            raise ModelError("interference_per_process must be >= 0")
        if self.overload_exponent <= 0:
            raise ModelError("overload_exponent must be > 0")
        if self.saturation_jump < 0:
            raise ModelError("saturation_jump must be >= 0")
        if self.cache_pressure_per_process < 0:
            raise ModelError("cache_pressure_per_process must be >= 0")

    def effective_working_set(
        self, working_set_bytes: float, processes_per_node: int
    ) -> float:
        """Working set inflated by shared-cache pressure from neighbours."""
        if processes_per_node < 1:
            raise ModelError(
                f"processes_per_node must be >= 1, got {processes_per_node}"
            )
        return working_set_bytes * (
            1.0 + self.cache_pressure_per_process * (processes_per_node - 1)
        )

    def memory_stall_factor(
        self, processes_per_node: int, demand_gbs_per_process: float
    ) -> float:
        """Multiplier applied to a process's memory-stall cycles.

        Parameters
        ----------
        processes_per_node:
            How many processes are co-located on the node (>= 1).
        demand_gbs_per_process:
            Memory bandwidth one process would consume running alone.

        Returns
        -------
        float
            Factor >= 1.  Equals 1 for a process running alone within
            bandwidth capacity; grows mildly with neighbours below the
            knee and steeply once aggregate demand exceeds capacity.
        """
        if processes_per_node < 1:
            raise ModelError(
                f"processes_per_node must be >= 1, got {processes_per_node}"
            )
        if demand_gbs_per_process < 0:
            raise ModelError("demand_gbs_per_process must be >= 0")
        interference = 1.0 + self.interference_per_process * (processes_per_node - 1)
        aggregate = processes_per_node * demand_gbs_per_process
        overload = aggregate / self.node_bandwidth_gbs
        if overload > 1.0:
            queueing = (1.0 + self.saturation_jump) * overload**self.overload_exponent
        else:
            queueing = 1.0
        return interference * queueing

    def effective_bandwidth_gbs(
        self, processes_per_node: int, demand_gbs_per_process: float
    ) -> float:
        """Bandwidth one process actually receives under contention."""
        factor = self.memory_stall_factor(processes_per_node, demand_gbs_per_process)
        return demand_gbs_per_process / factor
