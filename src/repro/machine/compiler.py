"""Compiler code-generation models.

The CGPOP study (paper section 4.1) compares a generic compiler
(gfortran) against the platform vendor's compiler (IBM xlf on
MareNostrum, Intel ifort on MinoTauro).  The paper's observation: the
vendor compilers emit ~30-36 % fewer instructions, but since the
memory traffic of the algorithm is unchanged, the cycles stay roughly
constant — so IPC *drops* in the same proportion and wall time barely
moves (within +-0.03 %).

The model separates the two effects cleanly:

- ``instruction_factor`` scales the instructions emitted per abstract
  work unit (better instruction selection, fused ops, vectorisation).
- ``core_cpi_factor`` scales the core-pipeline CPI component
  (scheduling quality); memory stalls are *not* scaled, because cache
  misses depend on the data, not the code generator.

With fewer instructions carrying the same memory-stall total, IPC falls
out of the model exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["CompilerModel", "GFORTRAN", "XLF", "IFORT", "COMPILERS", "get_compiler"]


@dataclass(frozen=True, slots=True)
class CompilerModel:
    """Effect of one compiler on generated code.

    Attributes
    ----------
    name:
        Compiler label, e.g. ``"gfortran"``.
    instruction_factor:
        Instructions emitted per work unit, relative to the gfortran
        baseline (1.0).  Vendor compilers < 1.
    core_cpi_factor:
        Scaling of the core-pipeline CPI component relative to baseline.
    vendor:
        Whether this is the platform vendor's compiler.
    """

    name: str
    instruction_factor: float = 1.0
    core_cpi_factor: float = 1.0
    vendor: bool = False

    def __post_init__(self) -> None:
        if self.instruction_factor <= 0:
            raise ModelError(f"{self.name}: instruction_factor must be > 0")
        if self.core_cpi_factor <= 0:
            raise ModelError(f"{self.name}: core_cpi_factor must be > 0")


#: GNU Fortran — the cross-platform baseline the paper compares against.
GFORTRAN = CompilerModel(name="gfortran", instruction_factor=1.0, core_cpi_factor=1.0)

#: IBM XL Fortran on MareNostrum: ~36 % fewer instructions (paper Table 3),
#: same memory traffic.  The core CPI factor is the reciprocal of the
#: instruction factor: the fused/vectorised instructions each occupy the
#: pipeline proportionally longer, so core cycles per work unit stay
#: constant — which is precisely the paper's observation that execution
#: time barely moves while IPC falls with the instruction count.
XLF = CompilerModel(
    name="xlf", instruction_factor=0.64, core_cpi_factor=1.0 / 0.64, vendor=True
)

#: Intel Fortran on MinoTauro: ~30 % fewer instructions (paper Table 3).
IFORT = CompilerModel(
    name="ifort", instruction_factor=0.70, core_cpi_factor=1.0 / 0.70, vendor=True
)

COMPILERS: dict[str, CompilerModel] = {
    model.name: model for model in (GFORTRAN, XLF, IFORT)
}


def get_compiler(name: str) -> CompilerModel:
    """Look up a compiler preset by name."""
    try:
        return COMPILERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown compiler {name!r}; presets: {sorted(COMPILERS)}"
        ) from exc
