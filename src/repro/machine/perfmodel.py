"""The combined performance model: abstract work -> hardware counters.

Synthetic applications describe each code region in machine-independent
terms — how many abstract *work units* a burst computes, how many
instructions and memory accesses one unit costs, and the working-set
size the scenario implies.  :class:`PerformanceModel` combines that
description with a machine, a compiler and a node-sharing level to
produce the counter vector a real tracing tool would have measured:

.. math::

   \\text{cycles} = I \\cdot \\text{CPI}_{core}
                  + A \\cdot (\\text{cache stalls} + \\text{TLB stalls})
                  \\cdot f_{contention}

where ``I`` is the instruction count (compiler-dependent) and ``A`` the
memory access count (algorithm-dependent, compiler-invariant).  This
separation is what makes the paper's compiler study come out naturally:
vendor compilers shrink ``I`` but not the memory stalls, so IPC falls
while wall time stays put.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ModelError
from repro.machine.compiler import CompilerModel, GFORTRAN
from repro.machine.machine import Machine

__all__ = ["WorkloadPoint", "BurstCounters", "PerformanceModel"]

#: Fraction of streaming-miss latency hidden by hardware prefetchers.
#: Sequential sweeps are the easiest pattern for stride prefetchers, so
#: most of their DRAM latency never reaches the pipeline.
_STREAM_PREFETCH_HIDING = 0.6


@dataclass(frozen=True, slots=True)
class WorkloadPoint:
    """Machine-independent description of one burst's computation.

    Attributes
    ----------
    work_units:
        Abstract work of the burst (grid cells, particles, rows...).
    instructions_per_unit:
        Instructions a baseline compiler emits per work unit.
    memory_accesses_per_unit:
        Data memory accesses per work unit (compiler-invariant).
    working_set_bytes:
        Bytes the burst touches repeatedly — drives cache/TLB miss rates.
    bandwidth_demand_gbs:
        Memory bandwidth the process consumes when running alone, used
        by the node-contention model.
    core_cpi_scale:
        Per-region scaling of the machine's base CPI (regions with long
        dependency chains run above the machine baseline).
    streaming_accesses_per_unit:
        Accesses that sweep the whole per-process domain once (no
        temporal reuse): they miss L1 once per cache line regardless of
        the blocking working set, and their latency is largely hidden by
        hardware prefetching.  This is the compulsory-miss floor that
        keeps blocked codes' L1 miss counts substantial even when the
        block fits — without it, crossing L1 capacity would multiply
        misses by 20x instead of the ~1.4x real stencil codes show.
    outer_working_set_bytes:
        Optional working set the *streaming* traffic and the TLB see
        (the whole per-process domain) when it differs from the reuse
        working set.  ``None`` means one working set drives everything.
    element_bytes:
        Size of one streamed element (sets the per-line compulsory miss
        probability of streaming accesses).
    """

    work_units: float
    instructions_per_unit: float
    memory_accesses_per_unit: float
    working_set_bytes: float
    bandwidth_demand_gbs: float = 0.5
    core_cpi_scale: float = 1.0
    streaming_accesses_per_unit: float = 0.0
    outer_working_set_bytes: float | None = None
    element_bytes: float = 8.0

    def __post_init__(self) -> None:
        if self.work_units < 0:
            raise ModelError("work_units must be >= 0")
        if self.instructions_per_unit <= 0:
            raise ModelError("instructions_per_unit must be > 0")
        if self.memory_accesses_per_unit < 0:
            raise ModelError("memory_accesses_per_unit must be >= 0")
        if self.working_set_bytes < 0:
            raise ModelError("working_set_bytes must be >= 0")
        if self.bandwidth_demand_gbs < 0:
            raise ModelError("bandwidth_demand_gbs must be >= 0")
        if self.core_cpi_scale <= 0:
            raise ModelError("core_cpi_scale must be > 0")
        if self.outer_working_set_bytes is not None and self.outer_working_set_bytes < 0:
            raise ModelError("outer_working_set_bytes must be >= 0")
        if self.streaming_accesses_per_unit < 0:
            raise ModelError("streaming_accesses_per_unit must be >= 0")
        if self.element_bytes <= 0:
            raise ModelError("element_bytes must be > 0")

    def with_work(self, work_units: float) -> "WorkloadPoint":
        """Copy of this point with a different amount of work."""
        return replace(self, work_units=work_units)


@dataclass(frozen=True, slots=True)
class BurstCounters:
    """Hardware counters the model predicts for one burst (or a batch).

    Every field is either a scalar or an array, depending on whether the
    model was evaluated for one burst or a batch of work values.
    """

    instructions: np.ndarray | float
    cycles: np.ndarray | float
    l1_misses: np.ndarray | float
    l2_misses: np.ndarray | float
    tlb_misses: np.ndarray | float
    duration: np.ndarray | float

    @property
    def ipc(self) -> np.ndarray | float:
        """Instructions per cycle."""
        cycles = np.asarray(self.cycles, dtype=np.float64)
        instructions = np.asarray(self.instructions, dtype=np.float64)
        out = np.zeros_like(instructions)
        np.divide(instructions, cycles, out=out, where=cycles != 0)
        if np.isscalar(self.cycles) or (
            isinstance(self.cycles, float) or getattr(self.cycles, "ndim", 1) == 0
        ):
            return float(out)
        return out


class PerformanceModel:
    """Maps :class:`WorkloadPoint` descriptions to hardware counters.

    Parameters
    ----------
    machine:
        The machine preset to evaluate on.
    compiler:
        Compiler model; defaults to the gfortran baseline.
    processes_per_node:
        Co-location level for the contention model (1 = exclusive node).
    """

    def __init__(
        self,
        machine: Machine,
        compiler: CompilerModel = GFORTRAN,
        processes_per_node: int = 1,
    ) -> None:
        if processes_per_node < 1:
            raise ModelError("processes_per_node must be >= 1")
        if processes_per_node > machine.cores_per_node:
            raise ModelError(
                f"processes_per_node={processes_per_node} exceeds "
                f"{machine.name}'s {machine.cores_per_node} cores per node"
            )
        self.machine = machine
        self.compiler = compiler
        self.processes_per_node = processes_per_node

    def __repr__(self) -> str:
        return (
            f"PerformanceModel(machine={self.machine.name!r}, "
            f"compiler={self.compiler.name!r}, "
            f"processes_per_node={self.processes_per_node})"
        )

    def evaluate(self, point: WorkloadPoint) -> BurstCounters:
        """Predict counters for a single burst."""
        batch = self.evaluate_batch(point, np.asarray([point.work_units]))
        return BurstCounters(
            instructions=float(np.asarray(batch.instructions)[0]),
            cycles=float(np.asarray(batch.cycles)[0]),
            l1_misses=float(np.asarray(batch.l1_misses)[0]),
            l2_misses=float(np.asarray(batch.l2_misses)[0]),
            tlb_misses=float(np.asarray(batch.tlb_misses)[0]),
            duration=float(np.asarray(batch.duration)[0]),
        )

    def evaluate_batch(
        self, point: WorkloadPoint, work_units: np.ndarray
    ) -> BurstCounters:
        """Predict counters for many bursts sharing one region description.

        ``work_units`` carries the per-burst work (e.g. one value per
        rank, reflecting imbalance); all other parameters come from
        *point*.  Everything is linear in work, so the batch evaluation
        is fully vectorised.
        """
        work = np.asarray(work_units, dtype=np.float64)
        if np.any(work < 0):
            raise ModelError("work_units must be >= 0")
        machine = self.machine

        instructions = work * point.instructions_per_unit * self.compiler.instruction_factor
        reuse_accesses = work * point.memory_accesses_per_unit
        streaming_accesses = work * point.streaming_accesses_per_unit

        # Co-located neighbours shrink the share of shared caches/TLB a
        # process can use, which acts as an inflated working set.
        ws = machine.contention.effective_working_set(
            point.working_set_bytes, self.processes_per_node
        )
        outer_raw = (
            point.working_set_bytes
            if point.outer_working_set_bytes is None
            else point.outer_working_set_bytes
        )
        outer_ws = machine.contention.effective_working_set(
            outer_raw, self.processes_per_node
        )

        # Reuse traffic: capacity-driven at every level by the blocking
        # working set (misses that fall out of L1 hit L2 while the block
        # fits there, and so on).
        reuse_rates = machine.caches.misses_per_access(ws)
        # Streaming traffic: one compulsory miss per cache line at L1,
        # filtering outwards through the *domain* working set.
        levels = machine.caches.levels
        stream_l1 = min(1.0, point.element_bytes / levels[0].line_bytes)
        stream_rates = [stream_l1]
        for level in levels[1:]:
            stream_rates.append(stream_rates[-1] * float(level.miss_rate(outer_ws)))

        l1_misses = reuse_accesses * reuse_rates[0] + streaming_accesses * stream_rates[0]
        l2_misses = (
            reuse_accesses * reuse_rates[-1] + streaming_accesses * stream_rates[-1]
        )
        tlb_rate = float(machine.tlb.miss_rate(outer_ws))
        tlb_misses = (reuse_accesses + streaming_accesses) * tlb_rate

        contention = machine.contention.memory_stall_factor(
            self.processes_per_node, point.bandwidth_demand_gbs
        )
        core_cycles = (
            instructions
            * machine.base_cpi
            * point.core_cpi_scale
            * self.compiler.core_cpi_factor
        )
        reuse_stall = machine.caches.stall_cycles_per_access(ws) + (
            machine.tlb.stall_cycles_per_access(outer_ws)
        )
        stream_stall = 0.0
        for level, rate in zip(levels, stream_rates):
            stream_stall += rate * level.miss_penalty_cycles
        stream_stall += stream_rates[-1] * machine.caches.memory_latency_cycles
        stream_stall *= 1.0 - _STREAM_PREFETCH_HIDING
        memory_cycles = (
            reuse_accesses * reuse_stall + streaming_accesses * stream_stall
        ) * contention
        cycles = core_cycles + memory_cycles
        duration = cycles / machine.clock_hz
        return BurstCounters(
            instructions=instructions,
            cycles=cycles,
            l1_misses=l1_misses,
            l2_misses=l2_misses,
            tlb_misses=tlb_misses,
            duration=duration,
        )

    def predicted_ipc(self, point: WorkloadPoint) -> float:
        """Shortcut: IPC the model predicts for *point*."""
        counters = self.evaluate(point)
        cycles = float(counters.cycles)
        if cycles == 0:
            return 0.0
        return float(counters.instructions) / cycles
