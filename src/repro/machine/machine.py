"""Machine presets: the two BSC clusters the paper used, as models.

The numbers are taken from the paper's section 4 and public system
documentation; what matters for the reproduction is not cycle accuracy
but the *relationships* the studies exploit — MinoTauro's newer cores
achieve substantially higher IPC than MareNostrum's PowerPC 970MP on
the same code, both have 32 KB L1 data caches, MinoTauro packs 12 cores
per node against MareNostrum's 4, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.contention import NodeContentionModel
from repro.machine.tlb import TLBModel

__all__ = ["Machine", "MARENOSTRUM", "MINOTAURO", "MACHINES", "get_machine"]


@dataclass(frozen=True, slots=True)
class Machine:
    """A compute-node model.

    Attributes
    ----------
    name:
        Machine label used in scenario metadata.
    clock_hz:
        Core clock frequency.
    cores_per_node:
        Cores available in one node (MR-Genesis sweeps occupation up to
        this limit).
    base_cpi:
        Core-pipeline cycles per instruction with all memory references
        hitting L1 — encodes micro-architecture quality (lower on the
        Xeon than on the PowerPC 970MP).
    caches:
        Data-cache hierarchy.
    tlb:
        Data-TLB model.
    contention:
        Node-sharing interference model.
    """

    name: str
    clock_hz: float
    cores_per_node: int
    base_cpi: float
    caches: CacheHierarchy
    tlb: TLBModel = field(default_factory=TLBModel)
    contention: NodeContentionModel = field(default_factory=NodeContentionModel)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ModelError(f"{self.name}: clock_hz must be > 0")
        if self.cores_per_node <= 0:
            raise ModelError(f"{self.name}: cores_per_node must be > 0")
        if self.base_cpi <= 0:
            raise ModelError(f"{self.name}: base_cpi must be > 0")

    @property
    def peak_ipc(self) -> float:
        """IPC achieved when every access hits L1."""
        return 1.0 / self.base_cpi


#: MareNostrum (2006-2012 configuration): JS21 blades with two dual-core
#: IBM PowerPC 970MP processors at 2.3 GHz, 8 GB RAM, 32 KB L1D + 1 MB L2
#: per core.  The in-order-ish FP pipeline yields modest IPC on irregular
#: codes — matching the low absolute IPC (0.16-0.50) in paper Table 3.
MARENOSTRUM = Machine(
    name="MareNostrum",
    clock_hz=2.3e9,
    cores_per_node=4,
    base_cpi=1.05,
    caches=CacheHierarchy(
        levels=(
            CacheLevel(
                name="L1",
                size_bytes=32 * 1024,
                line_bytes=128,
                miss_penalty_cycles=14.0,
                floor_miss_rate=0.012,
                ceiling_miss_rate=0.32,
                sharpness=2.8,
            ),
            CacheLevel(
                name="L2",
                size_bytes=1024 * 1024,
                line_bytes=128,
                miss_penalty_cycles=90.0,
                floor_miss_rate=0.03,
                ceiling_miss_rate=0.45,
                sharpness=2.2,
            ),
        ),
        memory_latency_cycles=300.0,
    ),
    tlb=TLBModel(entries=1024, page_bytes=4096, miss_penalty_cycles=40.0),
    contention=NodeContentionModel(
        node_bandwidth_gbs=8.0, interference_per_process=0.006
    ),
)

#: MinoTauro: two Intel Xeon E5649 6-core processors per node at 2.53 GHz,
#: 24 GB RAM.  Westmere cores are strongly out-of-order and prefetch well:
#: lower base CPI and cheaper L2 misses (L3 behind them), which shows up in
#: the paper as roughly doubled IPC versus MareNostrum on CGPOP.
MINOTAURO = Machine(
    name="MinoTauro",
    clock_hz=2.53e9,
    cores_per_node=12,
    base_cpi=0.62,
    caches=CacheHierarchy(
        levels=(
            CacheLevel(
                name="L1",
                size_bytes=32 * 1024,
                line_bytes=64,
                miss_penalty_cycles=10.0,
                floor_miss_rate=0.010,
                ceiling_miss_rate=0.28,
                sharpness=3.0,
            ),
            CacheLevel(
                name="L2",
                size_bytes=256 * 1024,
                line_bytes=64,
                miss_penalty_cycles=35.0,
                floor_miss_rate=0.025,
                ceiling_miss_rate=0.40,
                sharpness=2.4,
            ),
        ),
        memory_latency_cycles=180.0,
    ),
    tlb=TLBModel(entries=512, page_bytes=4096, miss_penalty_cycles=26.0),
    contention=NodeContentionModel(
        node_bandwidth_gbs=21.0, interference_per_process=0.004
    ),
)

MACHINES: dict[str, Machine] = {
    MARENOSTRUM.name: MARENOSTRUM,
    MINOTAURO.name: MINOTAURO,
}


def get_machine(name: str) -> Machine:
    """Look up a machine preset by name."""
    try:
        return MACHINES[name]
    except KeyError as exc:
        raise KeyError(f"unknown machine {name!r}; presets: {sorted(MACHINES)}") from exc
