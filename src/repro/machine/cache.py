"""Capacity-driven cache miss-rate model.

The model captures the first-order behaviour performance analysts read
from hardware counters: while a computation's working set fits in a
cache level, misses stay at a low "streaming" floor (cold misses plus
conflict noise); once the working set exceeds capacity, the miss rate
climbs towards a capacity ceiling.  The transition is smooth — real
caches have associativity conflicts and partial reuse — and is modelled
with a logistic curve in ``log2(working_set / capacity)``.

This is the mechanism behind two of the paper's studies:

- HydroC (Fig. 12): 2-D blocks of 8-byte elements hit the 32 KB L1
  limit at block size 64x64, so the step to 128 raises L1 misses ~40 %.
- NAS BT (Fig. 10): growing problem classes push working sets past L2,
  raising L2 misses and degrading IPC until the working set is far
  beyond capacity and the miss rate saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True, slots=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    Attributes
    ----------
    name:
        Level label (``"L1"``, ``"L2"``...), used in reports.
    size_bytes:
        Capacity of the level.
    line_bytes:
        Cache line size; sets the floor miss rate for streaming access
        (one compulsory miss per line).
    miss_penalty_cycles:
        Average stall cycles a miss at this level costs (assuming the
        next level hits).
    floor_miss_rate:
        Miss fraction per memory access when the working set fits.
    ceiling_miss_rate:
        Miss fraction per memory access when the working set is far
        larger than the capacity.
    sharpness:
        Steepness of the logistic transition in log2 space.  Higher
        values produce a crisper capacity cliff.
    """

    name: str
    size_bytes: int
    line_bytes: int = 64
    miss_penalty_cycles: float = 10.0
    floor_miss_rate: float = 0.01
    ceiling_miss_rate: float = 0.30
    sharpness: float = 2.5

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ModelError(f"{self.name}: size_bytes must be > 0")
        if self.line_bytes <= 0:
            raise ModelError(f"{self.name}: line_bytes must be > 0")
        if not 0.0 <= self.floor_miss_rate <= self.ceiling_miss_rate <= 1.0:
            raise ModelError(
                f"{self.name}: need 0 <= floor <= ceiling <= 1, got "
                f"floor={self.floor_miss_rate}, ceiling={self.ceiling_miss_rate}"
            )
        if self.miss_penalty_cycles < 0:
            raise ModelError(f"{self.name}: miss_penalty_cycles must be >= 0")
        if self.sharpness <= 0:
            raise ModelError(f"{self.name}: sharpness must be > 0")

    def miss_rate(self, working_set_bytes: float | np.ndarray) -> float | np.ndarray:
        """Miss fraction per memory access for a given working set size.

        Logistic in ``log2(ws / size)``: ~floor when the working set is
        well inside capacity, ~ceiling when well beyond, and exactly the
        midpoint when the working set equals the capacity.
        """
        ws = np.asarray(working_set_bytes, dtype=np.float64)
        if np.any(ws < 0):
            raise ModelError("working_set_bytes must be >= 0")
        # Guard against log(0): an empty working set always fits.
        safe_ws = np.maximum(ws, 1.0)
        x = np.log2(safe_ws / self.size_bytes)
        occupancy = 1.0 / (1.0 + np.exp(-self.sharpness * x))
        rate = self.floor_miss_rate + (self.ceiling_miss_rate - self.floor_miss_rate) * occupancy
        if np.isscalar(working_set_bytes):
            return float(rate)
        return rate


@dataclass(frozen=True, slots=True)
class CacheHierarchy:
    """An inclusive multi-level data-cache hierarchy.

    ``levels`` is ordered from closest to the core (L1) outwards.  Miss
    traffic filters through the levels: the L2 *local* miss rate applies
    to the accesses that missed L1, and so on.
    """

    levels: tuple[CacheLevel, ...]
    memory_latency_cycles: float = 200.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ModelError("a cache hierarchy needs at least one level")
        sizes = [level.size_bytes for level in self.levels]
        if sizes != sorted(sizes):
            raise ModelError("cache levels must grow outwards (L1 smallest)")
        if self.memory_latency_cycles < 0:
            raise ModelError("memory_latency_cycles must be >= 0")

    @property
    def n_levels(self) -> int:
        """Number of cache levels."""
        return len(self.levels)

    def level(self, name: str) -> CacheLevel:
        """Return the level called *name*."""
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no cache level named {name!r}")

    def misses_per_access(
        self,
        working_set_bytes: float,
        outer_working_set_bytes: float | None = None,
    ) -> tuple[float, ...]:
        """Misses per memory access at every level (global miss rates).

        Element *i* is the fraction of all memory accesses that miss at
        level *i* — i.e. the product of local miss rates up to there —
        which is what a global hardware counter (``PAPI_L2_DCM``) reports
        when divided by total accesses.

        ``outer_working_set_bytes`` optionally distinguishes the *reuse*
        working set seen by L1 (e.g. one cache block of a blocked
        algorithm) from the *streamed* working set the outer levels see
        (the whole per-process domain).  When ``None``, a single working
        set drives every level.
        """
        outer = (
            working_set_bytes
            if outer_working_set_bytes is None
            else outer_working_set_bytes
        )
        global_rates: list[float] = []
        reaching = 1.0  # fraction of accesses that reach this level
        for index, level in enumerate(self.levels):
            ws = working_set_bytes if index == 0 else outer
            local = float(level.miss_rate(ws))
            missed = reaching * local
            global_rates.append(missed)
            reaching = missed
        return tuple(global_rates)

    def stall_cycles_per_access(
        self,
        working_set_bytes: float,
        outer_working_set_bytes: float | None = None,
    ) -> float:
        """Average stall cycles each memory access pays in this hierarchy."""
        stall = 0.0
        rates = self.misses_per_access(working_set_bytes, outer_working_set_bytes)
        for level, global_rate in zip(self.levels, rates):
            stall += global_rate * level.miss_penalty_cycles
        # Accesses that miss the last level pay the memory latency.
        stall += rates[-1] * self.memory_latency_cycles
        return stall
