"""Machine-model calibration from measured traces (inverse modelling).

The forward direction of :mod:`repro.machine` predicts counters from a
machine description.  This module goes backwards: given a *measured*
trace (real or simulated), estimate the machine's stall parameters by
regressing burst cycles on the counter columns:

.. math::

   \\text{cycles} \\approx c_0 \\cdot I + p_1 \\cdot L1 + p_2 \\cdot L2
                          + p_t \\cdot TLB

where ``c_0`` is the core CPI and ``p_*`` are per-miss stall penalties.
Non-negative least squares keeps the parameters physical.  Uses:

- sanity-check a synthetic model against the machine preset that
  generated it;
- characterise an unknown platform from its traces before building app
  models for it;
- quantify how memory-bound each cluster is
  (:func:`stall_breakdown`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.errors import ModelError
from repro.trace.counters import CYCLES, INSTRUCTIONS, L1_DCM, L2_DCM, TLB_DM
from repro.trace.trace import Trace

__all__ = ["CalibratedMachine", "calibrate", "stall_breakdown"]


@dataclass(frozen=True)
class CalibratedMachine:
    """Stall parameters estimated from a trace.

    Attributes
    ----------
    core_cpi:
        Cycles per instruction with all memory references hitting L1.
    l1_penalty / l2_penalty / tlb_penalty:
        Estimated stall cycles per miss at each level.  Note the L2
        penalty is the *additional* cost beyond the L1 penalty already
        paid (the regression columns are global miss counts, which
        nest), and likewise captures the memory latency behind L2.
    r_squared:
        Fit quality on the training bursts.
    n_bursts:
        Number of bursts used.
    """

    core_cpi: float
    l1_penalty: float
    l2_penalty: float
    tlb_penalty: float
    r_squared: float
    n_bursts: int

    def predict_cycles(self, trace: Trace) -> np.ndarray:
        """Predict per-burst cycles for *trace* under this calibration."""
        design = _design_matrix(trace)
        params = np.asarray(
            [self.core_cpi, self.l1_penalty, self.l2_penalty, self.tlb_penalty]
        )
        return design @ params

    def __repr__(self) -> str:
        return (
            f"CalibratedMachine(core_cpi={self.core_cpi:.3f}, "
            f"l1={self.l1_penalty:.1f}cy, l2={self.l2_penalty:.1f}cy, "
            f"tlb={self.tlb_penalty:.1f}cy, R2={self.r_squared:.4f})"
        )


def _design_matrix(trace: Trace) -> np.ndarray:
    return np.column_stack(
        [
            trace.counter(INSTRUCTIONS),
            trace.counter(L1_DCM),
            trace.counter(L2_DCM),
            trace.counter(TLB_DM),
        ]
    )


def calibrate(trace: Trace) -> CalibratedMachine:
    """Estimate stall parameters from one trace's burst population.

    Requires the standard counter set and at least a handful of bursts
    with some variation in their miss mixes (a single behaviour cannot
    pin four parameters; the regression will still fit, but collinear
    columns make individual penalties unidentifiable).
    """
    for name in (INSTRUCTIONS, CYCLES, L1_DCM, L2_DCM, TLB_DM):
        if name not in trace.counter_names:
            raise ModelError(f"trace lacks the {name} counter")
    if trace.n_bursts < 4:
        raise ModelError("need at least 4 bursts to calibrate 4 parameters")

    design = _design_matrix(trace)
    target = trace.counter(CYCLES).astype(np.float64)
    # Column scaling keeps NNLS well-conditioned across magnitudes.
    scales = design.max(axis=0)
    scales[scales == 0] = 1.0
    params_scaled, _ = nnls(design / scales, target)
    params = params_scaled / scales

    prediction = design @ params
    residual = target - prediction
    total = target - target.mean()
    denominator = float(total @ total)
    r_squared = 1.0 - float(residual @ residual) / denominator if denominator else 1.0
    return CalibratedMachine(
        core_cpi=float(params[0]),
        l1_penalty=float(params[1]),
        l2_penalty=float(params[2]),
        tlb_penalty=float(params[3]),
        r_squared=r_squared,
        n_bursts=trace.n_bursts,
    )


def stall_breakdown(
    trace: Trace, calibration: CalibratedMachine | None = None
) -> dict[str, float]:
    """Attribute the trace's cycles to core vs memory components.

    Returns fractions summing to ~1: ``core``, ``l1``, ``l2``, ``tlb``
    (plus ``unexplained`` when the calibration does not fully account
    for the measured cycles).
    """
    calibration = calibration or calibrate(trace)
    design = _design_matrix(trace)
    params = np.asarray(
        [
            calibration.core_cpi,
            calibration.l1_penalty,
            calibration.l2_penalty,
            calibration.tlb_penalty,
        ]
    )
    contributions = design.sum(axis=0) * params
    measured = float(trace.counter(CYCLES).sum())
    if measured <= 0:
        raise ModelError("trace has no cycles to attribute")
    breakdown = {
        "core": contributions[0] / measured,
        "l1": contributions[1] / measured,
        "l2": contributions[2] / measured,
        "tlb": contributions[3] / measured,
    }
    breakdown["unexplained"] = 1.0 - sum(breakdown.values())
    return breakdown
