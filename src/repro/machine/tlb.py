"""TLB reach model.

Analogous to the cache model: while a working set fits within the TLB
reach (entries x page size) the data-TLB miss rate stays at a small
floor; beyond the reach it climbs logistically to a ceiling.  This
produces the TLB-miss growth the paper reports for MR-Genesis when
nodes get more populated and per-process working sets effectively
compete for shared translation resources (Fig. 11b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["TLBModel"]


@dataclass(frozen=True, slots=True)
class TLBModel:
    """Data-TLB behaviour of a core.

    Attributes
    ----------
    entries:
        Number of data-TLB entries.
    page_bytes:
        Page size covered by each entry.
    miss_penalty_cycles:
        Average page-walk cost of one miss.
    floor_miss_rate / ceiling_miss_rate / sharpness:
        Logistic transition parameters, as in
        :class:`~repro.machine.cache.CacheLevel`.
    """

    entries: int = 64
    page_bytes: int = 4096
    miss_penalty_cycles: float = 30.0
    floor_miss_rate: float = 1e-4
    ceiling_miss_rate: float = 0.02
    sharpness: float = 2.0

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ModelError("TLB entries must be > 0")
        if self.page_bytes <= 0:
            raise ModelError("page_bytes must be > 0")
        if not 0.0 <= self.floor_miss_rate <= self.ceiling_miss_rate <= 1.0:
            raise ModelError("need 0 <= floor <= ceiling <= 1")
        if self.miss_penalty_cycles < 0:
            raise ModelError("miss_penalty_cycles must be >= 0")
        if self.sharpness <= 0:
            raise ModelError("sharpness must be > 0")

    @property
    def reach_bytes(self) -> int:
        """Memory the TLB can map at once."""
        return self.entries * self.page_bytes

    def miss_rate(self, working_set_bytes: float | np.ndarray) -> float | np.ndarray:
        """Data-TLB miss fraction per memory access for a working set."""
        ws = np.asarray(working_set_bytes, dtype=np.float64)
        if np.any(ws < 0):
            raise ModelError("working_set_bytes must be >= 0")
        safe_ws = np.maximum(ws, 1.0)
        x = np.log2(safe_ws / self.reach_bytes)
        occupancy = 1.0 / (1.0 + np.exp(-self.sharpness * x))
        rate = self.floor_miss_rate + (self.ceiling_miss_rate - self.floor_miss_rate) * occupancy
        if np.isscalar(working_set_bytes):
            return float(rate)
        return rate

    def stall_cycles_per_access(self, working_set_bytes: float) -> float:
        """Average page-walk stall per memory access."""
        return float(self.miss_rate(working_set_bytes)) * self.miss_penalty_cycles
