"""Self-contained run reports: one HTML (or JSON) file per run.

A run report packages everything needed to audit a tracking run into a
single artefact with no external dependencies — inline CSS, inline
SVGs, a pinch of inline JS:

- the tracked frame scatters and IPC trend plot (:mod:`repro.viz`),
- the heuristic-attribution table — every relation with its proposing
  evaluator, support scores and confidence (:mod:`repro.obs.quality`),
- per-pair evaluator activity and per-region persistence,
- the stage-time span tree and metrics snapshot when observability was
  enabled (``REPRO_OBS=1`` or ``--profile``),
- the quarantine summary of ``--no-strict`` runs.

The same data is available machine-readable through
:func:`report_payload` (schema :data:`REPORT_SCHEMA`); the CLI's
``--report PATH`` writes HTML or JSON depending on the file suffix.
Reports may bundle several runs (``table2`` emits one section per case
study).
"""

from __future__ import annotations

import html
import json
import math
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro._version import __version__
from repro.obs.alerts import AlertTotals, summarize_alerts
from repro.obs.core import STATE
from repro.obs.export import render_tree
from repro.obs.metrics import metrics_snapshot
from repro.obs.quality import QualityReport, quality_report

if TYPE_CHECKING:
    from repro.robust.partial import ItemFailure
    from repro.stream.forecast import WatchTelemetry
    from repro.tracking.tracker import TrackingResult

__all__ = [
    "REPORT_SCHEMA",
    "RunEntry",
    "report_payload",
    "report_html",
    "write_report",
]

#: Version tag of the serialised report payload.
REPORT_SCHEMA = "repro.report/1"

#: One run to report on: (name, tracking result, quarantine records).
RunEntry = tuple[str, "TrackingResult", tuple["ItemFailure", ...]]


def _observability_payload() -> dict[str, Any]:
    """Span + metrics section (empty markers when obs was disabled)."""
    if not (STATE.enabled and STATE.spans):
        return {"enabled": False, "spans": [], "metrics": None}
    spans = [
        {
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "name": sp.name,
            "start": sp.start,
            "duration": sp.duration,
        }
        for sp in STATE.spans
    ]
    return {"enabled": True, "spans": spans, "metrics": metrics_snapshot()}


def _stream_payload(stream: "WatchTelemetry") -> dict[str, Any]:
    """Serialised health surface of a windowed watch run."""
    hist = stream.update_seconds
    payload: dict[str, Any] = {
        "windows": stream.n_windows,
        "empty": stream.n_empty,
        "quarantined": stream.n_quarantined,
        "resumed": stream.n_resumed,
        "live_updates": stream.n_updates,
        "update_seconds": {
            "count": hist.count,
            "mean": hist.mean,
            "p50": hist.p50,
            "p90": hist.p90,
            "p99": hist.p99,
        },
        "alerts_enabled": stream.alerts_enabled,
        "alerts": [alert.to_dict() for alert in stream.alerts],
    }
    if stream.monitor is not None:
        payload["series"] = stream.monitor.series()
    return payload


def report_payload(
    runs: Sequence[RunEntry],
    *,
    title: str | None = None,
    stream: "WatchTelemetry | None" = None,
) -> dict[str, Any]:
    """The machine-readable report: versioned, JSON-serialisable.

    Carries the same data as the HTML report except the rendered SVG
    markup (the underlying numbers are all present).  When *stream* is
    given (a :class:`~repro.stream.forecast.WatchTelemetry` from a
    windowed watch), the payload gains a ``"stream"`` section and the
    run quality reports carry the alert totals; without it the payload
    shape is unchanged.
    """
    run_alerts = (
        summarize_alerts(stream.alerts)
        if stream is not None and stream.alerts_enabled
        else None
    )
    payload = {
        "schema": REPORT_SCHEMA,
        "title": title or "repro-track run report",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "version": __version__,
        "runs": [
            {
                "name": name,
                "quality": quality_report(
                    result, failures=failures, alerts=run_alerts
                ).to_dict(),
            }
            for name, result, failures in runs
        ],
        "observability": _observability_payload(),
    }
    if stream is not None:
        payload["stream"] = _stream_payload(stream)
    return payload


# --------------------------------------------------------------------------
# HTML rendering
# --------------------------------------------------------------------------

_CSS = """
:root { --ink:#1c1c28; --muted:#6b6b80; --line:#e3e3ec; --accent:#2a6fb0;
        --bad:#c0392b; --ok:#2c7a2c; --bg:#fafafc; }
* { box-sizing:border-box; }
body { font:14px/1.5 system-ui,sans-serif; color:var(--ink);
       background:var(--bg); margin:0 auto; max-width:1080px; padding:24px; }
h1 { font-size:22px; margin:0 0 4px; }
h2 { font-size:17px; margin:28px 0 8px; border-bottom:1px solid var(--line);
     padding-bottom:4px; }
h3 { font-size:14px; margin:18px 0 6px; }
.meta { color:var(--muted); font-size:12px; margin-bottom:18px; }
.tiles { display:flex; flex-wrap:wrap; gap:10px; margin:14px 0; }
.tile { background:#fff; border:1px solid var(--line); border-radius:8px;
        padding:10px 16px; min-width:110px; }
.tile .v { font-size:20px; font-weight:600; }
.tile .k { font-size:11px; color:var(--muted); text-transform:uppercase;
           letter-spacing:.04em; }
table { border-collapse:collapse; width:100%; background:#fff;
        font-size:13px; margin:8px 0; }
th, td { border:1px solid var(--line); padding:4px 8px; text-align:left; }
th { background:#f0f0f6; font-weight:600; }
td.num { text-align:right; font-variant-numeric:tabular-nums; }
.bar { display:inline-block; height:9px; background:var(--accent);
       border-radius:2px; vertical-align:middle; }
.quarantine { border-left:4px solid var(--bad); background:#fff;
              padding:8px 12px; margin:8px 0; }
.quarantine.empty { border-left-color:var(--ok); }
pre { background:#fff; border:1px solid var(--line); border-radius:6px;
      padding:10px; overflow-x:auto; font-size:12px; }
details { margin:8px 0; }
summary { cursor:pointer; font-weight:600; }
figure { margin:12px 0; background:#fff; border:1px solid var(--line);
         border-radius:6px; padding:8px; overflow-x:auto; }
figcaption { font-size:12px; color:var(--muted); margin-bottom:6px; }
input.filter { padding:4px 8px; border:1px solid var(--line);
               border-radius:4px; width:240px; margin:4px 0; }
.tag { display:inline-block; border-radius:3px; padding:0 5px;
       font-size:11px; background:#eef3fa; color:var(--accent); }
"""

_JS = """
function filterTable(input, tableId) {
  var needle = input.value.toLowerCase();
  var rows = document.getElementById(tableId).tBodies[0].rows;
  for (var i = 0; i < rows.length; i++) {
    rows[i].style.display =
      rows[i].textContent.toLowerCase().indexOf(needle) >= 0 ? '' : 'none';
  }
}
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _tile(value: Any, label: str) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def _confidence_cell(confidence: float) -> str:
    width = max(2, round(confidence * 60))
    return (
        f'<td class="num">{confidence * 100:.0f}% '
        f'<span class="bar" style="width:{width}px"></span></td>'
    )


def _attribution_table(quality: QualityReport, table_id: str) -> str:
    rows: list[str] = []
    for pair in quality.pairs:
        for relation in pair.relations:
            support = ", ".join(
                f"{name} {value * 100:.0f}%" for name, value in relation.support
            )
            events = " ".join(
                f'<span class="tag">{_esc(event)}</span>'
                for event in relation.events
            )
            rows.append(
                "<tr>"
                f'<td class="num">{relation.pair_index}</td>'
                f"<td><code>{_esc(relation.relation)}</code></td>"
                f"<td>{_esc(relation.kind)}</td>"
                f"<td><b>{_esc(relation.proposed_by)}</b></td>"
                + _confidence_cell(relation.confidence)
                + f"<td>{_esc(support)}</td><td>{events}</td></tr>"
            )
    if not rows:
        rows.append('<tr><td colspan="7">no relations</td></tr>')
    return (
        f'<input class="filter" placeholder="filter relations…" '
        f"oninput=\"filterTable(this, '{table_id}')\">"
        f'<table id="{table_id}"><thead><tr><th>pair</th><th>relation</th>'
        "<th>kind</th><th>proposed by</th><th>confidence</th>"
        "<th>support</th><th>events</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _pairs_table(quality: QualityReport) -> str:
    rows = []
    for pair in quality.pairs:
        flag = " ⚠ quarantined" if pair.quarantined else ""
        seq = (
            "—" if pair.sequence_score is None
            else f"{pair.sequence_score * 100:.0f}%"
        )
        rows.append(
            "<tr>"
            f'<td class="num">{pair.pair_index}</td>'
            f"<td>{_esc(pair.left_label)} → {_esc(pair.right_label)}{flag}</td>"
            f'<td class="num">{pair.n_relations}</td>'
            + _confidence_cell(pair.mean_confidence)
            + f'<td class="num">{pair.proposed}</td>'
            f'<td class="num">{pair.pruned}</td>'
            f'<td class="num">{pair.rescued_callstack + pair.rescued_sequence}</td>'
            f'<td class="num">{pair.widened}</td>'
            f'<td class="num">{pair.splits}</td>'
            f'<td class="num">{seq}</td></tr>'
        )
    return (
        "<table><thead><tr><th>#</th><th>pair</th><th>relations</th>"
        "<th>mean conf.</th><th>proposed</th><th>pruned</th><th>rescued</th>"
        "<th>widened</th><th>splits</th><th>seq. score</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def _regions_table(quality: QualityReport) -> str:
    rows = []
    for region in quality.regions:
        rows.append(
            "<tr>"
            f'<td class="num">{region.region_id}</td>'
            f'<td class="num">{region.n_frames_present}/{quality.n_frames}</td>'
            f'<td class="num">{region.persistence * 100:.0f}%</td>'
            f"<td>{'yes' if region.contiguous else 'no'}</td>"
            f'<td class="num">{region.time_share * 100:.1f}%</td>'
            + _confidence_cell(region.mean_confidence)
            + "</tr>"
        )
    return (
        "<table><thead><tr><th>region</th><th>frames</th><th>persistence</th>"
        "<th>contiguous</th><th>time share</th><th>mean conf.</th></tr>"
        "</thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _heuristics_table(quality: QualityReport) -> str:
    rows = []
    for name, counts in quality.heuristics:
        record = dict(counts)
        rows.append(
            f"<tr><td><b>{_esc(name)}</b></td>"
            f'<td class="num">{record.get("relations_proposed", 0)}</td>'
            f'<td class="num">{record.get("edges", 0)}</td></tr>'
        )
    return (
        "<table><thead><tr><th>heuristic</th><th>relations proposed</th>"
        "<th>edges contributed</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _quarantine_block(quality: QualityReport) -> str:
    if not quality.failures:
        return (
            '<div class="quarantine empty">quarantine: empty '
            "(all items succeeded)</div>"
        )
    items = "".join(
        f"<li><code>[{_esc(f.stage)}]</code> {_esc(f.item)}: "
        f"{_esc(f.error)}: {_esc(f.message)}</li>"
        for f in quality.failures
    )
    repaired = (
        f"; {quality.repaired_bursts} burst(s) repaired at ingest"
        if quality.repaired_bursts else ""
    )
    return (
        f'<div class="quarantine"><b>quarantine: {len(quality.failures)} '
        f"item(s) failed and were skipped{_esc(repaired)}</b>"
        f"<ul>{items}</ul></div>"
    )


def _run_svgs(result: "TrackingResult") -> list[tuple[str, str]]:
    """Inline SVG figures of one run (skipped when undrawable)."""
    from repro.tracking.relabel import relabel_frames
    from repro.tracking.trends import compute_trends
    from repro.viz.frames_plot import sequence_canvas
    from repro.viz.trend_plot import trends_canvas

    figures: list[tuple[str, str]] = []
    try:
        canvas = sequence_canvas(relabel_frames(result))
        figures.append(("Tracked frames (shared region colours)", canvas.to_string()))
    except ValueError:
        pass
    series = compute_trends(result, "ipc")
    if series:
        try:
            canvas = trends_canvas(series, title="IPC evolution")
            figures.append(("IPC evolution per tracked region", canvas.to_string()))
        except ValueError:
            pass
    return figures


def _run_section(
    name: str,
    result: "TrackingResult",
    failures: tuple["ItemFailure", ...],
    index: int,
    *,
    include_viz: bool,
    alerts: AlertTotals | None = None,
) -> str:
    quality = quality_report(result, failures=failures, alerts=alerts)
    parts = [f"<h2>{_esc(name)}</h2>"]
    parts.append('<div class="tiles">')
    parts.append(_tile(quality.n_frames, "frames"))
    parts.append(_tile(quality.n_regions, "regions"))
    parts.append(_tile(quality.n_tracked, "tracked"))
    parts.append(_tile(f"{quality.coverage}%", "coverage"))
    parts.append(
        _tile(f"{quality.confidence.mean * 100:.0f}%", "mean confidence")
    )
    parts.append(_tile(len(quality.failures), "quarantined"))
    if quality.alerts is not None:
        parts.append(_tile(quality.alerts.total, "alerts"))
    parts.append("</div>")
    parts.append(_quarantine_block(quality))
    if include_viz:
        for caption, svg in _run_svgs(result):
            parts.append(
                f"<figure><figcaption>{_esc(caption)}</figcaption>{svg}</figure>"
            )
    parts.append("<h3>Heuristic attribution</h3>")
    parts.append(_attribution_table(quality, f"attribution-{index}"))
    parts.append("<h3>Pair activity</h3>")
    parts.append(_pairs_table(quality))
    parts.append("<h3>Tracked regions</h3>")
    parts.append(_regions_table(quality))
    parts.append("<h3>Heuristic contribution totals</h3>")
    parts.append(_heuristics_table(quality))
    return "\n".join(parts)


#: Cap on the number of forecast sparkline figures in one report.
_MAX_SPARKLINES = 16


def _sparkline_svg(
    observed: Sequence[tuple[float, float]],
    forecast: Sequence[tuple[float, float]],
    *,
    width: int = 280,
    height: int = 64,
) -> str:
    """Inline SVG sparkline: observed solid, forecast dashed.

    Both series share one (x, y) scale so divergence is visible as the
    gap between the lines.  Returns "" when nothing finite to draw.
    """
    finite = [
        (float(x), float(y))
        for x, y in [*observed, *forecast]
        if math.isfinite(float(y))
    ]
    if not finite:
        return ""
    x_lo = min(p[0] for p in finite)
    x_hi = max(p[0] for p in finite)
    y_lo = min(p[1] for p in finite)
    y_hi = max(p[1] for p in finite)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    pad = 6.0

    def scaled(series: Sequence[tuple[float, float]]) -> str:
        return " ".join(
            f"{pad + (float(x) - x_lo) / x_span * (width - 2 * pad):.1f},"
            f"{height - pad - (float(y) - y_lo) / y_span * (height - 2 * pad):.1f}"
            for x, y in series
            if math.isfinite(float(y))
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img">'
    ]
    forecast_points = scaled(forecast)
    if forecast_points:
        parts.append(
            f'<polyline points="{forecast_points}" fill="none" '
            'stroke="#c0392b" stroke-width="1.2" stroke-dasharray="4 3"/>'
        )
    observed_points = scaled(observed)
    if observed_points:
        parts.append(
            f'<polyline points="{observed_points}" fill="none" '
            'stroke="#2a6fb0" stroke-width="1.6"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _alerts_table(alerts: Sequence[Any], table_id: str) -> str:
    rows = []
    for alert in alerts:
        rows.append(
            "<tr>"
            f'<td class="num">{alert.window}</td>'
            f"<td><b>{_esc(alert.kind)}</b></td>"
            f'<td class="num">{alert.region_id}</td>'
            f"<td><code>{_esc(alert.track)}</code></td>"
            f"<td>{_esc(alert.metric or '—')}</td>"
            f"<td>{_esc(alert.message)}</td></tr>"
        )
    if not rows:
        rows.append('<tr><td colspan="6">no alerts</td></tr>')
    return (
        f'<input class="filter" placeholder="filter alerts…" '
        f"oninput=\"filterTable(this, '{table_id}')\">"
        f'<table id="{table_id}"><thead><tr><th>window</th><th>kind</th>'
        "<th>region</th><th>track</th><th>metric</th><th>detail</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _stream_section(stream: "WatchTelemetry") -> str:
    """The 'Live watch telemetry' report block (health + drill-down)."""
    hist = stream.update_seconds
    parts = ["<h2>Live watch telemetry</h2>", '<div class="tiles">']
    parts.append(_tile(stream.n_windows, "windows"))
    parts.append(_tile(stream.n_empty, "empty"))
    parts.append(_tile(stream.n_quarantined, "quarantined"))
    parts.append(_tile(stream.n_resumed, "resumed"))
    parts.append(_tile(stream.n_updates, "live updates"))
    if stream.alerts_enabled:
        parts.append(_tile(len(stream.alerts), "alerts"))
    parts.append("</div>")
    if hist.count:
        parts.append(
            f'<p class="meta">update latency: p50 {hist.p50 * 1e3:.2f} ms '
            f"· p90 {hist.p90 * 1e3:.2f} ms · p99 {hist.p99 * 1e3:.2f} ms "
            f"over {hist.count} live update(s)</p>"
        )
    if not stream.alerts_enabled:
        parts.append(
            "<p class='meta'>alerting disabled — run with "
            "<code>--alerts</code> to add per-region forecasts and "
            "divergence alerts.</p>"
        )
        return "\n".join(parts)
    parts.append("<h3>Alerts</h3>")
    parts.append(_alerts_table(stream.alerts, "stream-alerts"))
    series = stream.monitor.series() if stream.monitor is not None else []
    shown = series[:_MAX_SPARKLINES]
    figures = []
    for entry in shown:
        svg = _sparkline_svg(entry["observed"], entry["forecast"])
        if not svg:
            continue
        caption = (
            f"region {entry['region_id']} (track {entry['track']}) — "
            f"{entry['metric']}: observed solid, one-step forecast dashed"
        )
        figures.append(
            f"<figure><figcaption>{_esc(caption)}</figcaption>{svg}</figure>"
        )
    if figures:
        parts.append("<h3>Forecast vs observed</h3>")
        parts.append(
            '<div style="display:flex;flex-wrap:wrap;gap:8px">'
            + "".join(figures)
            + "</div>"
        )
        if len(series) > len(shown):
            parts.append(
                f"<p class='meta'>{len(series) - len(shown)} further "
                "series omitted (cap: "
                f"{_MAX_SPARKLINES}).</p>"
            )
    return "\n".join(parts)


def _observability_section() -> str:
    if not (STATE.enabled and STATE.spans):
        return (
            "<h2>Observability</h2><p class='meta'>no spans recorded — run "
            "with <code>REPRO_OBS=1</code> or <code>--profile</code> to "
            "capture the stage-time tree.</p>"
        )
    from repro.obs.export import render_metrics

    tree = render_tree()
    metrics = render_metrics()
    block = f"<h2>Observability</h2><pre>{_esc(tree)}</pre>"
    if metrics:
        block += f"<details><summary>metrics</summary><pre>{_esc(metrics)}</pre></details>"
    return block


def report_html(
    runs: Sequence[RunEntry],
    *,
    title: str | None = None,
    include_viz: bool = True,
    stream: "WatchTelemetry | None" = None,
) -> str:
    """Render the self-contained HTML report document.

    With *stream* given, the document gains the "Live watch telemetry"
    section — health tiles, update-latency percentiles, the alert
    table and forecast-vs-observed sparklines per tracked region.
    """
    title = title or "repro-track run report"
    generated = time.strftime("%Y-%m-%d %H:%M:%S %Z")
    run_alerts = (
        summarize_alerts(stream.alerts)
        if stream is not None and stream.alerts_enabled
        else None
    )
    sections = [
        _run_section(
            name, result, failures, index,
            include_viz=include_viz, alerts=run_alerts,
        )
        for index, (name, result, failures) in enumerate(runs)
    ]
    if stream is not None:
        sections.append(_stream_section(stream))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style><script>{_JS}</script></head><body>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f'<div class="meta">generated {_esc(generated)} · repro {__version__}'
        f" · schema {REPORT_SCHEMA}</div>\n"
        + "\n".join(sections)
        + "\n"
        + _observability_section()
        + "\n</body></html>\n"
    )


def write_report(
    path: str | Path,
    runs: Iterable[RunEntry] | "TrackingResult",
    *,
    failures: Iterable["ItemFailure"] = (),
    title: str | None = None,
    include_viz: bool = True,
    stream: "WatchTelemetry | None" = None,
) -> Path:
    """Write a run report; the suffix picks the format.

    ``.json`` gets the machine-readable :func:`report_payload`; any
    other suffix (conventionally ``.html``) gets the self-contained
    HTML document.  *runs* is either a single
    :class:`~repro.tracking.tracker.TrackingResult` (with *failures*)
    or an iterable of ``(name, result, failures)`` entries.  *stream*
    (a :class:`~repro.stream.forecast.WatchTelemetry`) adds the live
    watch telemetry to either format.
    """
    if hasattr(runs, "pair_relations"):  # a bare TrackingResult
        runs = [("tracking run", runs, tuple(failures))]
    entries: list[RunEntry] = [
        (name, result, tuple(fails)) for name, result, fails in runs
    ]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".json":
        payload = report_payload(entries, title=title, stream=stream)
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    else:
        path.write_text(
            report_html(
                entries, title=title, include_viz=include_viz, stream=stream
            ),
            encoding="utf-8",
        )
    return path
