"""Stdlib-logging integration for the ``repro`` package.

Library modules obtain a namespaced logger with::

    from repro.obs.log import get_logger
    log = get_logger(__name__)

and log through it instead of printing.  Nothing is emitted unless the
application configures handlers; the CLI calls :func:`configure` from
its ``-v/--verbose`` / ``-q/--quiet`` flags, which attaches a single
stderr handler to the ``repro`` root logger and sets its level.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

__all__ = ["ROOT_LOGGER", "get_logger", "configure", "verbosity_level"]

#: The package root every module logger hangs off.
ROOT_LOGGER = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


class _LiveStreamHandler(logging.StreamHandler):
    """Stream handler that follows ``sys.stderr`` unless pinned.

    Resolving the stream at emit time keeps the handler valid when
    ``sys.stderr`` is swapped out (pytest capture, IDE consoles) — a
    pinned handler would hold a closed file across test boundaries.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)
        self.pinned: TextIO | None = None

    @property
    def stream(self) -> TextIO:
        return self.pinned if self.pinned is not None else sys.stderr


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    Pass ``__name__`` from package modules (already ``repro.*``); bare
    names are prefixed so external callers land in the hierarchy too.
    """
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def verbosity_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count to a logging level.

    ``<= -1`` -> ERROR, ``0`` -> WARNING (default), ``1`` -> INFO,
    ``>= 2`` -> DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(verbosity: int = 0, stream: TextIO | None = None) -> logging.Logger:
    """Set the ``repro`` root logger level and attach one stderr handler.

    With *stream* ``None`` (the default) the handler follows the live
    ``sys.stderr``; pass an explicit stream to pin it.  Idempotent:
    repeated calls reconfigure the one handler this module installed
    rather than stacking duplicates.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(verbosity_level(verbosity))
    for handler in root.handlers:
        if isinstance(handler, _LiveStreamHandler):
            break
    else:
        handler = _LiveStreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    handler.pinned = stream
    return root
