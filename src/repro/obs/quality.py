"""Tracking-quality metrics: how trustworthy is a run's result?

The paper's claim is that four cooperating heuristics produce reliable
cross-experiment object tracks; this module quantifies that claim for a
concrete run.  :func:`quality_report` distils a
:class:`~repro.tracking.tracker.TrackingResult` (plus any quarantine
records of a non-strict run) into a :class:`QualityReport`:

- the **relation confidence distribution** (min/mean/median/p90/max
  plus a fixed four-bucket histogram),
- per-relation **heuristic attribution** (which evaluator proposed each
  relation, with support scores and rescue/attach/split events),
- per-pair **evaluator activity** (proposed/pruned/rescued/widened/
  split counts and the mean sequence-alignment score),
- per-region **persistence and stability** across the frame sequence,
- the **robustness totals** of graceful-degradation runs (quarantined
  items by stage, repaired-burst counts when observability recorded
  them).

Everything is plain data with a versioned, JSON-serialisable
:meth:`QualityReport.to_dict`, consumed by :mod:`repro.obs.report` and
the ``--report`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.obs.alerts import AlertTotals
from repro.obs.core import STATE
from repro.obs.metrics import REGISTRY, Counter

if TYPE_CHECKING:
    from repro.robust.partial import ItemFailure
    from repro.tracking.tracker import TrackingResult

__all__ = [
    "QUALITY_SCHEMA",
    "CONFIDENCE_BUCKETS",
    "RelationQuality",
    "PairQuality",
    "RegionQuality",
    "ConfidenceStats",
    "QualityReport",
    "quality_report",
]

#: Version tag of the serialised quality payload.
QUALITY_SCHEMA = "repro.quality/1"

#: Upper bounds of the fixed confidence histogram buckets.
CONFIDENCE_BUCKETS: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class RelationQuality:
    """One relation's attribution row (the report's who-did-what)."""

    pair_index: int
    relation: str
    kind: str
    confidence: float
    proposed_by: str
    events: tuple[str, ...]
    support: tuple[tuple[str, float], ...]

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "pair_index": self.pair_index,
            "relation": self.relation,
            "kind": self.kind,
            "confidence": round(self.confidence, 4),
            "proposed_by": self.proposed_by,
            "events": list(self.events),
            "support": {name: round(v, 4) for name, v in self.support},
        }


@dataclass(frozen=True)
class PairQuality:
    """Evaluator activity over one pair of consecutive frames."""

    pair_index: int
    left_label: str
    right_label: str
    quarantined: bool
    n_relations: int
    mean_confidence: float
    proposed: int
    pruned: int
    rescued_callstack: int
    rescued_sequence: int
    widened: int
    splits: int
    contributions: tuple[tuple[str, int], ...]
    sequence_score: float | None
    relations: tuple[RelationQuality, ...]

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "pair_index": self.pair_index,
            "left": self.left_label,
            "right": self.right_label,
            "quarantined": self.quarantined,
            "n_relations": self.n_relations,
            "mean_confidence": round(self.mean_confidence, 4),
            "proposed": self.proposed,
            "pruned": self.pruned,
            "rescued_callstack": self.rescued_callstack,
            "rescued_sequence": self.rescued_sequence,
            "widened": self.widened,
            "splits": self.splits,
            "contributions": {name: n for name, n in self.contributions},
            "sequence_score": (
                None if self.sequence_score is None
                else round(self.sequence_score, 4)
            ),
            "relations": [relation.as_dict() for relation in self.relations],
        }


@dataclass(frozen=True)
class RegionQuality:
    """Persistence/stability of one tracked region over the sequence."""

    region_id: int
    n_frames_present: int
    persistence: float
    contiguous: bool
    time_share: float
    mean_confidence: float

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "region_id": self.region_id,
            "n_frames_present": self.n_frames_present,
            "persistence": round(self.persistence, 4),
            "contiguous": self.contiguous,
            "time_share": round(self.time_share, 4),
            "mean_confidence": round(self.mean_confidence, 4),
        }


@dataclass(frozen=True)
class ConfidenceStats:
    """Distribution summary of the run's relation confidences."""

    count: int
    minimum: float
    mean: float
    median: float
    p90: float
    maximum: float
    histogram: tuple[int, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "ConfidenceStats":
        """Summarise a confidence sample (all-zero stats when empty)."""
        sample = np.asarray(list(values), dtype=np.float64)
        if sample.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0,
                       (0,) * len(CONFIDENCE_BUCKETS))
        histogram = [0] * len(CONFIDENCE_BUCKETS)
        for value in sample:
            for index, bound in enumerate(CONFIDENCE_BUCKETS):
                if value <= bound:
                    histogram[index] += 1
                    break
        return cls(
            count=int(sample.size),
            minimum=float(sample.min()),
            mean=float(sample.mean()),
            median=float(np.median(sample)),
            p90=float(np.percentile(sample, 90)),
            maximum=float(sample.max()),
            histogram=tuple(histogram),
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "count": self.count,
            "min": round(self.minimum, 4),
            "mean": round(self.mean, 4),
            "median": round(self.median, 4),
            "p90": round(self.p90, 4),
            "max": round(self.maximum, 4),
            "buckets": list(CONFIDENCE_BUCKETS),
            "histogram": list(self.histogram),
        }


@dataclass(frozen=True)
class QualityReport:
    """Quantified tracking quality of one run.

    Attributes
    ----------
    n_frames / n_regions / n_tracked / coverage:
        Headline numbers of the tracking result.
    frame_labels:
        The frame labels, in sequence order.
    pairs:
        Per-pair evaluator activity including the attribution rows.
    regions:
        Per-region persistence/stability records, duration-ranked.
    heuristics:
        Run totals per evaluator: relations proposed, edges
        contributed, rescues/attachments performed.
    confidence:
        The relation confidence distribution over the whole run.
    quarantined:
        Quarantine counts per pipeline stage (non-strict runs).
    failures:
        The quarantine records themselves, pipeline-ordered.
    repaired_bursts:
        Bursts dropped-and-repaired at ingest, when observability
        recorded them (``None`` when obs was disabled).
    alerts:
        Live-watch alert totals (:class:`~repro.obs.alerts.AlertTotals`)
        when the run monitored with alerting enabled; ``None``
        otherwise.  Serialisation omits the key entirely when ``None``
        so pre-alerting payloads are byte-identical.
    """

    n_frames: int
    n_regions: int
    n_tracked: int
    coverage: int
    frame_labels: tuple[str, ...]
    pairs: tuple[PairQuality, ...]
    regions: tuple[RegionQuality, ...]
    heuristics: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    confidence: ConfidenceStats
    quarantined: tuple[tuple[str, int], ...]
    failures: tuple["ItemFailure", ...]
    repaired_bursts: int | None
    alerts: AlertTotals | None = None

    def to_dict(self) -> dict[str, object]:
        """Versioned, JSON-serialisable payload.

        The ``"alerts"`` key appears only when alert totals were
        attached, keeping alert-free payloads identical to what older
        versions emitted (the golden-report fixtures rely on this).
        """
        payload = {
            "schema": QUALITY_SCHEMA,
            "n_frames": self.n_frames,
            "n_regions": self.n_regions,
            "n_tracked": self.n_tracked,
            "coverage_pct": self.coverage,
            "frames": list(self.frame_labels),
            "confidence": self.confidence.as_dict(),
            "heuristics": {
                name: {key: value for key, value in counts}
                for name, counts in self.heuristics
            },
            "pairs": [pair.as_dict() for pair in self.pairs],
            "regions": [region.as_dict() for region in self.regions],
            "robust": {
                "quarantined": {stage: n for stage, n in self.quarantined},
                "repaired_bursts": self.repaired_bursts,
                "failures": [
                    {
                        "item": failure.item,
                        "stage": failure.stage,
                        "error": failure.error,
                        "message": failure.message,
                    }
                    for failure in self.failures
                ],
            },
        }
        if self.alerts is not None:
            payload["alerts"] = self.alerts.to_dict()
        return payload


def _relation_kind(relation) -> str:
    """Classify a relation for the attribution table."""
    if not relation.left or not relation.right:
        return "orphan"
    if relation.is_univocal:
        return "univocal"
    if relation.is_wide:
        return "wide"
    return "grouped"


def _sequence_score(pair) -> float | None:
    """Mean non-zero sequence-alignment score (None when it never ran)."""
    if pair.sequence_ab is None:
        return None
    values = pair.sequence_ab.values
    positive = values[values > 0]
    return float(positive.mean()) if positive.size else 0.0


def _repaired_bursts() -> int | None:
    """Total repaired bursts from the obs registry, if recorded."""
    if not STATE.enabled:
        return None
    total = 0.0
    for metric in REGISTRY.all_metrics():
        if isinstance(metric, Counter) and metric.name == "robust.recovered_total":
            total += metric.value
    return int(total)


def quality_report(
    result: "TrackingResult",
    *,
    failures: Iterable["ItemFailure"] = (),
    alerts: AlertTotals | None = None,
) -> QualityReport:
    """Distil a tracking result into a :class:`QualityReport`.

    Parameters
    ----------
    result:
        The tracking result (unwrap a
        :class:`~repro.robust.partial.PartialResult` first and pass its
        records through *failures*).
    failures:
        Quarantine records of a non-strict run, if any.
    alerts:
        Alert totals of an alert-enabled watch run
        (:func:`repro.obs.alerts.summarize_alerts`); omit for offline
        runs.
    """
    failures = tuple(failures)
    quarantined_pairs = {
        int(failure.item.rsplit("(pair ", 1)[1].rstrip(")"))
        for failure in failures
        if failure.stage == "pair" and "(pair " in failure.item
    }

    # (frame_index, cluster_id) -> region_id, for region confidences.
    region_of: dict[tuple[int, int], int] = {}
    for region in result.regions:
        for frame_index, members in enumerate(region.members):
            for cid in members:
                region_of[(frame_index, cid)] = region.region_id

    pairs: list[PairQuality] = []
    all_confidences: list[float] = []
    region_confidences: dict[int, list[float]] = {}
    heuristic_totals: dict[str, dict[str, int]] = {}

    for index, pair in enumerate(result.pair_relations):
        provenance = pair.provenance
        rows: list[RelationQuality] = []
        confidences: list[float] = []
        for relation in pair.relations:
            record = pair.provenance_of(relation)
            confidence = pair.confidence(relation)
            rows.append(
                RelationQuality(
                    pair_index=index,
                    relation=repr(relation),
                    kind=_relation_kind(relation),
                    confidence=confidence,
                    proposed_by=record.proposed_by,
                    events=record.events,
                    support=record.support,
                )
            )
            if relation.left and relation.right:
                confidences.append(confidence)
                touched = {
                    region_of.get((index, cid)) for cid in relation.left
                } | {
                    region_of.get((index + 1, cid)) for cid in relation.right
                }
                for region_id in touched - {None}:
                    region_confidences.setdefault(region_id, []).append(confidence)
            totals = heuristic_totals.setdefault(
                record.proposed_by, {"relations_proposed": 0, "edges": 0}
            )
            totals["relations_proposed"] += 1
            for name, n in record.edge_counts:
                heuristic_totals.setdefault(
                    name, {"relations_proposed": 0, "edges": 0}
                )["edges"] += n

        contributions: Mapping[str, int] = (
            provenance.contribution_counts() if provenance else {}
        )
        pairs.append(
            PairQuality(
                pair_index=index,
                left_label=result.frames[index].label,
                right_label=result.frames[index + 1].label,
                quarantined=index in quarantined_pairs,
                n_relations=len(pair.relations),
                mean_confidence=(
                    float(np.mean(confidences)) if confidences else 0.0
                ),
                proposed=provenance.proposed if provenance else 0,
                pruned=provenance.pruned if provenance else 0,
                rescued_callstack=(
                    provenance.rescued_callstack if provenance else 0
                ),
                rescued_sequence=(
                    provenance.rescued_sequence if provenance else 0
                ),
                widened=provenance.widened if provenance else 0,
                splits=provenance.splits if provenance else 0,
                contributions=tuple(sorted(contributions.items())),
                sequence_score=_sequence_score(pair),
                relations=tuple(rows),
            )
        )
        all_confidences.extend(confidences)

    total_time = sum(frame.trace.total_time for frame in result.frames)
    regions = tuple(
        RegionQuality(
            region_id=region.region_id,
            n_frames_present=region.n_frames_present,
            persistence=region.n_frames_present / result.n_frames,
            contiguous=_is_contiguous(region.members),
            time_share=(
                region.total_duration / total_time if total_time else 0.0
            ),
            mean_confidence=float(
                np.mean(region_confidences.get(region.region_id, [0.0]))
            ),
        )
        for region in result.regions
    )

    quarantined: dict[str, int] = {}
    for failure in failures:
        quarantined[failure.stage] = quarantined.get(failure.stage, 0) + 1

    return QualityReport(
        n_frames=result.n_frames,
        n_regions=len(result.regions),
        n_tracked=len(result.tracked_regions),
        coverage=result.coverage,
        frame_labels=tuple(frame.label for frame in result.frames),
        pairs=tuple(pairs),
        regions=regions,
        heuristics=tuple(
            (name, tuple(sorted(counts.items())))
            for name, counts in sorted(heuristic_totals.items())
        ),
        confidence=ConfidenceStats.from_values(all_confidences),
        quarantined=tuple(sorted(quarantined.items())),
        failures=failures,
        repaired_bursts=_repaired_bursts(),
        alerts=alerts,
    )


def _is_contiguous(members: tuple[frozenset[int], ...]) -> bool:
    """Whether the region's presence is one unbroken run of frames."""
    present = [bool(m) for m in members]
    if not any(present):
        return False
    first = present.index(True)
    last = len(present) - 1 - present[::-1].index(True)
    return all(present[first:last + 1])
