"""Continuous resource profiler: a sampler thread with stage attribution.

A :class:`ResourceSampler` wakes every ``period`` seconds and records a
:class:`Sample` of process vitals — RSS, cumulative CPU time, GC
generation counts, open file descriptors — plus pipeline occupancy
gauges (live stream windows, ``EvalCache`` entries) read from the
metrics registry.  Each sample is attributed to the *active span stage*
(``repro.obs.core.ObsState.active_stage``), so hot stages get resource
envelopes, not just durations.

The sampler is a pure observer: it only reads ``/proc`` and the
registry, and publishes its latest sample back as registry gauges
(``runtime.*``) so the ``/metrics`` endpoint exposes them.  Tracking
outputs are bit-identical with the sampler on or off.

Like ``REPRO_OBS``, the disabled path is near-zero-cost: nothing is
started unless :func:`resolve_sampler` finds ``REPRO_OBS_SAMPLE`` set
(to a truthy value or a period in seconds) or code starts a sampler
explicitly (``repro-track watch --serve`` does).
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.obs.core import STATE
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "Sample",
    "ResourceSampler",
    "resolve_sampler",
    "active_sampler",
    "set_active_sampler",
    "current_rss_kib",
    "open_fd_count",
    "SAMPLE_ENV",
]

#: Environment variable enabling the sampler: truthy or a float period.
SAMPLE_ENV = "REPRO_OBS_SAMPLE"

_TRUTHY = {"1", "true", "yes", "on"}

#: Default sampling period in seconds.
DEFAULT_PERIOD = 0.05

#: Registry gauges the sampler folds into each sample when present.
_OCCUPANCY_GAUGES = ("stream.live_windows", "stream.evalcache_entries")

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_kib() -> int:
    """Current resident set size in KiB (falls back to the peak)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE // 1024
    except (OSError, IndexError, ValueError):
        try:
            import resource

            return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except (ImportError, ValueError, OSError):  # pragma: no cover
            return 0


def open_fd_count() -> int:
    """Number of open file descriptors (0 where /proc is unavailable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


@dataclass(frozen=True)
class Sample:
    """One point-in-time reading of process vitals."""

    t: float  # seconds since the observability epoch
    stage: str  # active span stage ("" outside any span)
    rss_kib: int
    cpu_s: float  # cumulative process CPU (user+system)
    gc_gen0: int
    gc_gen1: int
    gc_gen2: int
    open_fds: int
    live_windows: float
    evalcache_entries: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": round(self.t, 6),
            "stage": self.stage,
            "rss_kib": self.rss_kib,
            "cpu_s": round(self.cpu_s, 6),
            "gc_gen0": self.gc_gen0,
            "gc_gen1": self.gc_gen1,
            "gc_gen2": self.gc_gen2,
            "open_fds": self.open_fds,
            "live_windows": self.live_windows,
            "evalcache_entries": self.evalcache_entries,
        }


def _registry_gauge(registry: MetricsRegistry, name: str) -> float:
    """Best-effort read of an unlabelled gauge's value (0.0 if absent)."""
    metric = registry._metrics.get(("gauge", name, ()))
    return float(metric.value) if metric is not None else 0.0


class ResourceSampler:
    """Daemon thread sampling process vitals on a fixed period.

    Samples accumulate in :attr:`samples` (bounded by *max_samples*,
    oldest dropped first) and the most recent reading is mirrored into
    *registry* as ``runtime.*`` gauges for live exposition.
    """

    def __init__(
        self,
        period: float = DEFAULT_PERIOD,
        *,
        registry: MetricsRegistry | None = None,
        max_samples: int = 100_000,
    ) -> None:
        if period <= 0:
            raise ValueError(f"sampler period must be > 0, got {period}")
        self.period = float(period)
        self.registry = registry if registry is not None else REGISTRY
        self.max_samples = int(max_samples)
        self.samples: list[Sample] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling -----------------------------------------------------

    def sample_once(self) -> Sample:
        """Take one sample now (also used by the thread loop)."""
        times = os.times()
        gen0, gen1, gen2 = gc.get_count()
        sample = Sample(
            t=time.perf_counter() - STATE.epoch,
            stage=STATE.active_stage,
            rss_kib=current_rss_kib(),
            cpu_s=times.user + times.system,
            gc_gen0=gen0,
            gc_gen1=gen1,
            gc_gen2=gen2,
            open_fds=open_fd_count(),
            live_windows=_registry_gauge(self.registry, "stream.live_windows"),
            evalcache_entries=_registry_gauge(
                self.registry, "stream.evalcache_entries"
            ),
        )
        with self._lock:
            self.samples.append(sample)
            if len(self.samples) > self.max_samples:
                overflow = len(self.samples) - self.max_samples
                del self.samples[:overflow]
                self.dropped += overflow
        self._publish(sample)
        return sample

    def _publish(self, sample: Sample) -> None:
        """Mirror the latest reading into the registry (ungated gauges)."""
        reg = self.registry
        reg.gauge("runtime.rss_kib").set(sample.rss_kib)
        reg.gauge("runtime.cpu_seconds_total").set(sample.cpu_s)
        reg.gauge("runtime.open_fds").set(sample.open_fds)
        reg.gauge("runtime.gc_gen0_objects").set(sample.gc_gen0)
        reg.gauge("runtime.gc_gen2_objects").set(sample.gc_gen2)
        reg.gauge("runtime.sample_count").set(len(self.samples) + self.dropped)

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        """Start the daemon sampling thread (idempotent); returns self."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the thread and take one final sample for the tail."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._thread = None
        self.sample_once()

    def _loop(self) -> None:
        # Sample immediately so the runtime gauges exist from t=0 — a
        # scraper must never observe a running sampler with no samples.
        try:
            self.sample_once()
        except Exception:  # pragma: no cover - never kill the host run
            return
        while not self._stop.wait(self.period):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - never kill the host run
                return

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- summaries ----------------------------------------------------

    def snapshot_samples(self) -> list[Sample]:
        """A stable copy of the samples recorded so far."""
        with self._lock:
            return list(self.samples)

    def stage_summary(self) -> dict[str, dict[str, Any]]:
        """Per-stage resource envelopes over all samples.

        CPU deltas between consecutive samples are attributed to the
        later sample's stage, RSS envelopes are per-stage min/max, and
        sample counts give each stage's share of wall time.
        """
        samples = self.snapshot_samples()
        out: dict[str, dict[str, Any]] = {}
        prev_cpu: float | None = None
        for sample in samples:
            stage = sample.stage or "(idle)"
            env = out.get(stage)
            if env is None:
                env = out[stage] = {
                    "n_samples": 0,
                    "rss_min_kib": sample.rss_kib,
                    "rss_max_kib": sample.rss_kib,
                    "cpu_s": 0.0,
                }
            env["n_samples"] += 1
            env["rss_min_kib"] = min(env["rss_min_kib"], sample.rss_kib)
            env["rss_max_kib"] = max(env["rss_max_kib"], sample.rss_kib)
            if prev_cpu is not None:
                env["cpu_s"] = round(
                    env["cpu_s"] + max(0.0, sample.cpu_s - prev_cpu), 6
                )
            prev_cpu = sample.cpu_s
        return out

    def summary(self) -> dict[str, Any]:
        """Ledger-ready rollup: totals plus per-stage envelopes."""
        samples = self.snapshot_samples()
        payload: dict[str, Any] = {
            "period_s": self.period,
            "n_samples": len(samples) + self.dropped,
            "stages": self.stage_summary(),
        }
        if samples:
            payload["rss_max_kib"] = max(s.rss_kib for s in samples)
            payload["cpu_s"] = round(
                max(0.0, samples[-1].cpu_s - samples[0].cpu_s), 6
            )
            payload["open_fds_max"] = max(s.open_fds for s in samples)
        return payload


#: The process's active sampler (set by the CLI / watch --serve).
_ACTIVE: ResourceSampler | None = None


def active_sampler() -> ResourceSampler | None:
    """The currently installed process-wide sampler, if any."""
    return _ACTIVE


def set_active_sampler(sampler: ResourceSampler | None) -> None:
    """Install (or clear) the process-wide sampler handle."""
    global _ACTIVE
    _ACTIVE = sampler


def resolve_sampler(
    *, period: float | None = None, env: bool = True
) -> ResourceSampler | None:
    """Build a sampler from an explicit period or ``REPRO_OBS_SAMPLE``.

    The env value may be a truthy word (default period) or a float
    period in seconds.  Returns ``None`` when sampling is not requested
    — the disabled path is one environment lookup.
    """
    if period is None and env:
        raw = os.environ.get(SAMPLE_ENV, "").strip().lower()
        if not raw:
            return None
        if raw in _TRUTHY:
            period = DEFAULT_PERIOD
        else:
            try:
                period = float(raw)
            except ValueError:
                return None
            if period <= 0:
                return None
    if period is None:
        return None
    return ResourceSampler(period)
