"""Live telemetry exposition: stdlib-only /metrics and /healthz.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into the Prometheus text exposition format (version 0.0.4):
``# HELP``/``# TYPE`` comments, sanitised metric names, escaped label
values, and cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count`` for histograms.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer`
in a daemon thread serving:

* ``GET /metrics`` — the registry (including sampler ``runtime.*``
  gauges) as Prometheus text.
* ``GET /healthz`` — a JSON health document: run id, uptime,
  watch-telemetry summary (windows, last-window lag), alert totals and
  sampler state.

Attach it to a watch run with ``repro-track watch --serve PORT`` or
standalone via ``repro-track obs serve``.  Everything is stdlib-only
and a pure observer — serving never touches tracking state.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.core import run_id as process_run_id
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "render_prometheus",
    "MetricsServer",
    "Router",
    "start_metrics_server",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_RE = re.compile(r"^[^a-zA-Z_:]")

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(name: str) -> str:
    """Sanitise a dotted registry name into a Prometheus metric name."""
    sanitised = _NAME_RE.sub("_", name)
    if _LEADING_RE.match(sanitised):
        sanitised = "_" + sanitised
    return "repro_" + sanitised


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{_NAME_RE.sub("_", k)}="{_escape_label(str(v))}"'
        for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render *registry* (default: the process registry) as Prometheus
    text exposition format."""
    snap = (registry if registry is not None else REGISTRY).snapshot()
    lines: list[str] = []
    seen_types: set[str] = set()

    def _header(name: str, kind: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        lines.append(f"# HELP {name} repro metric {name}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in snap["counters"]:
        name = _metric_name(entry["name"])
        _header(name, "counter")
        lines.append(
            f"{name}{_format_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["gauges"]:
        name = _metric_name(entry["name"])
        _header(name, "gauge")
        lines.append(
            f"{name}{_format_labels(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snap["histograms"]:
        name = _metric_name(entry["name"])
        _header(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, bucket_count in zip(entry["buckets"], entry["counts"]):
            cumulative += bucket_count
            le = _format_labels(labels, {"le": _format_value(bound)})
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += entry["counts"][-1]
        inf = _format_labels(labels, {"le": "+Inf"})
        lines.append(f"{name}_bucket{inf} {cumulative}")
        lines.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}"
        )
        lines.append(f"{name}_count{_format_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


#: Router callback type: ``(method, path, body) -> (status, content_type,
#: payload)`` or ``None`` to fall through to the built-in endpoints.
Router = Callable[[str, str, bytes], "tuple[int, str, bytes] | None"]


class MetricsServer:
    """Daemon-thread HTTP server exposing /metrics and /healthz.

    *health_source* is a zero-arg callable returning extra JSON fields
    for ``/healthz`` (e.g. ``WatchTelemetry.health``); *sampler* adds
    its summary under the ``sampler`` key.  *router* mounts additional
    endpoints in front of the built-ins: it sees every request
    (``GET``/``POST``/``DELETE``) first and returns a response triple
    or ``None`` to fall through — the job server's JSON API layers on
    this hook without subclassing ``http.server`` internals.
    """

    def __init__(
        self,
        port: int,
        *,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        health_source: Callable[[], dict[str, Any]] | None = None,
        sampler: Any | None = None,
        router: Router | None = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.health_source = health_source
        self.sampler = sampler
        self.router = router
        self.started_at = time.time()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def _read_body(self) -> bytes:
                try:
                    length = int(self.headers.get("Content-Length", 0))
                except (TypeError, ValueError):
                    length = 0
                return self.rfile.read(length) if length > 0 else b""

            def _route(self, method: str) -> bool:
                """Give the router first refusal; True when it answered."""
                if server.router is None:
                    return False
                path = self.path.split("?", 1)[0]
                body = self._read_body()
                try:
                    routed = server.router(method, path, body)
                except Exception:  # router bugs must not kill the thread
                    self._reply(
                        500,
                        "application/json; charset=utf-8",
                        b'{"error": "internal server error"}\n',
                    )
                    return True
                if routed is None:
                    return False
                status, ctype, payload = routed
                self._reply(status, ctype, payload)
                return True

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self._route("GET"):
                    return
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = render_prometheus(server.registry).encode("utf-8")
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif path == "/healthz":
                    body = json.dumps(server.health_payload(), indent=2).encode(
                        "utf-8"
                    )
                    self._reply(200, "application/json; charset=utf-8", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                if not self._route("POST"):
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def do_DELETE(self) -> None:  # noqa: N802 - http.server API
                if not self._route("DELETE"):
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def _reply(self, status: int, ctype: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # stay silent; scrapes are frequent

        # Raises OSError (EADDRINUSE) if the port is taken — callers
        # surface that instead of silently rebinding.
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health_payload(self) -> dict[str, Any]:
        """Assemble the /healthz JSON document."""
        payload: dict[str, Any] = {
            "status": "ok",
            "run_id": process_run_id(),
            "uptime_s": round(time.time() - self.started_at, 3),
        }
        if self.health_source is not None:
            try:
                extra = self.health_source()
            except Exception as exc:  # health must not 500 on a racy read
                payload["status"] = "degraded"
                payload["health_error"] = type(exc).__name__
            else:
                if isinstance(extra, dict):
                    status = extra.pop("status", None)
                    payload.update(extra)
                    if status:
                        payload["status"] = status
        if self.sampler is not None:
            try:
                payload["sampler"] = self.sampler.summary()
            except Exception:  # pragma: no cover - defensive
                payload["sampler"] = None
        return payload

    def close(self) -> None:
        """Shut the server down and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def start_metrics_server(
    port: int,
    *,
    host: str = "127.0.0.1",
    registry: MetricsRegistry | None = None,
    health_source: Callable[[], dict[str, Any]] | None = None,
    sampler: Any | None = None,
) -> MetricsServer:
    """Start a :class:`MetricsServer`; raises ``OSError`` if *port* is
    already bound.  Pass ``port=0`` to let the OS pick (see ``.port``)."""
    return MetricsServer(
        port,
        host=host,
        registry=registry,
        health_source=health_source,
        sampler=sampler,
    )
