"""Process-local metrics registry: counters, gauges, histograms.

Metrics are named with the same ``layer.metric`` dotted convention
spans use, and carry optional string labels, e.g.::

    obs.count("tracking.links_pruned", 3, evaluator="callstack")
    obs.set_gauge("tracking.coverage_pct", 100)
    obs.observe("bench.wall_time_s", 0.42)

The module-level helpers (:func:`count`, :func:`set_gauge`,
:func:`observe`) are gated on the enabled flag, so library hot paths
can call them unconditionally; the :class:`MetricsRegistry` itself is
ungated and can be instantiated separately for always-on consumers
(the benchmark harness records wall-times that way).

Histograms use fixed bucket boundaries (no dynamic resizing) so that
aggregation is branch-cheap and the exported shape is stable.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

from repro.obs.core import STATE

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "count",
    "set_gauge",
    "observe",
    "metrics_snapshot",
    "percentile_from_counts",
]

#: Default histogram boundaries: log-spaced seconds from 1µs to 100s.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelItems:
    """Canonical, hashable form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(labels: LabelItems) -> str:
    """Render labels Prometheus-style: ``{evaluator=callstack}``."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add *n* (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}{format_labels(self.labels)}={self.value:g})"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}{format_labels(self.labels)}={self.value:g})"


class Histogram:
    """Fixed-bucket distribution with running sum and count.

    ``counts[i]`` tallies observations ``<= bounds[i]``; the final
    slot is the overflow bucket (``> bounds[-1]``).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: LabelItems, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name} bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (Prometheus-style).

        *q* is a fraction in [0, 1].  The estimate interpolates
        linearly within the bucket holding the q-th observation; the
        overflow bucket clamps to the highest finite bound, so tail
        percentiles are a lower bound once observations exceed it.
        The degenerate cases are exact: 0.0 for an empty histogram, and
        the observation itself (``sum``) for a single-sample histogram —
        bucket interpolation would otherwise report an arbitrary point
        of the containing bucket.
        """
        counts = list(self.counts)
        return percentile_from_counts(
            self.bounds, counts, sum(counts), self.sum, q
        )

    @property
    def p50(self) -> float:
        """Median estimate (see :meth:`percentile`)."""
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        """90th-percentile estimate (see :meth:`percentile`)."""
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        """99th-percentile estimate (see :meth:`percentile`)."""
        return self.percentile(0.99)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{format_labels(self.labels)}, "
            f"count={self.count}, mean={self.mean:g})"
        )


def percentile_from_counts(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    total_sum: float,
    q: float,
) -> float:
    """Percentile estimate over an already-copied bucket state.

    Operating on caller-owned copies keeps snapshots consistent while
    another thread keeps observing into the live histogram (see
    :meth:`MetricsRegistry.snapshot`).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
    if not count:
        return 0.0
    if count == 1:
        return total_sum
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            if index >= len(bounds):  # overflow bucket
                return bounds[-1]
            lo = 0.0 if index == 0 else bounds[index - 1]
            hi = bounds[index]
            fraction = (rank - previous) / bucket_count
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
    return bounds[-1]  # pragma: no cover - defensive


class MetricsRegistry:
    """Keyed store of metrics; one instance per consumer context.

    Metric identity is ``(kind, name, labels)`` — the same name may
    exist with different label sets (one time series per combination),
    but not as two different kinds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, LabelItems], Any] = {}

    def _get(self, kind: str, name: str, labels: dict[str, Any], factory):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    for other_kind, other_name, other_labels in self._metrics:
                        if other_name == name and other_kind != kind:
                            raise ValueError(
                                f"metric {name!r} already registered as "
                                f"{other_kind}, cannot reuse as {kind}"
                            )
                    metric = factory(key[2])
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + *labels*, created on first use."""
        return self._get("counter", name, labels, lambda lk: Counter(name, lk))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + *labels*, created on first use."""
        return self._get("gauge", name, labels, lambda lk: Gauge(name, lk))

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``name`` + *labels*, created on first use."""
        return self._get(
            "histogram", name, labels, lambda lk: Histogram(name, lk, buckets)
        )

    def all_metrics(self) -> list[Any]:
        """Every registered metric, sorted by (name, labels).

        The backing dict is copied under the registry lock so iterating
        the result is safe while worker threads register new metrics
        (a bare ``dict.values()`` walk could raise ``RuntimeError:
        dictionary changed size during iteration``).
        """
        with self._lock:
            values = list(self._metrics.values())
        return sorted(values, key=lambda m: (m.name, m.labels))

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-serialisable dump: ``{"counters": [...], "gauges": [...],
        "histograms": [...]}``, each entry carrying name/labels/values.

        Safe to call while other threads mutate the metrics: histogram
        entries are built from a single copy of the bucket counts and
        ``count`` is re-derived from that copy, so every entry satisfies
        ``sum(entry["counts"]) == entry["count"]`` and percentiles are
        computed from the same consistent state (``sum`` may trail the
        copied counts by in-flight observations, which skews the mean by
        at most those observations — it never tears or raises).
        """
        out: dict[str, list[dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for metric in self.all_metrics():
            entry: dict[str, Any] = {
                "name": metric.name,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Counter):
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                counts = list(metric.counts)
                count = sum(counts)
                total = metric.sum
                bounds = metric.bounds
                entry.update(
                    buckets=list(bounds),
                    counts=counts,
                    sum=total,
                    count=count,
                    p50=percentile_from_counts(bounds, counts, count, total, 0.50),
                    p90=percentile_from_counts(bounds, counts, count, total, 0.90),
                    p99=percentile_from_counts(bounds, counts, count, total, 0.99),
                )
                out["histograms"].append(entry)
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        with self._lock:
            self._metrics.clear()


#: The registry backing the gated module-level helpers.
REGISTRY = MetricsRegistry()


def count(name: str, n: float = 1.0, **labels: Any) -> None:
    """Increment a counter — no-op while observability is disabled."""
    if STATE.enabled:
        REGISTRY.counter(name, **labels).inc(n)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge — no-op while observability is disabled."""
    if STATE.enabled:
        REGISTRY.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation — no-op while disabled."""
    if STATE.enabled:
        REGISTRY.histogram(name, **labels).observe(value)


def metrics_snapshot() -> dict[str, list[dict[str, Any]]]:
    """Snapshot of the process-wide registry."""
    return REGISTRY.snapshot()
