"""Typed live-watch alerts: the vocabulary of the online monitor.

A streaming watch (:func:`repro.stream.track_windows` with a
:class:`repro.stream.forecast.StreamMonitor` attached) compares each
tracked region's observed per-window metrics against one-step-ahead
forecasts and emits :class:`AlertRecord`\\ s.  This module defines the
alert taxonomy, thresholds (:class:`AlertConfig`), the JSON-stable
record format (schema :data:`ALERT_SCHEMA`), run totals
(:class:`AlertTotals`) and the ``exit 4`` contract of
``repro-track watch --alerts``.

Alert kinds
-----------
``divergence``
    An observed metric left the forecast's tolerance band:
    ``|observed - forecast|`` exceeded
    ``max(threshold * |forecast|, sigma * residual_std)``.
``regression``
    A region's IPC dropped below its best-seen value by more than
    ``regression_threshold`` (fires once per excursion, re-arms on
    recovery).
``death``
    A region that had been present for at least ``min_history`` frames
    produced no clusters in the new frame (a merge into an older track
    is *not* a death — the merged component keeps the elder identity).
``split``
    A region that had always been a single cluster appeared as two or
    more clusters in the new frame.
``plateau``
    A region whose trend family had been growing (linear / power-law)
    reselected to the saturating plateau model — progress stalled.

Alerts are a **pure observer**: emitting (or disabling) them never
changes regions, relations or labels, a guarantee enforced by the
differential suite in ``tests/stream``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "ALERT_SCHEMA",
    "ALERT_KINDS",
    "EXIT_ALERTS",
    "AlertConfig",
    "AlertRecord",
    "AlertTotals",
    "summarize_alerts",
    "format_alert",
]

#: Version tag of the serialised alert record (JSONL lines, checkpoints).
ALERT_SCHEMA = "repro.alert/1"

#: Every alert kind the monitor can emit, severity-ordered.
ALERT_KINDS: tuple[str, ...] = (
    "divergence",
    "regression",
    "death",
    "split",
    "plateau",
)

#: ``repro-track watch --alerts`` exit code: run completed cleanly but
#: raised at least one alert.  Applied only when the run would otherwise
#: exit 0 — pipeline failures (2) and quarantines (3) take precedence.
EXIT_ALERTS = 4


@dataclass(frozen=True)
class AlertConfig:
    """Thresholds and scope of the online monitor.

    Attributes
    ----------
    threshold:
        Relative divergence floor: an observation must deviate from the
        forecast by more than this fraction of the forecast magnitude.
    sigma:
        Residual multiplier: the deviation must also exceed ``sigma``
        times the model's residual standard deviation, so noisy trends
        get a proportionally wider band.
    min_history:
        Observations a trend needs before divergence / death / split
        checks arm (young tracks churn; alerting on them is noise).
    metrics:
        The per-region metrics monitored each window.
    regression_threshold:
        Relative drop below best-seen IPC that counts as a regression.
    max_regions:
        Monitor only the top-N duration-ranked regions (bounds the
        per-window forecast cost on wide traces).
    reselect_every / max_history:
        Passed to :class:`repro.predict.online.OnlineTrend`: full model
        reselection cadence and the bounded observation window.
    """

    threshold: float = 0.15
    sigma: float = 3.0
    min_history: int = 3
    metrics: tuple[str, ...] = (
        "ipc",
        "instructions",
        "l2_misses",
        "tlb_misses",
    )
    regression_threshold: float = 0.2
    max_regions: int = 16
    reselect_every: int = 4
    max_history: int = 64


@dataclass(frozen=True)
class AlertRecord:
    """One emitted alert, JSON-stable for JSONL output and checkpoints.

    Attributes
    ----------
    window:
        Window index of the frame that triggered the alert (the
        ``"window"`` scenario key; equals *step* for non-windowed
        streams).
    step:
        Stream step (0-based push index) at emission time.
    region_id:
        The region's duration-ranked id *at emission time* — ids can
        re-rank as later windows arrive, which is why *track* exists.
    track:
        Stable track identity: ``"f<frame>:c<cluster>"`` of the
        component's eldest (frame, cluster) node, invariant under
        re-ranking and merges.
    kind:
        One of :data:`ALERT_KINDS`.
    metric:
        The metric that diverged/regressed (``None`` for the structural
        kinds: death, split).
    observed / forecast:
        The observed value and the one-step-ahead prediction
        (``None`` where not applicable).
    threshold:
        The tolerance the deviation exceeded, in absolute metric units.
    deviation:
        ``|observed - forecast|`` (divergence) or the relative drop
        (regression); ``None`` for structural kinds.
    model:
        Class name of the forecasting model (``"LinearModel"``...).
    message:
        Human-readable one-liner, ready for a stderr stream line.
    """

    window: int
    step: int
    region_id: int
    track: str
    kind: str
    metric: str | None = None
    observed: float | None = None
    forecast: float | None = None
    threshold: float | None = None
    deviation: float | None = None
    model: str | None = None
    message: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (one JSONL line's payload)."""
        return {
            "schema": ALERT_SCHEMA,
            "window": self.window,
            "step": self.step,
            "region_id": self.region_id,
            "track": self.track,
            "kind": self.kind,
            "metric": self.metric,
            "observed": self.observed,
            "forecast": self.forecast,
            "threshold": self.threshold,
            "deviation": self.deviation,
            "model": self.model,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlertRecord":
        """Rebuild a record from its JSON form (checkpoint replay)."""
        kind = str(data["kind"])
        if kind not in ALERT_KINDS:
            raise ValueError(f"unknown alert kind {kind!r}")

        def opt_float(key: str) -> float | None:
            value = data.get(key)
            return None if value is None else float(value)

        return cls(
            window=int(data["window"]),
            step=int(data["step"]),
            region_id=int(data["region_id"]),
            track=str(data["track"]),
            kind=kind,
            metric=(
                None if data.get("metric") is None else str(data["metric"])
            ),
            observed=opt_float("observed"),
            forecast=opt_float("forecast"),
            threshold=opt_float("threshold"),
            deviation=opt_float("deviation"),
            model=None if data.get("model") is None else str(data["model"]),
            message=str(data.get("message", "")),
        )


def format_alert(alert: AlertRecord) -> str:
    """The stderr stream line of one alert."""
    head = (
        f"ALERT [{alert.kind}] window {alert.window} "
        f"region {alert.region_id}"
    )
    if alert.metric is not None:
        head += f" {alert.metric}"
    return f"{head}: {alert.message}" if alert.message else head


@dataclass(frozen=True)
class AlertTotals:
    """Run-level alert totals, by kind and by region.

    The :class:`~repro.obs.quality.QualityReport` extension carried by
    alert-enabled watch runs.  ``by_region`` keys are emission-time
    region ids (stringified for JSON stability).
    """

    total: int
    by_kind: tuple[tuple[str, int], ...] = field(default_factory=tuple)
    by_region: tuple[tuple[str, int], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "total": self.total,
            "by_kind": {kind: n for kind, n in self.by_kind},
            "by_region": {region: n for region, n in self.by_region},
        }


def summarize_alerts(alerts: Iterable[AlertRecord]) -> AlertTotals:
    """Aggregate a run's alerts into :class:`AlertTotals`."""
    by_kind: dict[str, int] = {}
    by_region: dict[str, int] = {}
    total = 0
    for alert in alerts:
        total += 1
        by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
        region = str(alert.region_id)
        by_region[region] = by_region.get(region, 0) + 1
    return AlertTotals(
        total=total,
        by_kind=tuple(sorted(by_kind.items())),
        by_region=tuple(sorted(by_region.items())),
    )
