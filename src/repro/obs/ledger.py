"""Durable run ledger: schema-versioned JSONL records of pipeline runs.

Every pipeline entry point (``quick_track``, ``Tracker.run``,
``ParametricStudy.run``, ``track_windows`` and the CLI subcommands)
can append a *start* and an *end* event to a ledger directory so that
long-running deployments keep a durable, queryable record of what ran,
with which configuration, and how it went — exit code, wall time, RSS
peak, quarantine totals, quality summary and alert totals.

Design mirrors :class:`repro.parallel.cache.PipelineCache` hygiene:

* **Atomic appends** — each event is one JSON line written with a
  single ``os.write`` to an ``O_APPEND`` descriptor, so concurrent
  processes sharing a ledger dir interleave whole lines, never bytes.
* **Rotation** — events go to ``events-NNNNNNNN.jsonl`` segments; a
  segment that would exceed ``max_bytes`` is closed and the next index
  opened, keeping individual files tail-able and cheap to scan.
* **Corrupt-line tolerance** — readers skip (and count) lines that are
  truncated or fail to parse instead of crashing; a half-written line
  from a killed process cannot poison the ledger.

The ledger is opt-in: :func:`resolve_ledger` returns ``None`` unless a
directory is given explicitly (``--ledger-dir``) or via the
``REPRO_LEDGER`` environment variable, and the disabled path is a
handful of ``None`` checks.  Nested entry points do not double-record:
only the outermost :func:`run_record` in a process writes events, and
inner code can enrich the eventual *end* event through
:func:`annotate`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.core import run_id as process_run_id

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "JsonlJournal",
    "RunLedger",
    "RunRecorder",
    "RunSummary",
    "resolve_ledger",
    "run_record",
    "begin_run",
    "annotate",
    "active_recorder",
    "config_digest",
]

#: Schema tag stamped on every ledger event.
LEDGER_SCHEMA = "repro.ledger/1"

#: Environment variable naming the default ledger directory.
LEDGER_ENV = "REPRO_LEDGER"

#: Rotate to a new segment once the current one reaches this size.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".jsonl"


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to JSON-stable primitives for digesting."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return float(obj)
    if hasattr(obj, "__dataclass_fields__"):
        return _canonical(
            {name: getattr(obj, name) for name in obj.__dataclass_fields__}
        )
    return repr(obj)


def config_digest(*parts: Any) -> str:
    """Short stable digest of configuration objects (dataclasses, dicts).

    Used in *start* events so runs with identical configuration share a
    digest without the ledger storing (possibly large) full configs.
    """
    payload = json.dumps(_canonical(parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def rss_peak_kib() -> int:
    """Peak RSS of this process in KiB (0 where unavailable)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError, OSError):  # pragma: no cover - exotic platform
        return 0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - mac only
        peak //= 1024
    return int(peak)


class JsonlJournal:
    """Append-only JSONL event store rooted at one directory.

    The reusable core of the run ledger — atomic ``O_APPEND`` line
    writes, size-based segment rotation and corrupt-line-tolerant
    reads — parameterised by the schema tag stamped on every event.
    :class:`RunLedger` specialises it for pipeline run records;
    :class:`repro.serve.journal.JobJournal` reuses it as the job
    server's durable state journal.
    """

    #: Schema tag stamped on every event; subclasses override.
    schema = LEDGER_SCHEMA

    def __init__(
        self,
        root: str | Path,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        schema: str | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.corrupt_lines = 0
        if schema is not None:
            self.schema = schema
        self.root.mkdir(parents=True, exist_ok=True)

    # -- writing ------------------------------------------------------

    def _segments(self) -> list[Path]:
        """Existing segment files, oldest first."""
        return sorted(
            p
            for p in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def _segment_index(self, path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _writable_segment(self, payload_size: int) -> Path:
        segments = self._segments()
        if not segments:
            return self._segment_path(1)
        current = segments[-1]
        try:
            size = current.stat().st_size
        except OSError:
            size = 0
        if size and size + payload_size > self.max_bytes:
            return self._segment_path(self._segment_index(current) + 1)
        return current

    def append(self, event: dict[str, Any]) -> None:
        """Append one event (adds the schema tag); atomic per line.

        Ledger writes must never take a run down: any OS-level failure
        is swallowed after counting it.
        """
        record = {"schema": self.schema}
        record.update(event)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        path = self._writable_segment(len(data))
        try:
            fd = os.open(
                str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, data)
            finally:
                os.close(fd)
        except OSError:
            pass  # a full disk or revoked dir must not take the run down

    # -- reading ------------------------------------------------------

    def iter_events(self) -> Iterator[dict[str, Any]]:
        """Yield parsed events oldest-first, skipping corrupt lines.

        Corrupt (unparseable or schema-less) lines increment
        :attr:`corrupt_lines` and are otherwise ignored, mirroring the
        pipeline cache's tolerance of damaged entries.
        """
        for segment in self._segments():
            try:
                text = segment.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except (json.JSONDecodeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                if not isinstance(event, dict) or "schema" not in event:
                    self.corrupt_lines += 1
                    continue
                yield event

    def read_events(self) -> list[dict[str, Any]]:
        """All parseable events, oldest first."""
        return list(self.iter_events())


class RunLedger(JsonlJournal):
    """Pipeline run ledger: the :class:`JsonlJournal` of run records."""

    schema = LEDGER_SCHEMA

    def runs(self) -> list["RunSummary"]:
        """Pair start/end events into per-run summaries, oldest first."""
        summaries: dict[str, RunSummary] = {}
        order: list[str] = []
        for event in self.iter_events():
            rid = str(event.get("run_id", ""))
            entry = str(event.get("entry", ""))
            key = f"{rid}:{entry}"
            kind = event.get("event")
            if kind == "start":
                summary = RunSummary(
                    run_id=rid,
                    entry=entry,
                    started_at=float(event.get("ts", 0.0)),
                    argv=list(event.get("argv") or []),
                    config_digest=str(event.get("config_digest", "")),
                    meta={
                        k: v
                        for k, v in event.items()
                        if k
                        not in {
                            "schema",
                            "event",
                            "run_id",
                            "entry",
                            "ts",
                            "argv",
                            "config_digest",
                        }
                    },
                )
                summaries[key] = summary
                order.append(key)
            elif kind == "end":
                summary = summaries.get(key)
                if summary is None:
                    summary = RunSummary(run_id=rid, entry=entry)
                    summaries[key] = summary
                    order.append(key)
                summary.ended_at = float(event.get("ts", 0.0))
                summary.exit_code = event.get("exit_code")
                summary.wall_s = float(event.get("wall_s", 0.0))
                summary.rss_peak_kib = int(event.get("rss_peak_kib", 0))
                summary.error = event.get("error")
                summary.quality = event.get("quality")
                summary.alerts = event.get("alerts")
                summary.sampler = event.get("sampler")
                summary.end_meta = {
                    k: v
                    for k, v in event.items()
                    if k
                    not in {
                        "schema",
                        "event",
                        "run_id",
                        "entry",
                        "ts",
                        "exit_code",
                        "wall_s",
                        "rss_peak_kib",
                        "error",
                        "quality",
                        "alerts",
                        "sampler",
                    }
                }
        return [summaries[key] for key in order]


@dataclass
class RunSummary:
    """One run reconstructed from its start/end events."""

    run_id: str
    entry: str
    started_at: float = 0.0
    ended_at: float | None = None
    exit_code: int | None = None
    wall_s: float = 0.0
    rss_peak_kib: int = 0
    error: str | None = None
    argv: list[str] = field(default_factory=list)
    config_digest: str = ""
    quality: dict[str, Any] | None = None
    alerts: dict[str, Any] | None = None
    sampler: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    end_meta: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """Whether the run has no end event (crashed or still running)."""
        return self.ended_at is None


def resolve_ledger(
    ledger_dir: str | Path | None = None, *, env: bool = True
) -> RunLedger | None:
    """Build a :class:`RunLedger` from an explicit dir or ``REPRO_LEDGER``.

    Returns ``None`` when neither source names a directory — the ledger
    is strictly opt-in.
    """
    if ledger_dir is None and env:
        ledger_dir = os.environ.get(LEDGER_ENV) or None
    if ledger_dir is None:
        return None
    try:
        return RunLedger(ledger_dir)
    except OSError:
        return None


class RunRecorder:
    """Live handle for one recorded run; writes start now, end on close."""

    def __init__(
        self,
        ledger: RunLedger,
        entry: str,
        meta: dict[str, Any],
    ) -> None:
        self.ledger = ledger
        self.entry = entry
        self.run_id = process_run_id()
        self.extra: dict[str, Any] = {}
        self._wall0 = time.perf_counter()
        self._closed = False
        event: dict[str, Any] = {
            "event": "start",
            "run_id": self.run_id,
            "entry": entry,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        event.update(meta)
        ledger.append(event)

    def annotate(self, **fields: Any) -> None:
        """Merge fields into the eventual *end* event."""
        self.extra.update(fields)

    def close(self, exit_code: int = 0, error: str | None = None) -> None:
        """Write the *end* event (idempotent)."""
        if self._closed:
            return
        self._closed = True
        event: dict[str, Any] = {
            "event": "end",
            "run_id": self.run_id,
            "entry": self.entry,
            "ts": time.time(),
            "exit_code": int(exit_code),
            "wall_s": round(time.perf_counter() - self._wall0, 6),
            "rss_peak_kib": rss_peak_kib(),
        }
        if error:
            event["error"] = error
        event.update(self.extra)
        self.ledger.append(event)


#: Stack of recorders active in this process (outermost first).  Only
#: the outermost entry point records a run; nested entry points see the
#: guard and stay silent, but can still :func:`annotate` the active one.
_ACTIVE: list[RunRecorder] = []


def active_recorder() -> RunRecorder | None:
    """The recorder of the outermost in-flight run, if any."""
    return _ACTIVE[0] if _ACTIVE else None


def annotate(**fields: Any) -> None:
    """Enrich the active run's end event; no-op without an active run."""
    rec = active_recorder()
    if rec is not None:
        rec.annotate(**fields)


def begin_run(
    entry: str,
    *,
    ledger: RunLedger | None = None,
    ledger_dir: str | Path | None = None,
    **meta: Any,
) -> RunRecorder | None:
    """Start recording a run; returns ``None`` when disabled or nested.

    The caller owns the returned recorder and must call
    :func:`end_run` (or ``recorder.close`` + :func:`end_run`) when done.
    """
    if _ACTIVE:
        return None
    if ledger is None:
        ledger = resolve_ledger(ledger_dir)
    if ledger is None:
        return None
    rec = RunRecorder(ledger, entry, meta)
    _ACTIVE.append(rec)
    return rec


def end_run(
    rec: RunRecorder | None, exit_code: int = 0, error: str | None = None
) -> None:
    """Close a recorder returned by :func:`begin_run` (``None``-safe)."""
    if rec is None:
        return
    if rec in _ACTIVE:
        _ACTIVE.remove(rec)
    rec.close(exit_code=exit_code, error=error)


@contextmanager
def run_record(
    entry: str,
    *,
    ledger: RunLedger | None = None,
    ledger_dir: str | Path | None = None,
    **meta: Any,
):
    """Context manager recording one run around a pipeline entry point.

    Yields the :class:`RunRecorder` (annotate it with result summaries
    before the block exits) or ``None`` when the ledger is disabled or
    an outer entry point is already recording.  Exceptions close the
    run with exit code 2 (the CLI's total-failure code) and the error
    type, then propagate.
    """
    rec = begin_run(entry, ledger=ledger, ledger_dir=ledger_dir, **meta)
    try:
        yield rec
    except BaseException as exc:
        end_run(rec, exit_code=2, error=type(exc).__name__)
        raise
    else:
        end_run(rec, exit_code=0)
