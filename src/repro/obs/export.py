"""Exporters: stage-time tree, JSON-lines dump, Chrome Trace Event file.

Three views of the same recorded spans + metrics:

- :func:`render_tree` — a human-readable aggregated stage tree (spans
  with the same name under the same parent collapse into one line with
  a call count), followed by the counter/gauge listing; this is what
  the CLI's ``--profile`` prints to stderr.
- :func:`write_jsonl` — one JSON object per span plus one trailing
  ``{"metrics": ...}`` record; trivially greppable/jq-able.
- :func:`write_chrome_trace` — the Chrome Trace Event format (complete
  ``"X"`` events), loadable in ``chrome://tracing`` / Perfetto.

All exporters take an explicit span list so tests can feed synthetic
data; by default they read the process-wide recorder.  An interpreter
``atexit`` fallback prints the tree when ``REPRO_OBS`` was set but the
program never flushed explicitly.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
from typing import Any, Sequence, TextIO

from repro.obs.core import STATE
from repro.obs.core import run_id as process_run_id
from repro.obs.metrics import REGISTRY, Counter, Gauge, format_labels
from repro.obs.spans import Span

__all__ = [
    "render_tree",
    "render_metrics",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "summary",
    "install_atexit_summary",
]


def _format_seconds(seconds: float) -> str:
    """Adaptive duration formatting: µs under 1ms, ms under 1s, else s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _attr_summary(attrs: dict[str, Any], limit: int = 6) -> str:
    """Compact ``k=v`` rendering of span attributes."""
    items = []
    for key, value in list(attrs.items())[:limit]:
        if isinstance(value, float):
            value = f"{value:.4g}"
        items.append(f"{key}={value}")
    return " ".join(items)


def _children_index(spans: Sequence[Span]) -> dict[int, list[Span]]:
    """Map parent span id (0 = root) to its child spans, start-ordered."""
    children: dict[int, list[Span]] = {}
    for sp in spans:
        children.setdefault(sp.parent_id, []).append(sp)
    for members in children.values():
        members.sort(key=lambda sp: sp.start)
    return children


def render_tree(spans: Sequence[Span] | None = None) -> str:
    """Aggregated stage-time tree of the recorded spans.

    Sibling spans sharing a name collapse into one line carrying the
    call count, total/mean time, and — for single calls — the span's
    attributes.  Children are aggregated within their name group, so
    repeated stages (one span per frame, per pair...) stay readable.
    """
    spans = list(STATE.spans) if spans is None else list(spans)
    if not spans:
        return "(no spans recorded — is REPRO_OBS enabled?)"
    children = _children_index(spans)
    lines: list[str] = ["stage-time tree"]

    def walk(members: list[Span], depth: int) -> None:
        # Group same-name siblings, keep first-start order of groups.
        groups: dict[str, list[Span]] = {}
        for sp in members:
            groups.setdefault(sp.name, []).append(sp)
        for name, group in groups.items():
            total = sum(sp.duration for sp in group)
            indent = "  " * (depth + 1)
            if len(group) == 1:
                attrs = _attr_summary(group[0].attrs)
                suffix = f"  [{attrs}]" if attrs else ""
                lines.append(f"{indent}{name}  {_format_seconds(total)}{suffix}")
            else:
                mean = total / len(group)
                lines.append(
                    f"{indent}{name}  x{len(group)}  total={_format_seconds(total)}"
                    f"  mean={_format_seconds(mean)}"
                )
            grandchildren: list[Span] = []
            for sp in group:
                grandchildren.extend(children.get(sp.span_id, ()))
            if grandchildren:
                walk(grandchildren, depth + 1)

    walk(children.get(0, []), 0)
    return "\n".join(lines)


def render_metrics() -> str:
    """Counters and gauges as one ``name{labels} = value`` line each."""
    lines: list[str] = []
    for metric in REGISTRY.all_metrics():
        label = f"{metric.name}{format_labels(metric.labels)}"
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"  {label} = {metric.value:g}")
        else:
            lines.append(
                f"  {label} count={metric.count} mean={metric.mean:g} "
                f"p50={metric.p50:g} p90={metric.p90:g} p99={metric.p99:g} "
                f"sum={metric.sum:g}"
            )
    if not lines:
        return ""
    return "\n".join(["metrics", *lines])


def chrome_trace_events(
    spans: Sequence[Span] | None = None,
    samples: Sequence[Any] | None = None,
) -> list[dict[str, Any]]:
    """Recorded spans as Chrome Trace Event format events.

    Timestamps/durations are microseconds relative to the observability
    epoch, as the format requires.  Besides the ``"X"`` (complete)
    events the export carries:

    - ``"M"`` metadata events naming the main process and every pool
      worker, so Perfetto shows "repro main" / "repro worker" lanes
      instead of bare pids;
    - ``"s"``/``"f"`` flow events linking each ``pmap`` dispatch span
      to the worker-side task spans it fanned out (spans recorded by
      the process executor with a ``flow_id`` attribute), rendered as
      arrows from the dispatching lane into the worker lanes;
    - ``"C"`` counter events for each resource *sample* (see
      :class:`repro.obs.runtime.ResourceSampler`), plotting RSS, CPU,
      open FDs and pipeline occupancy as counter tracks over the run.
    """
    spans = list(STATE.spans) if spans is None else list(spans)
    main_pid = os.getpid()
    main_tid = threading.get_ident() & 0xFFFF
    # Dispatch spans referenced by at least one worker-task span emit
    # the flow-start arrow tail.
    dispatch_ids = {
        int(sp.attrs["flow_id"])
        for sp in spans
        if sp.attrs.get("flow_id") and sp.attrs.get("worker_pid")
    }
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": main_pid,
            "tid": main_tid,
            "args": {"name": "repro main"},
        }
    ]
    worker_pids = sorted(
        {int(sp.attrs["worker_pid"]) for sp in spans if sp.attrs.get("worker_pid")}
    )
    for pid in worker_pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro worker"},
            }
        )
    for sp in sorted(spans, key=lambda s: s.start):
        worker_pid = sp.attrs.get("worker_pid")
        pid = int(worker_pid) if worker_pid else main_pid
        tid = 0 if worker_pid else main_tid
        events.append(
            {
                "name": sp.name,
                "ph": "X",
                "ts": sp.start * 1e6,
                "dur": sp.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
            }
        )
        flow_id = sp.attrs.get("flow_id")
        if worker_pid and flow_id:
            # Arrow head: the task arriving on the worker's lane.
            events.append(
                {
                    "name": "pmap.dispatch",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": int(flow_id),
                    "ts": sp.start * 1e6,
                    "pid": pid,
                    "tid": tid,
                }
            )
        elif sp.span_id in dispatch_ids:
            # Arrow tail: the dispatching pmap span on the main lane.
            events.append(
                {
                    "name": "pmap.dispatch",
                    "cat": "flow",
                    "ph": "s",
                    "id": sp.span_id,
                    "ts": sp.start * 1e6,
                    "pid": pid,
                    "tid": tid,
                }
            )
    for sample in samples or ():
        events.append(
            {
                "name": "runtime.resources",
                "ph": "C",
                "ts": sample.t * 1e6,
                "pid": main_pid,
                "tid": 0,
                "args": {
                    "rss_kib": sample.rss_kib,
                    "open_fds": sample.open_fds,
                    "live_windows": sample.live_windows,
                    "evalcache_entries": sample.evalcache_entries,
                },
            }
        )
        events.append(
            {
                "name": "runtime.gc",
                "ph": "C",
                "ts": sample.t * 1e6,
                "pid": main_pid,
                "tid": 0,
                "args": {
                    "gen0": sample.gc_gen0,
                    "gen1": sample.gc_gen1,
                    "gen2": sample.gc_gen2,
                },
            }
        )
    return events


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars and other odd attribute values for JSON."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    return str(value)


def write_chrome_trace(
    path: str | os.PathLike,
    spans: Sequence[Span] | None = None,
    samples: Sequence[Any] | None = None,
) -> str:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path.

    *samples* (resource-sampler readings) become counter tracks; the
    process run id rides in ``otherData`` so concurrent sessions'
    traces stay attributable.
    """
    document = {
        "traceEvents": chrome_trace_events(spans, samples),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "run_id": process_run_id()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return str(path)


def write_jsonl(path: str | os.PathLike, spans: Sequence[Span] | None = None) -> str:
    """Write one JSON object per span plus a final metrics record."""
    spans = list(STATE.spans) if spans is None else list(spans)
    with open(path, "w", encoding="utf-8") as handle:
        for sp in spans:
            handle.write(
                json.dumps(
                    {
                        "span_id": sp.span_id,
                        "parent_id": sp.parent_id,
                        "name": sp.name,
                        "start": sp.start,
                        "end": sp.end,
                        "duration": sp.duration,
                        "attrs": {k: _jsonable(v) for k, v in sp.attrs.items()},
                    }
                )
                + "\n"
            )
        handle.write(
            json.dumps(
                {"metrics": REGISTRY.snapshot(), "run_id": process_run_id()}
            )
            + "\n"
        )
    return str(path)


def summary(stream: TextIO | None = None) -> None:
    """Print the stage tree and metrics to *stream* (default stderr)."""
    stream = stream if stream is not None else sys.stderr
    print(render_tree(), file=stream)
    metrics = render_metrics()
    if metrics:
        print(metrics, file=stream)
    STATE.flushed = True


_ATEXIT_INSTALLED = False


def install_atexit_summary() -> None:
    """Print the summary at interpreter exit unless flushed explicitly.

    Installed automatically on first enablement through ``REPRO_OBS``
    so library consumers get a report without any code change; explicit
    :func:`summary`/CLI flushes suppress it.
    """
    global _ATEXIT_INSTALLED
    if _ATEXIT_INSTALLED:
        return
    _ATEXIT_INSTALLED = True

    def _flush_at_exit() -> None:
        if STATE.spans and not STATE.flushed:
            summary()

    atexit.register(_flush_at_exit)
