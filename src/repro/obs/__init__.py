"""repro.obs — observability for the tracking pipeline.

Span tracing, a process-local metrics registry, and exporters
(stage-time tree, JSON-lines, Chrome Trace Event format) behind one
near-zero-overhead switch:

- set ``REPRO_OBS=1`` in the environment, or call :func:`enable`;
- instrument with :func:`span` / :func:`traced` and the metric helpers
  :func:`count`, :func:`set_gauge`, :func:`observe`;
- render with :func:`summary` (stderr tree) or write files with
  :func:`write_chrome_trace` / :func:`write_jsonl`.

While disabled (the default) every entry point returns after a single
module-attribute check and allocates nothing, so instrumentation can
stay in hot paths permanently.  See ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.core import (
    STATE,
    disable,
    enable,
    enabled,
    is_env_enabled,
    new_run_id,
    run_id,
    set_run_id,
)
from repro.obs.export import (
    chrome_trace_events,
    install_atexit_summary,
    render_metrics,
    render_tree,
    summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    metrics_snapshot,
    observe,
    set_gauge,
)
from repro.obs.ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    RunLedger,
    RunRecorder,
    RunSummary,
    resolve_ledger,
    run_record,
)
from repro.obs.runtime import (
    SAMPLE_ENV,
    ResourceSampler,
    Sample,
    active_sampler,
    resolve_sampler,
    set_active_sampler,
)
from repro.obs.spans import (
    Span,
    current_span,
    finished_spans,
    record_span,
    span,
    traced,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "is_env_enabled",
    "reset",
    "span",
    "traced",
    "Span",
    "current_span",
    "finished_spans",
    "record_span",
    "count",
    "set_gauge",
    "observe",
    "metrics_snapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "render_tree",
    "render_metrics",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "summary",
    "install_atexit_summary",
    "get_logger",
    "configure_logging",
    "run_id",
    "new_run_id",
    "set_run_id",
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "RunLedger",
    "RunRecorder",
    "RunSummary",
    "resolve_ledger",
    "run_record",
    "SAMPLE_ENV",
    "Sample",
    "ResourceSampler",
    "resolve_sampler",
    "active_sampler",
    "set_active_sampler",
]


def reset() -> None:
    """Clear all recorded spans and metrics (the enabled flag is kept)."""
    STATE.reset()
    REGISTRY.reset()


# Library consumers running with REPRO_OBS=1 get a stderr report even if
# they never flush; explicit summary()/CLI --profile suppresses it.
if is_env_enabled():  # pragma: no cover - exercised via subprocess tests
    install_atexit_summary()
