"""Benchmark result files and perf-regression comparison.

The benchmark suite (``benchmarks/``) records every bench's wall-time
and the process RSS high-water mark into a schema-versioned
``BENCH_RESULTS.json`` (see :func:`bench_results_payload`, written by
``benchmarks/conftest.py``).  ``repro-track bench-compare OLD NEW``
loads two such files and flags regressions beyond a noise threshold —
CI keeps the artefacts so any two commits can be compared.

A bench counts as regressed when its wall-time grew by more than
*threshold* (relative) **and** more than *min_seconds* (absolute); the
absolute floor keeps micro-benches in the sub-millisecond noise band
from tripping the gate.  RSS can gate too (``rss_threshold``), with the
same relative-and-absolute shape (*min_rss_kib* floor).  Because the
``ru_maxrss`` high-water mark is process-wide and monotonic — later
benches inherit earlier peaks — the RSS gate is only meaningful when
OLD and NEW ran the same bench selection in the same order, which is
how the CI perf job invokes it.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "BENCH_SCHEMA",
    "BenchDelta",
    "rss_peak_kib",
    "bench_results_payload",
    "load_bench_results",
    "compare_bench_results",
    "format_bench_comparison",
]

#: Version tag of the serialised benchmark-results payload.
BENCH_SCHEMA = "repro.bench/1"


def rss_peak_kib() -> int:
    """The process RSS high-water mark, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalise so the
    payload is comparable across both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def bench_results_payload(
    benches: Mapping[str, Mapping[str, float]],
) -> dict[str, Any]:
    """The versioned ``BENCH_RESULTS.json`` payload.

    *benches* maps bench id (the pytest nodeid) to its measurements —
    ``wall_time_s`` is required, ``rss_peak_kib`` optional.
    """
    return {
        "schema": BENCH_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benches": {
            name: dict(measurements)
            for name, measurements in sorted(benches.items())
        },
    }


def load_bench_results(path: str | Path) -> dict[str, dict[str, float]]:
    """Load and validate a ``BENCH_RESULTS.json`` file.

    Returns the ``benches`` mapping.  Raises :class:`ValueError` on a
    missing/foreign schema tag or malformed entries, so a stale or
    truncated artefact fails loudly instead of comparing garbage.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    benches = payload.get("benches")
    if not isinstance(benches, dict):
        raise ValueError(f"{path}: missing 'benches' mapping")
    for name, measurements in benches.items():
        if not isinstance(measurements, dict) or not isinstance(
            measurements.get("wall_time_s"), (int, float)
        ):
            raise ValueError(f"{path}: bench {name!r} has no wall_time_s")
    return benches


@dataclass(frozen=True)
class BenchDelta:
    """One bench's old-vs-new comparison row."""

    name: str
    old_s: float
    new_s: float
    regressed: bool
    old_rss_kib: int | None = None
    new_rss_kib: int | None = None
    rss_regressed: bool = False

    @property
    def ratio(self) -> float:
        """new/old wall-time ratio (``inf`` when old was zero)."""
        if self.old_s <= 0.0:
            return float("inf") if self.new_s > 0.0 else 1.0
        return self.new_s / self.old_s

    @property
    def failed(self) -> bool:
        """Whether either gate (wall-time or RSS) tripped."""
        return self.regressed or self.rss_regressed


def compare_bench_results(
    old: Mapping[str, Mapping[str, float]],
    new: Mapping[str, Mapping[str, float]],
    *,
    threshold: float = 0.25,
    min_seconds: float = 0.005,
    rss_threshold: float | None = None,
    min_rss_kib: int = 10_240,
) -> list[BenchDelta]:
    """Compare two bench mappings; one delta per bench present in both.

    A bench regresses when ``new - old`` wall-time exceeds both
    ``threshold * old`` and *min_seconds*.  When *rss_threshold* is
    given, a bench also fails when its RSS peak grew by more than
    ``rss_threshold * old_rss`` and more than *min_rss_kib* (the floor
    keeps allocator jitter on small heaps out of the gate).  Benches
    missing RSS data on either side never RSS-regress.
    """
    deltas: list[BenchDelta] = []
    for name in sorted(set(old) & set(new)):
        old_s = float(old[name]["wall_time_s"])
        new_s = float(new[name]["wall_time_s"])
        grew = new_s - old_s
        regressed = grew > max(threshold * old_s, min_seconds)
        old_rss = old[name].get("rss_peak_kib")
        new_rss = new[name].get("rss_peak_kib")
        rss_regressed = False
        if (
            rss_threshold is not None
            and old_rss is not None
            and new_rss is not None
        ):
            rss_grew = float(new_rss) - float(old_rss)
            rss_regressed = rss_grew > max(
                rss_threshold * float(old_rss), float(min_rss_kib)
            )
        deltas.append(
            BenchDelta(
                name=name,
                old_s=old_s,
                new_s=new_s,
                regressed=regressed,
                old_rss_kib=None if old_rss is None else int(old_rss),
                new_rss_kib=None if new_rss is None else int(new_rss),
                rss_regressed=rss_regressed,
            )
        )
    return deltas


def _format_delta(delta: BenchDelta) -> str:
    flag = "REGRESSED" if delta.regressed else (
        "faster" if delta.new_s < delta.old_s else "ok"
    )
    line = (
        f"  {delta.name}: {delta.old_s:.4f}s -> {delta.new_s:.4f}s "
        f"({delta.ratio:.2f}x) {flag}"
    )
    if delta.old_rss_kib is not None and delta.new_rss_kib is not None:
        line += (
            f"  [rss {delta.old_rss_kib / 1024:.0f} -> "
            f"{delta.new_rss_kib / 1024:.0f} MiB"
            f"{' RSS-REGRESSED' if delta.rss_regressed else ''}]"
        )
    return line


def format_bench_comparison(
    deltas: list[BenchDelta],
    *,
    old_only: set[str] | frozenset[str] = frozenset(),
    new_only: set[str] | frozenset[str] = frozenset(),
) -> str:
    """Human-readable comparison report."""
    lines = [f"compared {len(deltas)} bench(es)"]
    lines.extend(_format_delta(delta) for delta in deltas)
    regressions = [delta for delta in deltas if delta.failed]
    if old_only:
        lines.append(
            "only in OLD (skipped): " + ", ".join(sorted(old_only))
        )
    if new_only:
        lines.append(
            "only in NEW (skipped): " + ", ".join(sorted(new_only))
        )
    if regressions:
        lines.append(
            f"{len(regressions)} regression(s) beyond the noise threshold"
        )
    else:
        lines.append("no regressions")
    return "\n".join(lines)
