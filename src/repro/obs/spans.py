"""Span tracing: nested, monotonic-clocked stages with attributes.

A *span* covers one pipeline stage — clustering one frame, running one
evaluator, simulating one application — with a monotonic start/end
timestamp and arbitrary key/value attributes (burst counts, eps, frame
index...).  Spans nest through a per-thread stack, so the exporters can
rebuild the stage tree of a whole run.

Usage::

    with obs.span("clustering.dbscan", n_points=n, eps=eps) as sp:
        ...
        sp.set(n_clusters=result.n_clusters)

    @obs.traced("tracking.trends")
    def compute_trends(...): ...

When observability is disabled, :func:`span` returns a shared no-op
object after one flag check — the disabled path allocates nothing.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TypeVar

from repro.obs.core import STATE

__all__ = [
    "Span", "span", "traced", "current_span", "finished_spans",
    "record_span",
]

F = TypeVar("F", bound=Callable[..., Any])


class Span:
    """One timed stage.  Use as a context manager; never instantiate a
    :class:`Span` for a disabled run (that is :func:`span`'s job).

    Attributes
    ----------
    span_id / parent_id:
        Process-unique ids; ``parent_id`` is ``0`` for root spans.
    name:
        Dotted stage name (``layer.stage`` convention).
    attrs:
        Mutable attribute mapping; extend with :meth:`set`.
    start / end:
        Seconds since the observability epoch (monotonic clock);
        ``end`` is ``0.0`` while the span is open.
    """

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start", "end")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.start = 0.0
        self.end = 0.0

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes; returns the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = STATE.stack
        self.span_id = STATE.next_id()
        self.parent_id = stack[-1].span_id if stack else 0
        stack.append(self)
        STATE.active_stage = self.name
        self.start = time.perf_counter() - STATE.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter() - STATE.epoch
        stack = STATE.stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit (generator teardown etc.)
            stack.remove(self)
        STATE.active_stage = stack[-1].name if stack else ""
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        STATE.spans.append(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, duration={self.duration:.6f}, "
            f"attrs={self.attrs!r})"
        )


class _NullSpan:
    """Shared do-nothing stand-in used whenever observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a span named *name* with initial attributes.

    Returns a context manager; the real :class:`Span` only when
    observability is enabled, else the shared no-op singleton.
    """
    if not STATE.enabled:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable[[F], F]:
    """Decorator tracing every call of the wrapped function as a span.

    *name* defaults to the function's qualified name.  The disabled
    path is a single flag check before delegating.
    """

    def decorate(fn: F) -> F:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not STATE.enabled:
                return fn(*args, **kwargs)
            with Span(span_name, dict(attrs)):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def record_span(
    name: str,
    start: float,
    end: float,
    *,
    parent: Span | None = None,
    **attrs: Any,
) -> Span | None:
    """Record an already-finished span from externally measured times.

    Used for work that ran outside the recorder's reach — a pool
    worker's task timed inside the worker process — and is stitched
    into the parent's tree afterwards.  *start*/*end* are seconds
    relative to the observability epoch (clamped to >= 0 so a foreign
    clock can't produce negative timestamps).  No-op (returns ``None``)
    while observability is disabled.
    """
    if not STATE.enabled:
        return None
    sp = Span(name, attrs)
    sp.span_id = STATE.next_id()
    sp.parent_id = parent.span_id if parent is not None else 0
    sp.start = max(0.0, start)
    sp.end = max(sp.start, end)
    STATE.spans.append(sp)
    return sp


def current_span() -> Span | None:
    """The innermost open span of the calling thread, if any."""
    stack = STATE.stack
    return stack[-1] if stack else None


def finished_spans() -> tuple[Span, ...]:
    """All completed spans recorded so far, in completion order."""
    return tuple(STATE.spans)
