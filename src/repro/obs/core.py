"""Process-local observability state and the enabled flag.

The whole :mod:`repro.obs` subsystem hinges on one module-level switch:
when disabled (the default) every instrumentation entry point returns a
shared no-op object after a single attribute check, so the instrumented
hot paths pay essentially nothing.  Enable it with the ``REPRO_OBS=1``
environment variable or :func:`enable` before running the pipeline.

The state is deliberately process-local (no files, no sockets): spans
and metrics accumulate in memory and are rendered or written out by
:mod:`repro.obs.export` on explicit flush or at interpreter exit.
"""

from __future__ import annotations

import binascii
import os
import threading
import time

__all__ = [
    "ObsState",
    "STATE",
    "enabled",
    "enable",
    "disable",
    "is_env_enabled",
    "run_id",
    "new_run_id",
    "set_run_id",
]

_TRUTHY = {"1", "true", "yes", "on"}

#: Environment variable toggling observability at import time.
ENV_VAR = "REPRO_OBS"


def is_env_enabled() -> bool:
    """Whether the ``REPRO_OBS`` environment variable requests tracing."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class ObsState:
    """Mutable container for one process's observability context.

    Attributes
    ----------
    enabled:
        The master switch; instrumentation checks it before allocating
        anything.
    spans:
        Finished :class:`~repro.obs.spans.Span` objects, in completion
        order (children therefore precede their parents).
    epoch:
        ``perf_counter`` origin all span timestamps are relative to.
    flushed:
        Set by explicit flushes so the atexit fallback stays silent.
    """

    __slots__ = (
        "enabled",
        "spans",
        "epoch",
        "flushed",
        "active_stage",
        "_lock",
        "_next_id",
        "_local",
    )

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: list = []
        self.epoch = time.perf_counter()
        self.flushed = False
        #: Name of the innermost open span on the most recent thread to
        #: enter/exit one.  Unlike :attr:`stack` this is process-wide, so
        #: a background sampler thread can attribute resource samples to
        #: the pipeline stage currently running without touching the
        #: owning thread's local state.  Best-effort by design.
        self.active_stage = ""
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    def next_id(self) -> int:
        """Allocate the next span id (thread-safe, ids start at 1)."""
        with self._lock:
            self._next_id += 1
            return self._next_id

    @property
    def stack(self) -> list:
        """The calling thread's stack of open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def reset(self) -> None:
        """Drop all recorded spans and restart the id sequence/clock."""
        with self._lock:
            self.spans.clear()
            self._next_id = 0
            self.epoch = time.perf_counter()
            self.flushed = False
            self.active_stage = ""
        self._local = threading.local()


#: The one process-wide observability context.
STATE = ObsState(enabled=is_env_enabled())


def enabled() -> bool:
    """Whether span tracing and metric recording are active."""
    return STATE.enabled


def enable() -> None:
    """Turn observability on for the rest of the process (or until
    :func:`disable`)."""
    STATE.enabled = True


def disable() -> None:
    """Turn observability off; already-recorded spans are kept."""
    STATE.enabled = False


_RUN_ID: str | None = None
_RUN_ID_LOCK = threading.Lock()


def new_run_id() -> str:
    """Mint a fresh run identifier (sortable timestamp + random tail).

    The format is ``r<UTC yyyymmddThhmmss>-<6 hex>``: lexically sortable
    by start time, unique across concurrent processes thanks to the
    random tail, and safe to embed in filenames.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    tail = binascii.hexlify(os.urandom(3)).decode("ascii")
    return f"r{stamp}-{tail}"


def run_id() -> str:
    """The stable identifier for this process's current run.

    Minted lazily on first use and then reused, so the ledger, span
    exports and artifact filenames of one invocation all share the same
    id while concurrent invocations never collide.
    """
    global _RUN_ID
    if _RUN_ID is None:
        with _RUN_ID_LOCK:
            if _RUN_ID is None:
                _RUN_ID = new_run_id()
    return _RUN_ID


def set_run_id(value: str | None) -> None:
    """Override the process run id (tests and re-exec'd workers).

    ``None`` (or an empty value) clears it, so the next :func:`run_id`
    call mints a fresh one.
    """
    global _RUN_ID
    with _RUN_ID_LOCK:
        _RUN_ID = value or None
