"""Latency/bandwidth network model for the MPI simulator.

A classic alpha-beta (Hockney) model: transferring *n* bytes costs
``latency + n / bandwidth`` seconds, with collectives paying a
logarithmic tree factor.  Deliberately simple — the tracker consumes
computation bursts; communication only has to shape the timestamps
plausibly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["NetworkModel"]


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Alpha-beta interconnect model.

    Attributes
    ----------
    latency_s:
        Per-message latency (the alpha term).
    bandwidth_bps:
        Point-to-point bandwidth in bytes/second (the 1/beta term).
    barrier_cost_s:
        Cost of a barrier once every rank has arrived.
    """

    latency_s: float = 2e-6
    bandwidth_bps: float = 1.2e9
    barrier_cost_s: float = 4e-6

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ModelError("latency_s must be >= 0")
        if self.bandwidth_bps <= 0:
            raise ModelError("bandwidth_bps must be > 0")
        if self.barrier_cost_s < 0:
            raise ModelError("barrier_cost_s must be >= 0")

    def p2p_cost(self, nbytes: int) -> float:
        """Time for one point-to-point message of *nbytes*."""
        if nbytes < 0:
            raise ModelError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_bps

    def allreduce_cost(self, nbytes: int, nranks: int) -> float:
        """Time for an allreduce of *nbytes* across *nranks* (tree)."""
        if nranks < 1:
            raise ModelError("nranks must be >= 1")
        if nranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return 2.0 * rounds * self.p2p_cost(nbytes)
