"""The discrete-event MPI simulator.

Each rank runs a Python generator yielding operation records
(:mod:`repro.mpisim.ops`).  The simulator interprets them against a
machine performance model (computes) and a network model
(communication), maintaining one virtual clock per rank:

- **Compute** advances the rank's clock by the modelled burst duration
  and records a CPU burst;
- **Send** is eager and buffered: the sender pays an injection latency
  and continues; the message's arrival time is stamped with the full
  transfer cost;
- **Recv** blocks until a matching message exists, then advances the
  clock to ``max(own clock, arrival)`` — messages between a rank pair
  match in FIFO order (no tags, one communicator);
- **Barrier / AllReduce** release when every rank has arrived at the
  same collective occurrence, at the latest arrival time plus the
  collective's cost.

The schedule is deterministic: ranks are drained greedily in rank order
and per-burst noise uses one independent stream per rank, so the same
program and seed always produce the identical trace.  Invalid programs
(mismatched collectives, receives that can never match) raise
:class:`DeadlockError` instead of hanging.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.machine.compiler import CompilerModel, GFORTRAN
from repro.machine.machine import MINOTAURO, Machine
from repro.machine.perfmodel import PerformanceModel, WorkloadPoint
from repro.mpisim.network import NetworkModel
from repro.mpisim.ops import AllReduce, Barrier, Compute, Recv, Send, SendRecv
from repro.trace.callstack import CallPath
from repro.trace.counters import STANDARD_COUNTERS
from repro.trace.trace import Trace, TraceBuilder

__all__ = ["MPIRankAPI", "MPISimulator", "DeadlockError"]

Program = Callable[[int, "MPIRankAPI"], Generator]


class DeadlockError(ReproError):
    """The simulated program cannot make progress."""


class MPIRankAPI:
    """Convenience constructor of operation records for one rank.

    Passed to the user's program generator; mirrors a minimal MPI
    surface (compute is the tracing hook a real tool gets for free).
    """

    def __init__(self, rank: int, nranks: int) -> None:
        self.rank = rank
        self.nranks = nranks

    def compute(
        self,
        region: str,
        point: WorkloadPoint,
        *,
        callpath: CallPath | None = None,
        jitter: float = 0.01,
    ) -> Compute:
        """One sequential computation region (one CPU burst)."""
        return Compute(region=region, point=point, callpath=callpath, jitter=jitter)

    def barrier(self) -> Barrier:
        """Global synchronisation."""
        return Barrier()

    def allreduce(self, nbytes: int = 8) -> AllReduce:
        """Allreduce of *nbytes* across all ranks."""
        return AllReduce(nbytes=nbytes)

    def send(self, dest: int, nbytes: int) -> Send:
        """Eager buffered send."""
        return Send(dest=dest, nbytes=nbytes)

    def recv(self, src: int) -> Recv:
        """Blocking receive from *src*."""
        return Recv(src=src)

    def sendrecv(self, dest: int, src: int, nbytes: int) -> SendRecv:
        """Exchange: send to *dest*, receive from *src*."""
        return SendRecv(dest=dest, src=src, nbytes=nbytes)


class _RankState:
    __slots__ = (
        "generator",
        "clock",
        "finished",
        "blocked_on",
        "collective_index",
        "rng",
    )

    def __init__(self, generator: Generator, rng: np.random.Generator) -> None:
        self.generator = generator
        self.clock = 0.0
        self.finished = False
        self.blocked_on: object | None = None
        self.collective_index = 0
        self.rng = rng


class MPISimulator:
    """Runs per-rank program generators into a burst trace.

    Parameters
    ----------
    nranks:
        Number of simulated MPI ranks.
    machine / compiler / processes_per_node:
        Performance-model context for the compute regions.
    network:
        Interconnect model for the communication operations.
    app / scenario:
        Metadata recorded in the resulting trace.
    """

    def __init__(
        self,
        nranks: int,
        *,
        machine: Machine = MINOTAURO,
        compiler: CompilerModel = GFORTRAN,
        processes_per_node: int | None = None,
        network: NetworkModel | None = None,
        app: str = "mpisim",
        scenario: dict | None = None,
    ) -> None:
        if nranks < 1:
            raise ReproError("nranks must be >= 1")
        self.nranks = nranks
        self.machine = machine
        ppn = (
            processes_per_node
            if processes_per_node is not None
            else min(nranks, machine.cores_per_node)
        )
        self.perf = PerformanceModel(machine, compiler=compiler, processes_per_node=ppn)
        self.network = network or NetworkModel()
        self.app = app
        self.scenario = dict(scenario or {})

    def run(self, program: Program, *, seed: int = 0, max_steps: int = 10**7) -> Trace:
        """Simulate *program* on every rank and return the trace.

        ``program(rank, api)`` must return a generator yielding
        operation records.  *max_steps* bounds the total number of
        executed operations (runaway-guard, not a scheduling knob).
        """
        with obs.span("mpisim.run", app=self.app, nranks=self.nranks) as sim_span:
            trace = self._run(program, seed=seed, max_steps=max_steps, span=sim_span)
        return trace

    def _run(self, program: Program, *, seed: int, max_steps: int, span) -> Trace:
        builder = TraceBuilder(
            nranks=self.nranks,
            counter_names=STANDARD_COUNTERS,
            app=self.app,
            scenario=self.scenario,
            clock_hz=self.machine.clock_hz,
        )
        states = [
            _RankState(
                program(rank, MPIRankAPI(rank, self.nranks)),
                np.random.default_rng((seed, rank)),
            )
            for rank in range(self.nranks)
        ]
        # FIFO of message arrival times per (src, dst) pair.
        mailboxes: dict[tuple[int, int], deque[float]] = {}
        # Collective occurrence -> {rank: (kind, nbytes)} of arrivals.
        collectives: dict[int, dict[int, tuple[str, int]]] = {}

        steps = 0
        while not all(state.finished for state in states):
            progress = False
            for rank, state in enumerate(states):
                if state.finished:
                    continue
                while not state.finished and state.blocked_on is None:
                    steps += 1
                    if steps > max_steps:
                        raise ReproError(
                            f"simulation exceeded {max_steps} operations"
                        )
                    try:
                        op = next(state.generator)
                    except StopIteration:
                        state.finished = True
                        progress = True
                        break
                    if not self._execute(
                        op, rank, state, builder, mailboxes, collectives
                    ):
                        # A SendRecv may have installed its residual
                        # Recv half already; don't overwrite it.
                        if state.blocked_on is None:
                            state.blocked_on = op
                        break
                    progress = True
            progress |= self._resolve_collectives(states, collectives)
            progress |= self._retry_blocked(states, builder, mailboxes, collectives)
            if not progress:
                blocked = {
                    rank: state.blocked_on
                    for rank, state in enumerate(states)
                    if not state.finished
                }
                raise DeadlockError(
                    f"no rank can make progress; blocked: {blocked}"
                )
        trace = builder.build()
        if obs.enabled():
            span.set(n_ops=steps, n_bursts=trace.n_bursts)
            obs.count("mpisim.ops_total", steps)
            obs.count("mpisim.bursts_total", trace.n_bursts)
        return trace

    # ------------------------------------------------------------------
    # operation execution
    # ------------------------------------------------------------------
    def _execute(
        self,
        op,
        rank: int,
        state: _RankState,
        builder: TraceBuilder,
        mailboxes: dict[tuple[int, int], deque[float]],
        collectives: dict[int, dict[int, tuple[str, int]]],
    ) -> bool:
        """Run one operation; return False if the rank must block."""
        if isinstance(op, Compute):
            self._run_compute(op, rank, state, builder)
            return True
        if isinstance(op, Send):
            self._validate_peer(op.dest)
            arrival = state.clock + self.network.p2p_cost(op.nbytes)
            mailboxes.setdefault((rank, op.dest), deque()).append(arrival)
            state.clock += self.network.latency_s  # injection overhead
            return True
        if isinstance(op, Recv):
            self._validate_peer(op.src)
            queue = mailboxes.get((op.src, rank))
            if queue:
                arrival = queue.popleft()
                state.clock = max(state.clock, arrival)
                return True
            return False
        if isinstance(op, SendRecv):
            self._validate_peer(op.dest)
            self._validate_peer(op.src)
            arrival = state.clock + self.network.p2p_cost(op.nbytes)
            mailboxes.setdefault((rank, op.dest), deque()).append(arrival)
            state.clock += self.network.latency_s
            queue = mailboxes.get((op.src, rank))
            if queue:
                state.clock = max(state.clock, queue.popleft())
                return True
            # The send half is done; block on an equivalent receive.
            state.blocked_on = Recv(src=op.src)
            return False
        if isinstance(op, (Barrier, AllReduce)):
            occurrence = state.collective_index
            kind = "allreduce" if isinstance(op, AllReduce) else "barrier"
            nbytes = op.nbytes if isinstance(op, AllReduce) else 0
            arrivals = collectives.setdefault(occurrence, {})
            arrivals[rank] = (kind, nbytes)
            return False  # always blocks until everyone arrives
        raise ReproError(f"program yielded an unknown operation: {op!r}")

    def _run_compute(
        self, op: Compute, rank: int, state: _RankState, builder: TraceBuilder
    ) -> None:
        counters = self.perf.evaluate(op.point)
        noise = float(state.rng.lognormal(0.0, op.jitter)) if op.jitter else 1.0
        cycles = float(counters.cycles) * noise
        duration = cycles / self.machine.clock_hz
        builder.add(
            rank=rank,
            begin=state.clock,
            duration=duration,
            callpath=op.resolved_callpath(),
            counters=[
                float(counters.instructions),
                cycles,
                float(counters.l1_misses),
                float(counters.l2_misses),
                float(counters.tlb_misses),
            ],
        )
        state.clock += duration

    def _validate_peer(self, peer: int) -> None:
        if not 0 <= peer < self.nranks:
            raise ReproError(f"peer rank {peer} outside [0, {self.nranks})")

    # ------------------------------------------------------------------
    # blocking resolution
    # ------------------------------------------------------------------
    def _resolve_collectives(
        self,
        states: list[_RankState],
        collectives: dict[int, dict[int, tuple[str, int]]],
    ) -> bool:
        """Release collectives at which every rank has arrived."""
        progress = False
        for occurrence in sorted(collectives):
            arrivals = collectives[occurrence]
            if len(arrivals) < self.nranks:
                continue
            kinds = {kind for kind, _ in arrivals.values()}
            if len(kinds) > 1:
                raise DeadlockError(
                    f"collective mismatch at occurrence {occurrence}: {kinds}"
                )
            release = max(states[rank].clock for rank in arrivals)
            release += self.network.barrier_cost_s
            (kind,) = kinds
            if kind == "allreduce":
                nbytes = max(n for _, n in arrivals.values())
                release += self.network.allreduce_cost(nbytes, self.nranks)
            for rank in arrivals:
                state = states[rank]
                state.clock = release
                state.collective_index += 1
                state.blocked_on = None
            del collectives[occurrence]
            progress = True
        return progress

    def _retry_blocked(
        self,
        states: list[_RankState],
        builder: TraceBuilder,
        mailboxes: dict[tuple[int, int], deque[float]],
        collectives: dict[int, dict[int, tuple[str, int]]],
    ) -> bool:
        """Retry ranks blocked on receives whose messages arrived."""
        progress = False
        for rank, state in enumerate(states):
            op = state.blocked_on
            if state.finished or op is None or not isinstance(op, Recv):
                continue
            if self._execute(op, rank, state, builder, mailboxes, collectives):
                state.blocked_on = None
                progress = True
        return progress
