"""Operations an MPI-simulated program can yield.

Programs are per-rank generators producing these records; the simulator
interprets them.  Users normally construct them through the
:class:`~repro.mpisim.simulator.MPIRankAPI` helpers rather than
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.machine.perfmodel import WorkloadPoint
from repro.trace.callstack import CallPath

__all__ = ["Compute", "Barrier", "AllReduce", "Send", "Recv", "SendRecv"]


@dataclass(frozen=True, slots=True)
class Compute:
    """A sequential computation region (becomes one CPU burst).

    Attributes
    ----------
    region:
        Region name; also used to derive the default call path.
    point:
        Machine-independent workload of the burst.
    callpath:
        Source reference recorded on the burst; defaults to a synthetic
        path derived from the region name.
    jitter:
        Log-normal sigma applied to the achieved cycles.
    """

    region: str
    point: WorkloadPoint
    callpath: CallPath | None = None
    jitter: float = 0.01

    def __post_init__(self) -> None:
        if not self.region:
            raise ModelError("compute region name must not be empty")
        if self.jitter < 0:
            raise ModelError("jitter must be >= 0")

    def resolved_callpath(self) -> CallPath:
        """The call path to record (synthesised from the region name)."""
        if self.callpath is not None:
            return self.callpath
        return CallPath.single(self.region, f"{self.region}.c", 1)


@dataclass(frozen=True, slots=True)
class Barrier:
    """Global synchronisation: every rank waits for the slowest."""


@dataclass(frozen=True, slots=True)
class AllReduce:
    """Reduction across all ranks: a barrier plus a tree exchange."""

    nbytes: int = 8

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ModelError("nbytes must be >= 0")


@dataclass(frozen=True, slots=True)
class Send:
    """Eager buffered send: completes locally after injection cost."""

    dest: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.dest < 0:
            raise ModelError("dest must be >= 0")
        if self.nbytes < 0:
            raise ModelError("nbytes must be >= 0")


@dataclass(frozen=True, slots=True)
class Recv:
    """Blocking receive from a specific source rank."""

    src: int

    def __post_init__(self) -> None:
        if self.src < 0:
            raise ModelError("src must be >= 0")


@dataclass(frozen=True, slots=True)
class SendRecv:
    """Combined exchange: send to *dest* while receiving from *src*."""

    dest: int
    src: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.dest < 0 or self.src < 0:
            raise ModelError("ranks must be >= 0")
        if self.nbytes < 0:
            raise ModelError("nbytes must be >= 0")
